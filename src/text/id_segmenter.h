#ifndef CATS_TEXT_ID_SEGMENTER_H_
#define CATS_TEXT_ID_SEGMENTER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "text/double_array_trie.h"
#include "text/segmenter.h"
#include "text/text_stats.h"
#include "text/token_ids.h"

namespace cats::text {

/// Trie-backed twin of `Segmenter` emitting interned token ids instead of
/// strings. For every input and every SegmenterOptions combination the
/// emitted id sequence maps token-for-token onto Segmenter::Segment's
/// output (TokenText reconstructs the exact bytes) — pinned by
/// tests/segmenter_diff_test.cc and the fuzz battery.
///
/// Equivalence argument, in brief: the legacy FMM probes dictionary
/// membership of the window-capped prefixes in descending codepoint length
/// and takes the first hit. The trie walk advances byte-by-byte through the
/// same prefixes in ascending length and records the LAST node that both
/// carries a word value and ends on an input codepoint boundary; since a
/// prefix chain dies in the trie exactly when no dictionary word extends
/// it, the recorded match is the same longest match. Whitespace skipping,
/// punctuation handling and OOV fallback replicate the legacy control flow
/// verbatim.
class IdSegmenter {
 public:
  IdSegmenter() = default;
  IdSegmenter(const SegmentationDictionary& dictionary,
              SegmenterOptions options);
  explicit IdSegmenter(const SegmentationDictionary& dictionary)
      : IdSegmenter(dictionary, SegmenterOptions{}) {}

  /// Segments one comment into the arena, returning the span of ids pushed
  /// (valid until the arena's next Reset). When `structure` is non-null it
  /// is filled with the same stats AnalyzeStructure(sentence) computes —
  /// the codepoints are already decoded here, so the extractor saves a
  /// whole second pass over the raw bytes.
  std::span<const uint32_t> SegmentToIds(std::string_view sentence,
                                         TokenArena* arena,
                                         CommentStructure* structure =
                                             nullptr) const;

  /// Reconstructs a token's exact bytes (dict word / canonical codepoint
  /// encoding / arena-owned irregular slice).
  void AppendTokenText(uint32_t id, const TokenArena& arena,
                       std::string* out) const;
  std::string TokenText(uint32_t id, const TokenArena& arena) const;

  /// The dictionary words in sorted order; dict id i is dict_words()[i].
  const std::vector<std::string>& dict_words() const { return dict_words_; }
  const DoubleArrayTrie& trie() const { return trie_; }
  const SegmenterOptions& options() const { return options_; }

 private:
  std::vector<std::string> dict_words_;  // sorted ascending
  DoubleArrayTrie trie_;
  SegmenterOptions options_;
  size_t max_word_codepoints_ = 0;
};

}  // namespace cats::text

#endif  // CATS_TEXT_ID_SEGMENTER_H_
