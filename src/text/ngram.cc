#include "text/ngram.h"

namespace cats::text {

std::string BigramKey(const std::string& w1, const std::string& w2) {
  std::string key;
  key.reserve(w1.size() + w2.size() + 1);
  key += w1;
  key.push_back('\x1f');
  key += w2;
  return key;
}

size_t PositiveBigramSet::CountIn(
    const std::vector<std::string>& tokens) const {
  if (tokens.size() < 2) return 0;
  size_t n = 0;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (Contains(tokens[i], tokens[i + 1])) ++n;
  }
  return n;
}

std::vector<std::pair<std::string, std::string>> Bigrams(
    const std::vector<std::string>& tokens) {
  std::vector<std::pair<std::string, std::string>> out;
  if (tokens.size() < 2) return out;
  out.reserve(tokens.size() - 1);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    out.emplace_back(tokens[i], tokens[i + 1]);
  }
  return out;
}

}  // namespace cats::text
