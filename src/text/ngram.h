#ifndef CATS_TEXT_NGRAM_H_
#define CATS_TEXT_NGRAM_H_

#include <string>
#include <unordered_set>
#include <vector>

namespace cats::text {

/// A 2-gram of adjacent word tokens, keyed as "w1\x1fw2".
std::string BigramKey(const std::string& w1, const std::string& w2);

/// The paper's positive 2-gram set G: bigrams (Wi, Wj) where at least one of
/// the two words belongs to the positive lexicon. Built once from a token
/// universe; membership queried per comment.
class PositiveBigramSet {
 public:
  PositiveBigramSet() = default;

  void Insert(const std::string& w1, const std::string& w2) {
    bigrams_.insert(BigramKey(w1, w2));
  }

  bool Contains(const std::string& w1, const std::string& w2) const {
    return bigrams_.count(BigramKey(w1, w2)) > 0;
  }

  size_t size() const { return bigrams_.size(); }

  /// Counts adjacent pairs of `tokens` that are members.
  size_t CountIn(const std::vector<std::string>& tokens) const;

 private:
  std::unordered_set<std::string> bigrams_;
};

/// Enumerates adjacent bigrams of a token sequence.
std::vector<std::pair<std::string, std::string>> Bigrams(
    const std::vector<std::string>& tokens);

}  // namespace cats::text

#endif  // CATS_TEXT_NGRAM_H_
