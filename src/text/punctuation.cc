#include "text/punctuation.h"

#include "text/utf8.h"

namespace cats::text {

bool IsPunctuation(uint32_t cp) {
  // ASCII punctuation.
  if ((cp >= 0x21 && cp <= 0x2F) || (cp >= 0x3A && cp <= 0x40) ||
      (cp >= 0x5B && cp <= 0x60) || (cp >= 0x7B && cp <= 0x7E)) {
    return true;
  }
  // General punctuation block (…, —, ‘’, “”).
  if (cp >= 0x2000 && cp <= 0x206F) return true;
  // CJK symbols and punctuation (、。〃〈〉《》「」).
  if (cp >= 0x3000 && cp <= 0x303F) return true;
  // Fullwidth forms that are punctuation (！＂＃ … ～).
  if ((cp >= 0xFF01 && cp <= 0xFF0F) || (cp >= 0xFF1A && cp <= 0xFF20) ||
      (cp >= 0xFF3B && cp <= 0xFF40) || (cp >= 0xFF5B && cp <= 0xFF65)) {
    return true;
  }
  return false;
}

size_t CountPunctuation(std::string_view s) {
  size_t n = 0;
  size_t pos = 0;
  while (pos < s.size()) {
    if (IsPunctuation(DecodeOne(s, &pos))) ++n;
  }
  return n;
}

const std::vector<uint32_t>& CjkPunctuationMarks() {
  static const std::vector<uint32_t>* marks = new std::vector<uint32_t>{
      0xFF0C,  // ，
      0x3002,  // 。
      0xFF01,  // ！
      0xFF1F,  // ？
      0x3001,  // 、
      0xFF1A,  // ：
      0xFF1B,  // ；
      0x2026,  // …
      0xFF5E,  // ～
  };
  return *marks;
}

}  // namespace cats::text
