#ifndef CATS_TEXT_PUNCTUATION_H_
#define CATS_TEXT_PUNCTUATION_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace cats::text {

/// True for ASCII and CJK punctuation codepoints. Drives the paper's
/// structural features (sumPunctuationNumber, averagePunctuationRatio).
bool IsPunctuation(uint32_t cp);

/// Number of punctuation codepoints in a UTF-8 string.
size_t CountPunctuation(std::string_view s);

/// The fullwidth punctuation marks the synthetic comment generator inserts
/// (，。！？、：；…～ and friends), as codepoints.
const std::vector<uint32_t>& CjkPunctuationMarks();

}  // namespace cats::text

#endif  // CATS_TEXT_PUNCTUATION_H_
