#include "text/segmenter.h"

#include <algorithm>

#include "text/punctuation.h"
#include "text/utf8.h"

namespace cats::text {

void SegmentationDictionary::AddWord(std::string_view word) {
  if (word.empty()) return;
  auto [it, inserted] = words_.insert(std::string(word));
  if (inserted) {
    max_word_codepoints_ =
        std::max(max_word_codepoints_, CodepointCount(word));
  }
}

std::vector<std::string> Segmenter::Segment(std::string_view sentence) const {
  std::vector<std::string> tokens;
  if (sentence.empty()) return tokens;

  // Pre-decode codepoints with their byte offsets so candidate substrings
  // can be sliced without re-decoding.
  std::vector<size_t> offsets;  // offsets[i] = byte offset of codepoint i
  offsets.reserve(sentence.size());
  {
    size_t pos = 0;
    while (pos < sentence.size()) {
      offsets.push_back(pos);
      DecodeOne(sentence, &pos);
    }
    offsets.push_back(sentence.size());  // sentinel: end of text
  }
  size_t n = offsets.size() - 1;  // number of codepoints
  size_t window = std::max<size_t>(1, dictionary_->max_word_codepoints());

  size_t i = 0;
  while (i < n) {
    size_t byte_at = offsets[i];
    size_t tmp = byte_at;
    uint32_t cp = DecodeOne(sentence, &tmp);

    if (cp == ' ' || cp == '\t' || cp == '\n' || cp == '\r' || cp == 0x3000) {
      ++i;
      continue;
    }
    if (IsPunctuation(cp)) {
      if (options_.emit_punctuation) {
        tokens.emplace_back(sentence.substr(byte_at, offsets[i + 1] - byte_at));
      }
      ++i;
      continue;
    }

    // Forward maximum matching: longest dictionary word starting at i.
    size_t best_len = 0;
    size_t max_len = std::min(window, n - i);
    for (size_t len = max_len; len >= 1; --len) {
      std::string_view candidate =
          sentence.substr(byte_at, offsets[i + len] - byte_at);
      if (dictionary_->Contains(candidate)) {
        best_len = len;
        break;
      }
    }
    if (best_len > 0) {
      tokens.emplace_back(
          sentence.substr(byte_at, offsets[i + best_len] - byte_at));
      i += best_len;
    } else {
      if (options_.emit_oov_chars) {
        tokens.emplace_back(sentence.substr(byte_at, offsets[i + 1] - byte_at));
      }
      ++i;
    }
  }
  return tokens;
}

}  // namespace cats::text
