#ifndef CATS_TEXT_SEGMENTER_H_
#define CATS_TEXT_SEGMENTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace cats::text {

/// Word dictionary for the segmenter: a set of UTF-8 words plus the longest
/// entry's codepoint length (the FMM window).
class SegmentationDictionary {
 public:
  SegmentationDictionary() = default;

  /// Adds a word (ignored if empty).
  void AddWord(std::string_view word);

  bool Contains(std::string_view word) const {
    return words_.count(std::string(word)) > 0;
  }

  size_t size() const { return words_.size(); }
  size_t max_word_codepoints() const { return max_word_codepoints_; }

  /// Unordered view of all entries (serialization / diagnostics).
  const std::unordered_set<std::string>& words() const { return words_; }

 private:
  std::unordered_set<std::string> words_;
  size_t max_word_codepoints_ = 0;
};

/// Options controlling token emission.
struct SegmenterOptions {
  /// Emit punctuation codepoints as single-character tokens. The paper's
  /// word-level features operate on words only, so the default is off;
  /// punctuation statistics are computed from the raw text instead.
  bool emit_punctuation = false;
  /// Emit out-of-vocabulary codepoints as single-character tokens (jieba's
  /// behaviour). When off, OOV characters are dropped.
  bool emit_oov_chars = true;
};

/// Dictionary-driven forward-maximum-matching (FMM) word segmenter for
/// unsegmented CJK-style text — the standard mechanism of dictionary Chinese
/// segmenters, substituting for jieba in the paper's pipeline. At each
/// position it takes the longest dictionary word starting there; whitespace
/// is always skipped; unknown characters fall back to single-codepoint
/// tokens.
class Segmenter {
 public:
  Segmenter(const SegmentationDictionary* dictionary, SegmenterOptions options)
      : dictionary_(dictionary), options_(options) {}

  explicit Segmenter(const SegmentationDictionary* dictionary)
      : Segmenter(dictionary, SegmenterOptions{}) {}

  /// Segments `sentence` into word tokens.
  std::vector<std::string> Segment(std::string_view sentence) const;

  const SegmentationDictionary& dictionary() const { return *dictionary_; }

 private:
  const SegmentationDictionary* dictionary_;  // not owned
  SegmenterOptions options_;
};

}  // namespace cats::text

#endif  // CATS_TEXT_SEGMENTER_H_
