#include "text/text_stats.h"

#include <cmath>
#include <unordered_map>

#include "text/punctuation.h"
#include "text/utf8.h"

namespace cats::text {

double TokenEntropy(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return 0.0;
  std::unordered_map<std::string, size_t> freq;
  for (const std::string& t : tokens) ++freq[t];
  double n = static_cast<double>(tokens.size());
  double h = 0.0;
  for (const auto& [token, count] : freq) {
    double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double UniqueTokenRatio(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return 0.0;
  std::unordered_map<std::string, size_t> freq;
  for (const std::string& t : tokens) ++freq[t];
  return static_cast<double>(freq.size()) /
         static_cast<double>(tokens.size());
}

CommentStructure AnalyzeStructure(std::string_view raw_comment) {
  CommentStructure out;
  size_t pos = 0;
  while (pos < raw_comment.size()) {
    uint32_t cp = DecodeOne(raw_comment, &pos);
    ++out.codepoint_length;
    if (IsPunctuation(cp)) ++out.punctuation_count;
  }
  if (out.codepoint_length > 0) {
    out.punctuation_ratio = static_cast<double>(out.punctuation_count) /
                            static_cast<double>(out.codepoint_length);
  }
  return out;
}

}  // namespace cats::text
