#include "text/text_stats.h"

#include <cmath>
#include <unordered_map>

#include "text/punctuation.h"
#include "text/utf8.h"

namespace cats::text {
namespace {

/// Entropy over counts accumulated in first-occurrence order. Both token
/// representations (strings and interned ids) funnel through this so the
/// two hot paths sum the same doubles in the same order — a bit-identical
/// pair, not merely an approximately equal one.
double EntropyOfCounts(const std::vector<size_t>& counts, size_t total) {
  double n = static_cast<double>(total);
  double h = 0.0;
  for (size_t count : counts) {
    double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double TokenEntropy(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return 0.0;
  // Deterministic (first-occurrence) summation order, NOT hash-map order:
  // the id path must reproduce these doubles bit-for-bit.
  std::unordered_map<std::string_view, size_t> index;
  std::vector<size_t> counts;
  for (const std::string& t : tokens) {
    auto [it, inserted] = index.try_emplace(std::string_view(t), counts.size());
    if (inserted) counts.push_back(0);
    ++counts[it->second];
  }
  return EntropyOfCounts(counts, tokens.size());
}

double TokenEntropyIds(std::span<const uint32_t> ids) {
  if (ids.empty()) return 0.0;
  // Hot path: one call per comment. The map/vector are thread-local so the
  // steady state reuses their buckets/capacity instead of reallocating per
  // comment; clear() preserves both in libstdc++ and libc++.
  thread_local std::unordered_map<uint32_t, size_t> index;
  thread_local std::vector<size_t> counts;
  index.clear();
  counts.clear();
  for (uint32_t id : ids) {
    auto [it, inserted] = index.try_emplace(id, counts.size());
    if (inserted) counts.push_back(0);
    ++counts[it->second];
  }
  return EntropyOfCounts(counts, ids.size());
}

double UniqueTokenRatio(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return 0.0;
  std::unordered_map<std::string, size_t> freq;
  for (const std::string& t : tokens) ++freq[t];
  return static_cast<double>(freq.size()) /
         static_cast<double>(tokens.size());
}

CommentStructure AnalyzeStructure(std::string_view raw_comment) {
  CommentStructure out;
  size_t pos = 0;
  while (pos < raw_comment.size()) {
    uint32_t cp = DecodeOne(raw_comment, &pos);
    ++out.codepoint_length;
    if (IsPunctuation(cp)) ++out.punctuation_count;
  }
  if (out.codepoint_length > 0) {
    out.punctuation_ratio = static_cast<double>(out.punctuation_count) /
                            static_cast<double>(out.codepoint_length);
  }
  return out;
}

}  // namespace cats::text
