#ifndef CATS_TEXT_TEXT_STATS_H_
#define CATS_TEXT_TEXT_STATS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cats::text {

/// Shannon entropy (bits) of the token frequency distribution of one
/// comment: -sum_t p(t) log2 p(t) where p(t) is the token's frequency within
/// the comment. This is the paper's measure of how "chaotically" a comment
/// is organized (Fig 3, averageCommentEntropy). Summation runs in
/// first-occurrence order, so the result is deterministic and bit-identical
/// to TokenEntropyIds over the same token sequence.
double TokenEntropy(const std::vector<std::string>& tokens);

/// Id-path twin of TokenEntropy: identical doubles for an id sequence that
/// is token-for-token bijective with a string sequence (see
/// text/token_ids.h).
double TokenEntropyIds(std::span<const uint32_t> ids);

/// Number of distinct tokens / total tokens; 0 for an empty sequence.
/// Feeds uniqueWordRatio (Fig 5).
double UniqueTokenRatio(const std::vector<std::string>& tokens);

/// Structural statistics of one raw (unsegmented) comment.
struct CommentStructure {
  size_t codepoint_length = 0;     // total codepoints (Fig 4 length)
  size_t punctuation_count = 0;    // punctuation codepoints (Fig 2)
  double punctuation_ratio = 0.0;  // punctuation / codepoints
};

/// Computes structural stats from raw comment text.
CommentStructure AnalyzeStructure(std::string_view raw_comment);

}  // namespace cats::text

#endif  // CATS_TEXT_TEXT_STATS_H_
