#ifndef CATS_TEXT_TOKEN_IDS_H_
#define CATS_TEXT_TOKEN_IDS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cats::text {

/// Token-id space of the hot path. Every token the segmenter can emit maps
/// to exactly one uint32 id, and within one item the mapping id <-> token
/// bytes is a bijection — the invariant the differential battery pins:
///
///   [0, kDictIdLimit)            dictionary words. The id is the index of
///                                the word in the segmenter's
///                                lexicographically sorted word list, so
///                                ids are stable for a given dictionary.
///   [kCodepointIdBase, +0x110000) single-codepoint tokens (OOV characters
///                                and, when enabled, punctuation). The id
///                                encodes the codepoint itself; the token
///                                bytes are its canonical UTF-8 encoding.
///   [kIrregularIdBase, ...)      irregular tokens: single-codepoint slices
///                                whose bytes are NOT canonical UTF-8 (they
///                                decode to U+FFFD but are not the U+FFFD
///                                encoding — truncated or overlong
///                                sequences, stray continuation bytes,
///                                surrogates). Interned per item in the
///                                TokenArena, which owns the bytes.
inline constexpr uint32_t kDictIdLimit = 0x40000000u;
inline constexpr uint32_t kCodepointIdBase = 0x40000000u;
inline constexpr uint32_t kIrregularIdBase = 0x80000000u;

inline constexpr bool IsDictId(uint32_t id) { return id < kDictIdLimit; }
inline constexpr bool IsCodepointId(uint32_t id) {
  return id >= kCodepointIdBase && id < kCodepointIdBase + 0x110000u;
}
inline constexpr bool IsIrregularId(uint32_t id) {
  return id >= kIrregularIdBase;
}
inline constexpr uint32_t IdOfCodepoint(uint32_t cp) {
  return kCodepointIdBase + cp;
}
inline constexpr uint32_t CodepointOfId(uint32_t id) {
  return id - kCodepointIdBase;
}

/// One comment's tokens inside a TokenArena: a [offset, offset+length)
/// window into the arena's flat id column.
struct TokenSpan {
  uint32_t offset = 0;
  uint32_t length = 0;
};

/// Columnar per-item token storage for the id hot path. One arena holds
/// ALL comments of one item as a single flat uint32 column plus per-comment
/// spans, so the accumulation loops in the feature extractor walk
/// contiguous memory with zero hashing and zero per-comment allocation
/// (buffers are grow-only and reused across items via Reset()).
///
/// Lifetime rules (see ARCHITECTURE.md "Text hot path"):
///   - Dict and codepoint ids are global (valid across arenas).
///   - Irregular ids are arena-local: they index this arena's intern table
///     and die at the next Reset(). Never let an irregular id outlive the
///     item that produced it.
///   - Spans index the flat column; the column only grows between Reset()
///     calls, so a TokenSpan stays valid for the whole item.
class TokenArena {
 public:
  TokenArena() = default;

  /// Forgets the previous item. Keeps capacity.
  void Reset() {
    ids_.clear();
    irregular_bytes_.clear();
    irregular_index_.clear();
  }

  void PushId(uint32_t id) { ids_.push_back(id); }

  /// Marks the start of a comment; pair with EndComment.
  size_t BeginComment() const { return ids_.size(); }
  TokenSpan EndComment(size_t begin) const {
    return TokenSpan{static_cast<uint32_t>(begin),
                     static_cast<uint32_t>(ids_.size() - begin)};
  }

  std::span<const uint32_t> SpanOf(TokenSpan span) const {
    return std::span<const uint32_t>(ids_).subspan(span.offset, span.length);
  }
  /// The tail of the column starting at `begin` (ids pushed since then).
  std::span<const uint32_t> SpanFrom(size_t begin) const {
    return std::span<const uint32_t>(ids_).subspan(begin);
  }

  /// Interns a malformed (non-canonical UTF-8) token slice, returning its
  /// arena-local id. The same bytes always get the same id within an item.
  uint32_t InternIrregular(std::string_view bytes) {
    auto it = irregular_index_.find(std::string(bytes));
    if (it != irregular_index_.end()) return it->second;
    uint32_t id =
        kIrregularIdBase + static_cast<uint32_t>(irregular_bytes_.size());
    irregular_bytes_.emplace_back(bytes);
    irregular_index_.emplace(irregular_bytes_.back(), id);
    return id;
  }

  std::string_view IrregularBytes(uint32_t id) const {
    return irregular_bytes_[id - kIrregularIdBase];
  }

  const std::vector<uint32_t>& ids() const { return ids_; }
  size_t num_irregular() const { return irregular_bytes_.size(); }

  /// Grow-only scratch buffers for the segmenter's per-comment pre-decode
  /// (byte offsets + codepoints). Owned here so the segmenter stays
  /// stateless and thread-safe while the hot loop never allocates.
  std::vector<size_t>& offset_scratch() { return offset_scratch_; }
  std::vector<uint32_t>& codepoint_scratch() { return codepoint_scratch_; }

 private:
  std::vector<uint32_t> ids_;
  std::vector<std::string> irregular_bytes_;  // index = id - kIrregularIdBase
  std::unordered_map<std::string, uint32_t> irregular_index_;
  std::vector<size_t> offset_scratch_;
  std::vector<uint32_t> codepoint_scratch_;
};

}  // namespace cats::text

#endif  // CATS_TEXT_TOKEN_IDS_H_
