#include "text/utf8.h"

namespace cats::text {

void AppendCodepoint(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string EncodeCodepoint(uint32_t cp) {
  std::string out;
  AppendCodepoint(cp, &out);
  return out;
}

uint32_t DecodeOne(std::string_view s, size_t* pos) {
  size_t i = *pos;
  if (i >= s.size()) {
    // Defensive: a caller iterating past the end must still make progress,
    // so this can never spin — and must never read out of bounds.
    *pos = i + 1;
    return kReplacementChar;
  }
  unsigned char c0 = static_cast<unsigned char>(s[i]);
  if (c0 < 0x80) {
    *pos = i + 1;
    return c0;
  }
  auto cont = [&s](size_t k) {
    return k < s.size() &&
           (static_cast<unsigned char>(s[k]) & 0xC0) == 0x80;
  };
  if ((c0 & 0xE0) == 0xC0 && cont(i + 1)) {
    uint32_t cp = (c0 & 0x1F) << 6 |
                  (static_cast<unsigned char>(s[i + 1]) & 0x3F);
    *pos = i + 2;
    return cp >= 0x80 ? cp : kReplacementChar;
  }
  if ((c0 & 0xF0) == 0xE0 && cont(i + 1) && cont(i + 2)) {
    uint32_t cp = (c0 & 0x0F) << 12 |
                  (static_cast<unsigned char>(s[i + 1]) & 0x3F) << 6 |
                  (static_cast<unsigned char>(s[i + 2]) & 0x3F);
    *pos = i + 3;
    // Reject overlong encodings AND raw UTF-16 surrogates — IsValidUtf8
    // refuses surrogates, so decoding them to themselves here would let a
    // "malformed" byte sequence masquerade as a valid codepoint.
    return cp >= 0x800 && (cp < 0xD800 || cp > 0xDFFF) ? cp
                                                       : kReplacementChar;
  }
  if ((c0 & 0xF8) == 0xF0 && cont(i + 1) && cont(i + 2) && cont(i + 3)) {
    uint32_t cp = (c0 & 0x07) << 18 |
                  (static_cast<unsigned char>(s[i + 1]) & 0x3F) << 12 |
                  (static_cast<unsigned char>(s[i + 2]) & 0x3F) << 6 |
                  (static_cast<unsigned char>(s[i + 3]) & 0x3F);
    *pos = i + 4;
    return (cp >= 0x10000 && cp <= 0x10FFFF) ? cp : kReplacementChar;
  }
  *pos = i + 1;
  return kReplacementChar;
}

std::vector<uint32_t> DecodeString(std::string_view s) {
  std::vector<uint32_t> out;
  out.reserve(s.size() / 2);
  size_t pos = 0;
  while (pos < s.size()) out.push_back(DecodeOne(s, &pos));
  return out;
}

std::string EncodeString(const std::vector<uint32_t>& cps) {
  std::string out;
  out.reserve(cps.size() * 3);
  for (uint32_t cp : cps) AppendCodepoint(cp, &out);
  return out;
}

size_t CodepointCount(std::string_view s) {
  size_t n = 0;
  size_t pos = 0;
  while (pos < s.size()) {
    DecodeOne(s, &pos);
    ++n;
  }
  return n;
}

bool IsValidUtf8(std::string_view s) {
  size_t i = 0;
  while (i < s.size()) {
    unsigned char b0 = static_cast<unsigned char>(s[i]);
    size_t len;
    uint32_t cp;
    if (b0 < 0x80) {
      ++i;
      continue;
    } else if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1Fu;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0Fu;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07u;
    } else {
      return false;  // stray continuation byte or 0xFE/0xFF
    }
    if (i + len > s.size()) return false;  // truncated sequence
    for (size_t k = 1; k < len; ++k) {
      unsigned char b = static_cast<unsigned char>(s[i + k]);
      if ((b & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (b & 0x3Fu);
    }
    // Overlong encodings, UTF-16 surrogates, out-of-range codepoints.
    static constexpr uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800, 0x10000};
    if (cp < kMinForLen[len]) return false;
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;
    if (cp > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

size_t EncodedLength(uint32_t cp) {
  if (cp < 0x80) return 1;
  if (cp < 0x800) return 2;
  if (cp < 0x10000) return 3;
  return 4;
}

bool IsCjk(uint32_t cp) { return cp >= 0x4E00 && cp <= 0x9FFF; }

}  // namespace cats::text
