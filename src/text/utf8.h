#ifndef CATS_TEXT_UTF8_H_
#define CATS_TEXT_UTF8_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cats::text {

/// U+FFFD, returned by DecodeOne for malformed sequences.
inline constexpr uint32_t kReplacementChar = 0xFFFD;

/// Appends the UTF-8 encoding of `cp` to `out`.
void AppendCodepoint(uint32_t cp, std::string* out);

/// Returns the UTF-8 encoding of a single codepoint.
std::string EncodeCodepoint(uint32_t cp);

/// Decodes one codepoint at byte offset `*pos`, advancing `*pos` past it.
/// Malformed bytes consume one byte and decode to kReplacementChar, so
/// iteration always terminates; overlong encodings and raw UTF-16
/// surrogates consume their full sequence but also decode to
/// kReplacementChar (matching IsValidUtf8's notion of well-formedness).
/// A `*pos` at or past the end reads nothing and returns kReplacementChar.
uint32_t DecodeOne(std::string_view s, size_t* pos);

/// Decodes a whole string into codepoints.
std::vector<uint32_t> DecodeString(std::string_view s);

/// Encodes a codepoint sequence back to UTF-8.
std::string EncodeString(const std::vector<uint32_t>& cps);

/// Number of codepoints in `s`.
size_t CodepointCount(std::string_view s);

/// Strict UTF-8 validation: rejects malformed sequences, overlong
/// encodings, surrogates and codepoints past U+10FFFF. Unlike DecodeOne
/// (which substitutes kReplacementChar and keeps going), this reports
/// whether the bytes were well-formed at all — the record validator uses
/// it to quarantine comment text that arrived garbled.
bool IsValidUtf8(std::string_view s);

/// Number of bytes the UTF-8 encoding of `cp` occupies (1-4).
size_t EncodedLength(uint32_t cp);

/// True if the codepoint is in the CJK Unified Ideographs block (the
/// synthetic language draws its "characters" from this block).
bool IsCjk(uint32_t cp);

}  // namespace cats::text

#endif  // CATS_TEXT_UTF8_H_
