#include "text/vocabulary.h"

#include <algorithm>
#include <numeric>

namespace cats::text {

int32_t Vocabulary::AddOccurrence(std::string_view word) {
  ++total_tokens_;
  auto it = index_.find(std::string(word));
  if (it != index_.end()) {
    ++counts_[it->second];
    return it->second;
  }
  int32_t id = static_cast<int32_t>(words_.size());
  index_.emplace(std::string(word), id);
  words_.emplace_back(word);
  counts_.push_back(1);
  return id;
}

void Vocabulary::AddSentence(const std::vector<std::string>& tokens) {
  for (const std::string& t : tokens) AddOccurrence(t);
}

int32_t Vocabulary::Lookup(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kUnknownWordId : it->second;
}

uint64_t Vocabulary::CountOfWord(std::string_view word) const {
  int32_t id = Lookup(word);
  return id == kUnknownWordId ? 0 : counts_[id];
}

size_t Vocabulary::PruneAndSortByFrequency(uint64_t min_count) {
  std::vector<int32_t> order(words_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int32_t a, int32_t b) {
    return counts_[a] > counts_[b];
  });

  std::vector<std::string> new_words;
  std::vector<uint64_t> new_counts;
  new_words.reserve(words_.size());
  new_counts.reserve(counts_.size());
  size_t removed = 0;
  uint64_t kept_tokens = 0;
  for (int32_t old_id : order) {
    if (counts_[old_id] < min_count) {
      ++removed;
      continue;
    }
    new_words.push_back(std::move(words_[old_id]));
    new_counts.push_back(counts_[old_id]);
    kept_tokens += counts_[old_id];
  }
  words_ = std::move(new_words);
  counts_ = std::move(new_counts);
  index_.clear();
  for (size_t i = 0; i < words_.size(); ++i) {
    index_.emplace(words_[i], static_cast<int32_t>(i));
  }
  total_tokens_ = kept_tokens;
  return removed;
}

std::vector<int32_t> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int32_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) {
    int32_t id = Lookup(t);
    if (id != kUnknownWordId) ids.push_back(id);
  }
  return ids;
}

}  // namespace cats::text
