#ifndef CATS_TEXT_VOCABULARY_H_
#define CATS_TEXT_VOCABULARY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cats::text {

inline constexpr int32_t kUnknownWordId = -1;

/// Bidirectional word <-> dense id map with occurrence counts. Built by
/// scanning a token stream; word2vec and the sentiment model both index
/// through this.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Adds one occurrence of `word`, creating an id on first sight.
  int32_t AddOccurrence(std::string_view word);

  /// Adds every token in the sentence.
  void AddSentence(const std::vector<std::string>& tokens);

  /// Returns the id of `word` or kUnknownWordId.
  int32_t Lookup(std::string_view word) const;

  const std::string& WordOf(int32_t id) const { return words_[id]; }
  uint64_t CountOf(int32_t id) const { return counts_[id]; }
  uint64_t CountOfWord(std::string_view word) const;

  size_t size() const { return words_.size(); }
  uint64_t total_tokens() const { return total_tokens_; }

  /// Drops words with fewer than `min_count` occurrences and reassigns dense
  /// ids in descending-frequency order (ties broken by first-seen order).
  /// Returns the number of words removed.
  size_t PruneAndSortByFrequency(uint64_t min_count);

  /// Converts tokens to ids, skipping unknown words.
  std::vector<int32_t> Encode(const std::vector<std::string>& tokens) const;

  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> words_;
  std::vector<uint64_t> counts_;
  uint64_t total_tokens_ = 0;
};

}  // namespace cats::text

#endif  // CATS_TEXT_VOCABULARY_H_
