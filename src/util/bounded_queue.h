#ifndef CATS_UTIL_BOUNDED_QUEUE_H_
#define CATS_UTIL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace cats::util {

/// Observability hooks for one BoundedQueue. All pointers are optional
/// (nullptr disables that signal) and must outlive the queue; the gauge
/// tracks instantaneous depth, the counters accumulate across the queue's
/// lifetime. Stall time is real (steady-clock) time spent blocked — the
/// backpressure signal an operator watches to find the slow stage.
struct BoundedQueueMetrics {
  obs::Gauge* depth = nullptr;
  obs::Counter* pushed_total = nullptr;
  obs::Counter* push_stall_micros_total = nullptr;
  obs::Counter* pop_stall_micros_total = nullptr;
};

/// Fixed-capacity MPMC queue connecting pipeline stages, with blocking
/// backpressure on both sides and poison-pill close semantics:
///
///   - Push blocks while the queue is full (backpressure propagates
///     upstream: a slow scorer eventually stalls the crawl thread) and
///     returns false once the queue is closed — the producer's signal to
///     stop.
///   - Pop/PopBatch block while the queue is empty and return items until
///     the queue is closed AND drained, then return nullopt/false — every
///     item pushed before Close is still delivered (drain-on-shutdown),
///     so closing never loses accepted work.
///   - Close is idempotent and safe from any thread (typically the
///     producer, or a shutdown watchdog).
///
/// The queue never drops or reorders items (FIFO); with multiple
/// consumers, items are delivered exactly once but completion order across
/// consumers is unspecified — downstream must merge order-insensitively.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity,
                        BoundedQueueMetrics metrics = BoundedQueueMetrics{})
      : capacity_(capacity < 1 ? 1 : capacity), metrics_(metrics) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue closes). Returns true if the
  /// item was enqueued, false if the queue was closed (item dropped —
  /// producers treat that as "stop producing").
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      StallTimer stall(metrics_.push_stall_micros_total);
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    Published(lock);
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    Published(lock);
    return true;
  }

  /// Blocks until an item is available; nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    WaitForItemOrClose(lock);
    if (items_.empty()) return std::nullopt;
    return Take(lock);
  }

  /// Pops up to `max_items` in one wait: blocks for the first item, then
  /// takes whatever else is already queued (never blocking again). This is
  /// the micro-batching primitive — under backpressure batches fill up,
  /// under light load they shrink toward single items, so batch size adapts
  /// to wherever the bottleneck currently is. Returns false (empty `out`)
  /// once closed and drained.
  bool PopBatch(std::vector<T>* out, size_t max_items) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    WaitForItemOrClose(lock);
    while (!items_.empty() && out->size() < max_items) {
      out->push_back(Take(lock));
    }
    return !out->empty();
  }

  /// Closes the queue: producers get false from Push, consumers drain the
  /// remaining items and then get nullopt. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  /// Accumulates blocked wall time into a stall counter (RAII).
  class StallTimer {
   public:
    explicit StallTimer(obs::Counter* counter)
        : counter_(counter),
          start_(counter ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{}) {}
    ~StallTimer() {
      if (counter_ == nullptr) return;
      auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
      if (micros > 0) counter_->Increment(static_cast<uint64_t>(micros));
    }

   private:
    obs::Counter* counter_;
    std::chrono::steady_clock::time_point start_;
  };

  void WaitForItemOrClose(std::unique_lock<std::mutex>& lock) {
    if (items_.empty() && !closed_) {
      StallTimer stall(metrics_.pop_stall_micros_total);
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    }
  }

  // Both helpers run under mu_ (the lock parameter documents that).
  void Published(const std::unique_lock<std::mutex>&) {
    if (metrics_.pushed_total != nullptr) metrics_.pushed_total->Increment();
    if (metrics_.depth != nullptr) {
      metrics_.depth->Set(static_cast<double>(items_.size()));
    }
    not_empty_.notify_one();
  }

  T Take(const std::unique_lock<std::mutex>&) {
    T item = std::move(items_.front());
    items_.pop_front();
    if (metrics_.depth != nullptr) {
      metrics_.depth->Set(static_cast<double>(items_.size()));
    }
    not_full_.notify_one();
    return item;
  }

  const size_t capacity_;
  BoundedQueueMetrics metrics_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cats::util

#endif  // CATS_UTIL_BOUNDED_QUEUE_H_
