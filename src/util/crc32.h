#ifndef CATS_UTIL_CRC32_H_
#define CATS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cats {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant).
/// Used by the model MANIFEST to detect truncated or bit-flipped model
/// files before they are parsed; strong enough for storage-corruption
/// detection, not a cryptographic integrity check.

/// Incremental update: feed chunks with the running crc, starting from
/// Crc32Init() and finishing with Crc32Finish().
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

inline uint32_t Crc32Init() { return 0xFFFFFFFFu; }
inline uint32_t Crc32Finish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

/// One-shot CRC-32 of a buffer. Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(std::string_view data);

}  // namespace cats

#endif  // CATS_UTIL_CRC32_H_
