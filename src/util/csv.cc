#include "util/csv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/string_util.h"

namespace cats {
namespace {

std::string EscapeCsvField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

Status CsvWriter::Flush() const {
  std::ofstream out(path_, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path_);
  }
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << EscapeCsvField(row[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path_);
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out.is_open()) return Status::IoError("cannot open for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteStringToFileAtomic(const std::string& path,
                               const std::string& content) {
  const std::string tmp = path + ".tmp";
  CATS_RETURN_NOT_OK(WriteStringToFile(tmp, content));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace cats
