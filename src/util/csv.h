#ifndef CATS_UTIL_CSV_H_
#define CATS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cats {

/// Writes rows as RFC-4180-ish CSV (quotes fields containing separators).
/// Benches use this to dump experiment series next to the ASCII charts so
/// figures can be re-plotted externally.
class CsvWriter {
 public:
  explicit CsvWriter(std::string path) : path_(std::move(path)) {}

  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Writes header + rows to `path`; truncates any existing file.
  Status Flush() const;

 private:
  std::string path_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Reads an entire CSV file. Handles quoted fields and embedded separators;
/// does not handle embedded newlines (none of our files contain them).
Result<std::vector<std::vector<std::string>>> ReadCsv(const std::string& path);

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file (truncating).
Status WriteStringToFile(const std::string& path, const std::string& content);

/// Crash-safe variant: writes to `path + ".tmp"`, flushes, then renames over
/// `path`, so readers see either the old bytes or the new bytes — never a
/// partial file. Single writer per path assumed (the temp name is fixed).
Status WriteStringToFileAtomic(const std::string& path,
                               const std::string& content);

}  // namespace cats

#endif  // CATS_UTIL_CSV_H_
