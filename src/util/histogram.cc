#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace cats {

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_bins)) {
  assert(hi > lo);
  assert(num_bins > 0);
  counts_.assign(num_bins, 0);
}

size_t Histogram::BinIndex(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  size_t i = static_cast<size_t>((x - lo_) / width_);
  return std::min(i, counts_.size() - 1);
}

void Histogram::Add(double x) {
  ++counts_[BinIndex(x)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double Histogram::BinCenter(size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::Density(size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(total_) * width_);
}

double Histogram::Fraction(size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::CdfAt(size_t i) const {
  if (total_ == 0) return 0.0;
  uint64_t acc = 0;
  for (size_t k = 0; k <= i && k < counts_.size(); ++k) acc += counts_[k];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string Histogram::ToAsciiChart(int width) const {
  double max_density = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    max_density = std::max(max_density, Density(i));
  }
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double d = Density(i);
    int bars = max_density > 0
                   ? static_cast<int>(std::lround(d / max_density * width))
                   : 0;
    out += StrFormat("  [%8.3f, %8.3f)  %8.4f  ", lo_ + i * width_,
                     lo_ + (i + 1) * width_, d);
    out.append(static_cast<size_t>(bars), '#');
    out.push_back('\n');
  }
  return out;
}

std::string Histogram::ToAsciiComparison(const Histogram& a,
                                         const Histogram& b,
                                         const std::string& label_a,
                                         const std::string& label_b,
                                         int width) {
  assert(a.num_bins() == b.num_bins());
  double max_density = 0.0;
  for (size_t i = 0; i < a.num_bins(); ++i) {
    max_density = std::max({max_density, a.Density(i), b.Density(i)});
  }
  std::string out = StrFormat("  %-22s %-*s | %-*s\n", "bin", width + 9,
                              label_a.c_str(), width + 9, label_b.c_str());
  for (size_t i = 0; i < a.num_bins(); ++i) {
    double da = a.Density(i), db = b.Density(i);
    int ba = max_density > 0
                 ? static_cast<int>(std::lround(da / max_density * width))
                 : 0;
    int bb = max_density > 0
                 ? static_cast<int>(std::lround(db / max_density * width))
                 : 0;
    std::string bar_a(static_cast<size_t>(ba), '#');
    std::string bar_b(static_cast<size_t>(bb), '*');
    out += StrFormat("  [%8.3f,%8.3f)  %7.4f %-*s | %7.4f %-*s\n",
                     a.lo_ + i * a.width_, a.lo_ + (i + 1) * a.width_, da,
                     width, bar_a.c_str(), db, width, bar_b.c_str());
  }
  return out;
}

}  // namespace cats
