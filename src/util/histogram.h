#ifndef CATS_UTIL_HISTOGRAM_H_
#define CATS_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cats {

/// Fixed-width-bin histogram over [lo, hi]. Values outside the range are
/// clamped into the edge bins so no observation is dropped — the paper's
/// distribution figures (Figs 1-5, 10-13) are regenerated from these.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_bins);

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  uint64_t total() const { return total_; }
  uint64_t bin_count(size_t i) const { return counts_[i]; }

  /// Center x-coordinate of bin i.
  double BinCenter(size_t i) const;

  /// Probability density: count / (total * bin_width). Integrates to 1.
  double Density(size_t i) const;

  /// Fraction of mass in bin i.
  double Fraction(size_t i) const;

  /// Empirical CDF evaluated at the right edge of bin i.
  double CdfAt(size_t i) const;

  /// Renders a compact fixed-width ASCII chart of the density, one row per
  /// bin: "  [0.40, 0.45)  0.0312  ###########". Used by the figure benches.
  std::string ToAsciiChart(int width = 48) const;

  /// Renders two histograms (same binning) side by side, labelled; the
  /// paper's fraud-vs-normal overlay figures print through this.
  static std::string ToAsciiComparison(const Histogram& a,
                                       const Histogram& b,
                                       const std::string& label_a,
                                       const std::string& label_b,
                                       int width = 30);

 private:
  size_t BinIndex(double x) const;

  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace cats

#endif  // CATS_UTIL_HISTOGRAM_H_
