#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace cats {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const JsonValue* JsonValue::Get(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::GetPath(std::string_view dotted_path) const {
  const JsonValue* node = this;
  while (!dotted_path.empty()) {
    if (!node->is_object()) return nullptr;
    size_t dot = dotted_path.find('.');
    std::string_view hop = dotted_path.substr(0, dot);
    node = node->Get(hop);
    if (node == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted_path.remove_prefix(dot + 1);
  }
  return node;
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

Result<std::string> JsonValue::GetString(std::string_view key) const {
  const JsonValue* v = Get(key);
  if (v == nullptr)
    return Status::NotFound(StrFormat("missing key '%.*s'",
                                      static_cast<int>(key.size()),
                                      key.data()));
  if (!v->is_string())
    return Status::ParseError(StrFormat("key '%.*s' is not a string",
                                        static_cast<int>(key.size()),
                                        key.data()));
  return v->string_value();
}

Result<int64_t> JsonValue::GetInt(std::string_view key) const {
  const JsonValue* v = Get(key);
  if (v == nullptr)
    return Status::NotFound(StrFormat("missing key '%.*s'",
                                      static_cast<int>(key.size()),
                                      key.data()));
  if (!v->is_number())
    return Status::ParseError(StrFormat("key '%.*s' is not a number",
                                        static_cast<int>(key.size()),
                                        key.data()));
  return v->int_value();
}

Result<double> JsonValue::GetDouble(std::string_view key) const {
  const JsonValue* v = Get(key);
  if (v == nullptr)
    return Status::NotFound(StrFormat("missing key '%.*s'",
                                      static_cast<int>(key.size()),
                                      key.data()));
  if (!v->is_number())
    return Status::ParseError(StrFormat("key '%.*s' is not a number",
                                        static_cast<int>(key.size()),
                                        key.data()));
  return v->number_value();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonValue::Serialize() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber: {
      if (std::isfinite(number_) &&
          number_ == std::floor(number_) &&
          std::fabs(number_) < 9.007199254740992e15) {
        return std::to_string(static_cast<int64_t>(number_));
      }
      return StrFormat("%.17g", number_);
    }
    case Type::kInt:
      return std::to_string(int_);
    case Type::kString:
      return "\"" + JsonEscape(string_) + "\"";
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += array_[i].Serialize();
      }
      out.push_back(']');
      return out;
    }
    case Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out.push_back(',');
        first = false;
        out += "\"" + JsonEscape(k) + "\":" + v.Serialize();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text), pos_(0) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue v;
    // A non-OK Status converts implicitly to Result<JsonValue>.
    CATS_RETURN_NOT_OK(ParseValue(&v));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StrFormat("trailing characters at offset %zu", pos_));
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Status ParseValue(JsonValue* out) {
    if (AtEnd()) return Status::ParseError("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        CATS_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Status::ParseError(
          StrFormat("invalid literal at offset %zu", pos_));
    }
    pos_ += lit.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) ++pos_;
    bool any = false;
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                        Peek() == '+' || Peek() == '-')) {
      ++pos_;
      any = true;
    }
    if (!any) {
      return Status::ParseError(
          StrFormat("invalid number at offset %zu", start));
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::ParseError(
          StrFormat("malformed number '%s' at offset %zu", token.c_str(),
                    start));
    }
    // Integer literals within double's exact range become kInt so numeric
    // ids survive re-serialization bit-for-bit; the 2^53 bound keeps the
    // serialized form identical to the historical all-double behavior.
    if (token.find('.') == std::string::npos &&
        token.find('e') == std::string::npos &&
        token.find('E') == std::string::npos &&
        std::fabs(d) < 9.007199254740992e15) {
      errno = 0;
      char* iend = nullptr;
      long long i = std::strtoll(token.c_str(), &iend, 10);
      if (errno == 0 && iend != nullptr && *iend == '\0') {
        *out = JsonValue::Int(static_cast<int64_t>(i));
        return Status::OK();
      }
    }
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    // Caller guarantees Peek() == '"'.
    ++pos_;
    out->clear();
    while (!AtEnd()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (AtEnd()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::ParseError("truncated \\u escape");
            }
            std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            char* end = nullptr;
            long cp = std::strtol(hex.c_str(), &end, 16);
            if (end == nullptr || *end != '\0') {
              return Status::ParseError("invalid \\u escape");
            }
            AppendUtf8(static_cast<uint32_t>(cp), out);
            break;
          }
          default:
            return Status::ParseError(
                StrFormat("invalid escape '\\%c'", esc));
        }
      } else {
        out->push_back(c);
      }
    }
    return Status::ParseError("unterminated string");
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // consume '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      JsonValue elem;
      CATS_RETURN_NOT_OK(ParseValue(&elem));
      out->Append(std::move(elem));
      SkipWhitespace();
      if (AtEnd()) return Status::ParseError("unterminated array");
      char c = text_[pos_++];
      if (c == ']') return Status::OK();
      if (c != ',') {
        return Status::ParseError(
            StrFormat("expected ',' or ']' at offset %zu", pos_ - 1));
      }
    }
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // consume '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Status::ParseError(
            StrFormat("expected object key at offset %zu", pos_));
      }
      std::string key;
      CATS_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (AtEnd() || text_[pos_++] != ':') {
        return Status::ParseError(
            StrFormat("expected ':' at offset %zu", pos_ - 1));
      }
      SkipWhitespace();
      JsonValue value;
      CATS_RETURN_NOT_OK(ParseValue(&value));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Status::ParseError("unterminated object");
      char c = text_[pos_++];
      if (c == '}') return Status::OK();
      if (c != ',') {
        return Status::ParseError(
            StrFormat("expected ',' or '}' at offset %zu", pos_ - 1));
      }
    }
  }


  std::string_view text_;
  size_t pos_;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace cats
