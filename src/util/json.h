#ifndef CATS_UTIL_JSON_H_
#define CATS_UTIL_JSON_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace cats {

/// Minimal JSON document model. The marketplace "web" API serves comment
/// records as JSON (paper Listing 2) and the data collector parses them with
/// this — no third-party JSON dependency.
class JsonValue {
 public:
  /// kInt holds an exact int64 so numeric platform ids survive a
  /// parse/serialize round trip without double rounding; kNumber remains
  /// the general floating-point case. is_number() covers both.
  enum class Type { kNull, kBool, kNumber, kInt, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Int(int64_t i);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kNumber || type_ == Type::kInt;
  }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : number_;
  }
  int64_t int_value() const {
    return type_ == Type::kInt ? int_ : static_cast<int64_t>(number_);
  }
  const std::string& string_value() const { return string_; }

  /// Array access.
  size_t size() const { return array_.size(); }
  const JsonValue& at(size_t i) const { return array_[i]; }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }

  /// Object access. Get() returns nullptr when the key is absent.
  const JsonValue* Get(std::string_view key) const;
  /// Dotted-path lookup through nested objects ("result.records" walks
  /// Get("result")->Get("records")). Returns nullptr if any hop is missing
  /// or a non-terminal hop is not an object. Platform envelopes that wrap
  /// their payload in a nested object are unwrapped with this.
  const JsonValue* GetPath(std::string_view dotted_path) const;
  void Set(std::string key, JsonValue v);
  bool Has(std::string_view key) const { return Get(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Typed object getters with explicit error reporting.
  Result<std::string> GetString(std::string_view key) const;
  Result<int64_t> GetInt(std::string_view key) const;
  Result<double> GetDouble(std::string_view key) const;

  /// Compact serialization (UTF-8 passthrough, control chars escaped).
  std::string Serialize() const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static Result<JsonValue> Parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  // Insertion-ordered for deterministic serialization.
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes a string for embedding in JSON (quotes not included).
std::string JsonEscape(std::string_view s);

}  // namespace cats

#endif  // CATS_UTIL_JSON_H_
