#ifndef CATS_UTIL_LOGGING_H_
#define CATS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace cats {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style single-message logger. Emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace cats

#define CATS_LOG(level)                                              \
  ::cats::internal_logging::LogMessage(::cats::LogLevel::k##level,   \
                                       __FILE__, __LINE__)

/// Fatal-on-false invariant check (active in all build types).
#define CATS_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      CATS_LOG(Error) << "CHECK failed: " #cond;                           \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#endif  // CATS_UTIL_LOGGING_H_
