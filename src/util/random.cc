#include "util/random.h"

#include <cassert>
#include <cmath>

namespace cats {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint32_t Rng::UniformU32(uint32_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  uint32_t threshold = (~bound + 1u) % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // 64-bit rejection.
  uint64_t threshold = (~span + 1u) % span;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return lo + static_cast<int64_t>(r % span);
  }
}

double Rng::UniformDouble() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

int64_t Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  double u;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return 1 + static_cast<int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

int64_t Rng::Poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    double l = std::exp(-lambda);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= UniformDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for workload
  // size sampling.
  double v = Normal(lambda, std::sqrt(lambda));
  return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
}

double Rng::Gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia-Tsang note).
    double u;
    do {
      u = UniformDouble();
    } while (u <= 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0) continue;
    v = v * v * v;
    double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::Beta(double a, double b) {
  double x = Gamma(a, 1.0);
  double y = Gamma(b, 1.0);
  return x / (x + y);
}

Rng Rng::Fork(uint64_t salt) {
  // Derive a new seed and a distinct stream from the current state.
  uint64_t seed = NextU64() ^ (salt * 0x9E3779B97F4A7C15ULL);
  uint64_t stream = NextU64() + salt;
  return Rng(seed, stream);
}

ZipfDistribution::ZipfDistribution(uint32_t n, double s) : norm_(0.0), s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint32_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  norm_ = acc;
  for (uint32_t k = 0; k < n; ++k) cdf_[k] /= norm_;
}

uint32_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  // Binary search the CDF.
  uint32_t lo = 0, hi = static_cast<uint32_t>(cdf_.size()) - 1;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::Pmf(uint32_t k) const {
  assert(k < cdf_.size());
  return 1.0 / std::pow(static_cast<double>(k + 1), s_) / norm_;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  size_t n = weights.size();
  assert(n > 0);
  double sum = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    sum += w;
  }
  assert(sum > 0.0);
  prob_.resize(n);
  alias_.resize(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / sum;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

uint32_t AliasSampler::Sample(Rng* rng) const {
  uint32_t i = rng->UniformU32(static_cast<uint32_t>(prob_.size()));
  return rng->UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace cats
