#ifndef CATS_UTIL_RANDOM_H_
#define CATS_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cats {

/// PCG32 (O'Neill): small, fast, statistically strong, and — unlike
/// std::mt19937 + std::distributions — bit-for-bit reproducible across
/// standard libraries. All stochastic code in this repo draws from Rng so
/// experiment tables are deterministic for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
               uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  uint32_t NextU32();

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound), bound > 0. Uses unbiased rejection.
  uint32_t UniformU32(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (cached spare value).
  double Normal();
  double Normal(double mean, double stddev);

  /// exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Geometric number of trials >= 1 with success probability p.
  int64_t Geometric(double p);

  /// Poisson(lambda) via inversion for small lambda, normal approx for large.
  int64_t Poisson(double lambda);

  /// Gamma(shape, scale) via Marsaglia-Tsang.
  double Gamma(double shape, double scale);

  /// Beta(a, b) via two Gammas.
  double Beta(double a, double b);

  /// Derives an independent generator (distinct stream) for parallel use.
  Rng Fork(uint64_t salt);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformU32(static_cast<uint32_t>(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Samples ranks 1..n with P(rank=k) proportional to 1/k^s. Precomputes the
/// CDF once; Sample() is O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(uint32_t n, double s);

  /// Returns a rank in [0, n).
  uint32_t Sample(Rng* rng) const;

  uint32_t n() const { return static_cast<uint32_t>(cdf_.size()); }

  /// P(rank = k), k in [0, n).
  double Pmf(uint32_t k) const;

 private:
  std::vector<double> cdf_;
  double norm_;
  double s_;
};

/// Walker alias method for O(1) sampling from an arbitrary discrete
/// distribution; used by word2vec's unigram^0.75 negative-sampling table.
class AliasSampler {
 public:
  /// `weights` need not be normalized; must be non-empty with a positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  uint32_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace cats

#endif  // CATS_UTIL_RANDOM_H_
