#ifndef CATS_UTIL_RESULT_H_
#define CATS_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace cats {

/// A value-or-error holder: either an OK Status plus a T, or a non-OK Status.
/// Mirrors arrow::Result. The value accessors must only be called when ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value — lets `return value;` work in a
  /// function returning Result<T>.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status — lets `return st;` work.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define CATS_ASSIGN_OR_RETURN(lhs, expr)        \
  auto CATS_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!CATS_CONCAT_(_res_, __LINE__).ok())      \
    return CATS_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(CATS_CONCAT_(_res_, __LINE__)).value()

#define CATS_CONCAT_(a, b) CATS_CONCAT_IMPL_(a, b)
#define CATS_CONCAT_IMPL_(a, b) a##b

}  // namespace cats

#endif  // CATS_UTIL_RESULT_H_
