#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cats {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return SortedQuantile(values, q);
}

double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double FractionBelow(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  size_t n = 0;
  for (double v : values) {
    if (v < threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size());
  size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double KolmogorovSmirnovStatistic(std::vector<double> a,
                                  std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t ia = 0, ib = 0;
  double d = 0.0;
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  while (ia < a.size() && ib < b.size()) {
    double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  return d;
}

}  // namespace cats
