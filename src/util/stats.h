#ifndef CATS_UTIL_STATS_H_
#define CATS_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cats {

/// Single-pass running mean/variance/min/max (Welford).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Quantile of a sample by linear interpolation (type-7, the numpy default).
/// `q` in [0, 1]. Sorts a copy; use SortedQuantile when data is pre-sorted.
double Quantile(std::vector<double> values, double q);

/// Quantile of an already ascending-sorted sample.
double SortedQuantile(const std::vector<double>& sorted, double q);

/// Mean of a sample (0 for empty input).
double Mean(const std::vector<double>& values);

/// Fraction of values strictly below `threshold`.
double FractionBelow(const std::vector<double>& values, double threshold);

/// Pearson correlation of two equal-length samples (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Two-sample Kolmogorov-Smirnov statistic: sup_x |F_a(x) - F_b(x)|.
/// Used to quantify how far apart (or how similar) two feature
/// distributions are in the Fig-13 cross-platform comparison.
double KolmogorovSmirnovStatistic(std::vector<double> a,
                                  std::vector<double> b);

}  // namespace cats

#endif  // CATS_UTIL_STATS_H_
