#include "util/status.h"

namespace cats {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace cats
