#ifndef CATS_UTIL_STATUS_H_
#define CATS_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace cats {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kInternal,
  kUnavailable,
  /// Stored data failed an integrity check (checksum/size mismatch,
  /// truncated or bit-flipped file) — distinct from kParseError so callers
  /// can tell "bad bytes on disk" from "well-formed but unparseable".
  kCorruption,
};

/// Returns a stable human-readable name for a StatusCode ("Ok", "IoError"...).
std::string_view StatusCodeToString(StatusCode code);

/// Exception-free error propagation, in the style of arrow::Status /
/// rocksdb::Status. Functions that can fail return Status (or Result<T>);
/// success is the default-constructed OK value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define CATS_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::cats::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace cats

#endif  // CATS_UTIL_STATUS_H_
