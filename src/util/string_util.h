#ifndef CATS_UTIL_STRING_UTIL_H_
#define CATS_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace cats {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits and drops empty fields after trimming whitespace.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a count with thousands separators, e.g. 1461452 -> "1,461,452".
std::string FormatWithCommas(int64_t value);

/// Lowercases ASCII characters only (multi-byte UTF-8 is left untouched).
std::string AsciiToLower(std::string_view s);

}  // namespace cats

#endif  // CATS_UTIL_STRING_UTIL_H_
