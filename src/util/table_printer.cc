#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace cats {
namespace {

/// Approximate terminal display width of a UTF-8 string: ASCII is width 1,
/// CJK codepoints are width 2, other multibyte codepoints width 1.
size_t DisplayWidth(const std::string& s) {
  size_t width = 0;
  size_t i = 0;
  while (i < s.size()) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c < 0x80) {
      width += 1;
      i += 1;
    } else if ((c & 0xE0) == 0xC0) {
      width += 1;
      i += 2;
    } else if ((c & 0xF0) == 0xE0) {
      // Decode the codepoint to decide CJK-ness.
      uint32_t cp = (c & 0x0F) << 12;
      if (i + 2 < s.size()) {
        cp |= (static_cast<unsigned char>(s[i + 1]) & 0x3F) << 6;
        cp |= static_cast<unsigned char>(s[i + 2]) & 0x3F;
      }
      bool wide = (cp >= 0x1100 && cp <= 0x115F) ||   // Hangul Jamo
                  (cp >= 0x2E80 && cp <= 0x9FFF) ||   // CJK
                  (cp >= 0xAC00 && cp <= 0xD7A3) ||   // Hangul syllables
                  (cp >= 0xF900 && cp <= 0xFAFF) ||   // CJK compat
                  (cp >= 0xFF00 && cp <= 0xFF60);     // fullwidth forms
      width += wide ? 2 : 1;
      i += 3;
    } else {
      width += 2;  // astral plane: assume wide
      i += 4;
    }
  }
  return width;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(std::initializer_list<std::string> row) {
  rows_.emplace_back(row);
}

std::string TablePrinter::ToString() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> widths(cols, 0);
  auto account = [&widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], DisplayWidth(row[i]));
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      size_t pad = widths[i] - DisplayWidth(cell);
      line += " " + cell + std::string(pad, ' ') + " |";
    }
    line.push_back('\n');
    return line;
  };
  auto separator = [&widths]() {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    line.push_back('\n');
    return line;
  };

  std::string out = separator();
  if (!header_.empty()) {
    out += render_row(header_);
    out += separator();
  }
  for (const auto& row : rows_) out += render_row(row);
  out += separator();
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace cats
