#ifndef CATS_UTIL_TABLE_PRINTER_H_
#define CATS_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace cats {

/// Renders aligned console tables; the bench binaries print the paper's
/// tables (Table I, III-VI, VIII, IX) through this so output is diffable.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Adds a row from printf-ish mixed content already stringified.
  void AddRow(std::initializer_list<std::string> row);

  /// Returns the rendered table.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cats

#endif  // CATS_UTIL_TABLE_PRINTER_H_
