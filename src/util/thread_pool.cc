#include "util/thread_pool.h"

#include <algorithm>

namespace cats {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunks(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunks(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, workers_.size());
  size_t base = n / chunks;
  size_t extra = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t len = base + (c < extra ? 1 : 0);
    size_t end = begin + len;
    Submit([&fn, begin, end] { fn(begin, end); });
    begin = end;
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cats
