#ifndef CATS_UTIL_THREAD_POOL_H_
#define CATS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cats {

/// Fixed-size worker pool. Used by the parallel feature extractor and the
/// Hogwild word2vec trainer. Tasks are plain std::function<void()>; callers
/// wanting results should capture output slots (one per task) to avoid
/// synchronization on the data plane.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>=1; 0 means hardware_concurrency).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is pre-partitioned into contiguous chunks (one per worker) so there
  /// is no per-index dispatch overhead.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace cats

#endif  // CATS_UTIL_THREAD_POOL_H_
