#ifndef CATS_UTIL_THREAD_POOL_H_
#define CATS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cats {

/// General-purpose fixed-size worker pool for any CPU-bound fan-out in the
/// codebase. Tasks are plain std::function<void()>; callers wanting results
/// should capture output slots (one per task) to avoid synchronization on
/// the data plane. The pool makes no fairness or ordering guarantees beyond
/// FIFO dequeue, and Wait() observes only tasks submitted before the call.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>=1; 0 means hardware_concurrency).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is pre-partitioned into at most num_threads() contiguous chunks
  /// (sizes differing by at most one) so there is no per-index dispatch
  /// overhead. Consequences of the chunked partitioning:
  ///   - each chunk runs entirely on one worker thread, so state accumulated
  ///     across the indices of one chunk needs no synchronization;
  ///   - per-thread/per-chunk metrics (e.g. obs::Counter batching, chunk
  ///     latency samples) should be accumulated locally inside a chunk and
  ///     flushed once at chunk end — use ParallelForChunks for that;
  ///   - a skewed workload (one expensive index range) is NOT rebalanced:
  ///     chunk wall times expose the skew rather than hiding it.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// The chunk-granular form of ParallelFor: runs `fn(begin, end)` once per
  /// contiguous chunk, same partitioning. This is the hook for per-thread
  /// accumulation — sum into locals over [begin, end), then publish with one
  /// atomic add/observe per chunk instead of one per index.
  void ParallelForChunks(
      size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace cats

#endif  // CATS_UTIL_THREAD_POOL_H_
