#include "ml/adaboost.h"

#include <gtest/gtest.h>

#include "ml_test_util.h"

namespace cats::ml {
namespace {

TEST(AdaBoostTest, FitEmptyFails) {
  AdaBoost model;
  Dataset empty({"x"});
  EXPECT_FALSE(model.Fit(empty).ok());
}

TEST(AdaBoostTest, SeparableDataHighAccuracy) {
  Dataset data = MakeGaussianDataset(300, 3, 4.0, 137);
  AdaBoost model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(model, data), 0.97);
  EXPECT_GT(model.num_stumps(), 0u);
}

TEST(AdaBoostTest, BoostingBeatsSingleStumpOnXor) {
  Dataset data = MakeXorDataset(800, 139);
  AdaBoostOptions one_round;
  one_round.num_rounds = 1;
  AdaBoost stump(one_round);
  AdaBoost boosted;  // 80 rounds
  ASSERT_TRUE(stump.Fit(data).ok());
  ASSERT_TRUE(boosted.Fit(data).ok());
  // Plain AdaBoost on axis-aligned stumps cannot fully solve XOR, but many
  // rounds must do no worse than one.
  EXPECT_GE(TrainAccuracy(boosted, data), TrainAccuracy(stump, data) - 0.02);
}

TEST(AdaBoostTest, PerfectStumpShortCircuits) {
  // Perfectly separable by one threshold: training should stop early with
  // a single high-confidence stump.
  Dataset data({"x"});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(data.AddRow({static_cast<float>(i)}, i < 25 ? 0 : 1).ok());
  }
  AdaBoost model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_EQ(model.num_stumps(), 1u);
  EXPECT_DOUBLE_EQ(TrainAccuracy(model, data), 1.0);
}

TEST(AdaBoostTest, HandlesInvertedPolarity) {
  // Positives below the threshold: needs polarity -1.
  Dataset data({"x"});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(data.AddRow({static_cast<float>(i)}, i < 25 ? 1 : 0).ok());
  }
  AdaBoost model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_DOUBLE_EQ(TrainAccuracy(model, data), 1.0);
}

TEST(AdaBoostTest, ProbaInUnitInterval) {
  Dataset data = MakeGaussianDataset(150, 3, 2.0, 149);
  AdaBoost model;
  ASSERT_TRUE(model.Fit(data).ok());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    double p = model.PredictProba(data.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(AdaBoostTest, MoreRoundsImproveOverlappingFit) {
  Dataset data = MakeGaussianDataset(400, 4, 1.5, 151);
  AdaBoostOptions few;
  few.num_rounds = 2;
  AdaBoostOptions many;
  many.num_rounds = 120;
  AdaBoost a(few), b(many);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  EXPECT_GE(TrainAccuracy(b, data), TrainAccuracy(a, data));
}

TEST(AdaBoostTest, CloneUntrained) {
  AdaBoost model;
  auto clone = model.CloneUntrained();
  EXPECT_EQ(clone->name(), "AdaBoost");
  Dataset data = MakeGaussianDataset(80, 2, 4.0, 157);
  ASSERT_TRUE(clone->Fit(data).ok());
  EXPECT_GT(TrainAccuracy(*clone, data), 0.9);
}

}  // namespace
}  // namespace cats::ml
