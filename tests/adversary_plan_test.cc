#include "fault/adversary_plan.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "platform_test_util.h"

namespace cats {
namespace {

TEST(AdversaryPlanTest, FromNameRoundTrips) {
  auto none = fault::AdversaryProfile::FromName("none");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->active());

  auto mild = fault::AdversaryProfile::FromName("mild");
  ASSERT_TRUE(mild.ok());
  EXPECT_TRUE(mild->active());

  auto hostile = fault::AdversaryProfile::FromName("hostile");
  ASSERT_TRUE(hostile.ok());
  EXPECT_TRUE(hostile->active());

  auto bogus = fault::AdversaryProfile::FromName("apocalyptic");
  EXPECT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdversaryPlanTest, DefaultAdaptationIsInactive) {
  fault::CampaignAdaptation adaptation;
  EXPECT_FALSE(adaptation.active());
  EXPECT_EQ(adaptation.extra_jitter, 0.0);
  EXPECT_EQ(adaptation.positive_scale, 1.0);
  EXPECT_EQ(adaptation.duplicate_scale, 1.0);
}

TEST(AdversaryPlanTest, StrengthRampIsLinearAndClamped) {
  fault::AdversaryProfile profile = fault::AdversaryProfile::Hostile();
  fault::AdversaryPlan plan(profile, 99);
  EXPECT_EQ(plan.StrengthAtDay(0), 0.0);
  EXPECT_NEAR(plan.StrengthAtDay(profile.ramp_days / 2), 0.5, 0.02);
  EXPECT_EQ(plan.StrengthAtDay(profile.ramp_days), 1.0);
  EXPECT_EQ(plan.StrengthAtDay(profile.ramp_days * 3), 1.0);
  double prev = -1.0;
  for (uint32_t day = 0; day <= profile.ramp_days; day += 5) {
    const double s = plan.StrengthAtDay(day);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(AdversaryPlanTest, DecisionsArePureFunctionsOfIds) {
  fault::AdversaryPlan a(fault::AdversaryProfile::Hostile(), 1234);
  fault::AdversaryPlan b(fault::AdversaryProfile::Hostile(), 1234);
  // Query b in a different order than a: results must not depend on call
  // sequence, only on (profile, seed, id).
  fault::CampaignAdaptation a1 = a.AdaptCampaign(7, 30);
  fault::CampaignAdaptation a2 = a.AdaptCampaign(8, 60);
  fault::CampaignAdaptation b2 = b.AdaptCampaign(8, 60);
  fault::CampaignAdaptation b1 = b.AdaptCampaign(7, 30);
  EXPECT_EQ(a1.extra_jitter, b1.extra_jitter);
  EXPECT_EQ(a1.homograph_to_neutral, b1.homograph_to_neutral);
  EXPECT_EQ(a1.filler_words_mean, b1.filler_words_mean);
  EXPECT_EQ(a1.positive_scale, b1.positive_scale);
  EXPECT_EQ(a1.duplicate_scale, b1.duplicate_scale);
  EXPECT_EQ(a2.positive_scale, b2.positive_scale);
  for (uint64_t user = 0; user < 200; ++user) {
    EXPECT_EQ(a.ShouldAgeAccount(user), b.ShouldAgeAccount(user));
  }
  EXPECT_EQ(a.AgedExpValue(42, 5.0, 1.0), b.AgedExpValue(42, 5.0, 1.0));
}

TEST(AdversaryPlanTest, SeedChangesDecisions) {
  fault::AdversaryPlan a(fault::AdversaryProfile::Hostile(), 1);
  fault::AdversaryPlan b(fault::AdversaryProfile::Hostile(), 2);
  int aged_differently = 0;
  for (uint64_t user = 0; user < 500; ++user) {
    if (a.ShouldAgeAccount(user) != b.ShouldAgeAccount(user)) {
      ++aged_differently;
    }
  }
  EXPECT_GT(aged_differently, 0);
}

TEST(AdversaryPlanTest, CampaignsStrengthenAlongTheRamp) {
  fault::AdversaryProfile profile = fault::AdversaryProfile::Hostile();
  fault::AdversaryPlan plan(profile, 77);
  // Same shop (same competence spread), later start: every ramped knob is
  // at least as adversarial.
  fault::CampaignAdaptation early = plan.AdaptCampaign(5, 5);
  fault::CampaignAdaptation late = plan.AdaptCampaign(5, profile.ramp_days);
  EXPECT_LE(early.extra_jitter, late.extra_jitter);
  EXPECT_LE(early.homograph_to_neutral, late.homograph_to_neutral);
  EXPECT_LE(early.filler_words_mean, late.filler_words_mean);
  EXPECT_GE(early.positive_scale, late.positive_scale);
  EXPECT_GE(early.duplicate_scale, late.duplicate_scale);
  EXPECT_TRUE(late.active());
}

TEST(AdversaryPlanTest, AgingRateTracksProfileProbability) {
  fault::AdversaryProfile profile = fault::AdversaryProfile::Hostile();
  fault::AdversaryPlan plan(profile, 2024);
  int aged = 0;
  const int kUsers = 4000;
  for (uint64_t user = 0; user < kUsers; ++user) {
    if (plan.ShouldAgeAccount(user)) ++aged;
  }
  const double rate = static_cast<double>(aged) / kUsers;
  EXPECT_NEAR(rate, profile.account_aging_prob, 0.05);

  fault::AdversaryPlan none(fault::AdversaryProfile::None(), 2024);
  for (uint64_t user = 0; user < 100; ++user) {
    EXPECT_FALSE(none.ShouldAgeAccount(user));
  }
}

TEST(AdversaryPlanTest, AgedValuesFollowBenignScale) {
  fault::AdversaryPlan plan(fault::AdversaryProfile::Hostile(), 5);
  double sum = 0.0;
  const int kUsers = 500;
  for (uint64_t user = 0; user < kUsers; ++user) {
    const double v = plan.AgedExpValue(user, /*log_mu=*/8.0,
                                       /*log_sigma=*/0.5);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  // exp(8) ~ 2981; the lognormal mean is exp(mu + sigma^2/2) ~ 3378.
  const double mean = sum / kUsers;
  EXPECT_GT(mean, 1500.0);
  EXPECT_LT(mean, 8000.0);
}

/// Fingerprint of a marketplace's comment stream (FNV-1a over contents and
/// authors) — the byte-identity oracle for the generation pipeline.
uint64_t CommentFingerprint(const platform::Marketplace& market) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (const platform::Comment& c : market.comments()) {
    for (char ch : c.content) {
      h ^= static_cast<unsigned char>(ch);
      h *= 1099511628211ull;
    }
    mix(c.user_id);
  }
  return h;
}

TEST(AdversaryPlanTest, NoneProfileIsByteIdenticalToBaseline) {
  // A default config (no adversary field touched) and an explicit
  // AdversaryProfile::None() must produce the exact same marketplace:
  // the adversary hooks may not perturb the shared rng stream.
  platform::MarketplaceConfig baseline = SmallMarketConfig();
  platform::MarketplaceConfig explicit_none = SmallMarketConfig();
  explicit_none.adversary = fault::AdversaryProfile::None();
  platform::Marketplace a =
      platform::Marketplace::Generate(baseline, &TestLanguage());
  platform::Marketplace b =
      platform::Marketplace::Generate(explicit_none, &TestLanguage());
  ASSERT_EQ(a.comments().size(), b.comments().size());
  EXPECT_EQ(CommentFingerprint(a), CommentFingerprint(b));
}

TEST(AdversaryPlanTest, HostileRunIsReproducibleAndDistinct) {
  platform::MarketplaceConfig config = SmallMarketConfig();
  config.adversary = fault::AdversaryProfile::Hostile();
  platform::Marketplace a =
      platform::Marketplace::Generate(config, &TestLanguage());
  platform::Marketplace b =
      platform::Marketplace::Generate(config, &TestLanguage());
  // Bit-reproducible from (seed, profile)...
  ASSERT_EQ(a.comments().size(), b.comments().size());
  EXPECT_EQ(CommentFingerprint(a), CommentFingerprint(b));
  // ...and genuinely different from the baseline mix.
  platform::Marketplace baseline = platform::Marketplace::Generate(
      SmallMarketConfig(), &TestLanguage());
  EXPECT_NE(CommentFingerprint(a), CommentFingerprint(baseline));
}

TEST(AdversaryPlanTest, HostileAgesHiredAccounts) {
  platform::MarketplaceConfig config = SmallMarketConfig();
  config.adversary = fault::AdversaryProfile::Hostile();
  platform::Marketplace hostile =
      platform::Marketplace::Generate(config, &TestLanguage());
  const platform::Marketplace& baseline = TestMarketplace();
  // Same config/seed otherwise, so user ids align; count hired users whose
  // exp_value moved to the benign range.
  size_t changed = 0;
  const auto& base_pop = baseline.population();
  const auto& adv_pop = hostile.population();
  ASSERT_EQ(base_pop.users().size(), adv_pop.users().size());
  for (size_t i = 0; i < base_pop.users().size(); ++i) {
    const platform::User& before = base_pop.users()[i];
    const platform::User& after = adv_pop.users()[i];
    if (before.hired && before.exp_value != after.exp_value) ++changed;
  }
  EXPECT_GT(changed, 0u);
}

}  // namespace
}  // namespace cats
