// Property sweep over the public API's pagination: for ANY page size the
// crawler-visible pages must partition the underlying records with correct
// total_pages bookkeeping.

#include <gtest/gtest.h>

#include <set>

#include "collect/record.h"
#include "platform_test_util.h"

namespace cats::platform {
namespace {

class ApiPaginationTest : public ::testing::TestWithParam<size_t> {
 protected:
  MarketplaceApi MakeApi() {
    ApiOptions options;
    options.page_size = GetParam();
    options.faults = fault::FaultProfile::None();
    return MarketplaceApi(&cats::TestMarketplace(), options);
  }
};

TEST_P(ApiPaginationTest, ShopsPartitionExactly) {
  MarketplaceApi api = MakeApi();
  std::set<std::string> seen;
  size_t page = 0, total_pages = 1, records = 0;
  while (page < total_pages) {
    auto body = api.Get("/shops?page=" + std::to_string(page));
    ASSERT_TRUE(body.ok()) << page;
    auto parsed = collect::ParsePage(*body);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->page, page);
    total_pages = parsed->total_pages;
    // Every page except the last is exactly full.
    if (page + 1 < total_pages) {
      EXPECT_EQ(parsed->data.size(), GetParam());
    } else {
      EXPECT_LE(parsed->data.size(), GetParam());
      EXPECT_GE(parsed->data.size(), 1u);
    }
    for (const JsonValue& record : parsed->data) {
      auto shop = collect::ParseShopRecord(record);
      ASSERT_TRUE(shop.ok());
      EXPECT_TRUE(seen.insert(std::to_string(shop->shop_id)).second)
          << "duplicate across pages";
    }
    records += parsed->data.size();
    ++page;
  }
  EXPECT_EQ(records, cats::TestMarketplace().shops().size());
}

TEST_P(ApiPaginationTest, CommentsPartitionForABusyItem) {
  const auto& market = cats::TestMarketplace();
  // The item with the most comments stresses pagination hardest.
  uint64_t busiest = 0;
  size_t most = 0;
  for (const Item& item : market.items()) {
    size_t n = market.CommentIndicesOfItem(item.id).size();
    if (n > most) {
      most = n;
      busiest = item.id;
    }
  }
  ASSERT_GT(most, 0u);

  MarketplaceApi api = MakeApi();
  std::set<std::string> seen;
  size_t page = 0, total_pages = 1;
  while (page < total_pages) {
    auto body = api.Get("/items/" + std::to_string(busiest) +
                        "/comments?page=" + std::to_string(page));
    ASSERT_TRUE(body.ok());
    auto parsed = collect::ParsePage(*body);
    ASSERT_TRUE(parsed.ok());
    total_pages = parsed->total_pages;
    for (const JsonValue& record : parsed->data) {
      auto comment = collect::ParseCommentRecord(record);
      ASSERT_TRUE(comment.ok());
      EXPECT_EQ(comment->item_id, busiest);
      EXPECT_TRUE(seen.insert(std::to_string(comment->comment_id)).second);
    }
    ++page;
  }
  EXPECT_EQ(seen.size(), most);
}

TEST_P(ApiPaginationTest, TotalPagesStableAcrossPages) {
  MarketplaceApi api = MakeApi();
  auto first = collect::ParsePage(*api.Get("/shops?page=0"));
  ASSERT_TRUE(first.ok());
  if (first->total_pages < 2) GTEST_SKIP() << "single page at this size";
  auto later = collect::ParsePage(
      *api.Get("/shops?page=" + std::to_string(first->total_pages - 1)));
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(later->total_pages, first->total_pages);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, ApiPaginationTest,
                         ::testing::Values(1, 3, 7, 50, 1000),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "size" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cats::platform
