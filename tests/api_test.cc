#include "platform/api.h"

#include <gtest/gtest.h>

#include "collect/record.h"
#include "platform_test_util.h"

namespace cats::platform {
namespace {

ApiOptions QuietOptions() {
  ApiOptions options;
  options.faults = fault::FaultProfile::None();
  options.page_size = 10;
  return options;
}

TEST(ApiTest, ShopsPageStructure) {
  MarketplaceApi api(&TestMarketplace(), QuietOptions());
  auto body = api.Get("/shops?page=0");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  auto page = collect::ParsePage(*body);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->page, 0u);
  EXPECT_EQ(page->data.size(), 10u);
  auto shop = collect::ParseShopRecord(page->data[0]);
  ASSERT_TRUE(shop.ok()) << shop.status().ToString();
  EXPECT_FALSE(shop->shop_name.empty());
  EXPECT_NE(shop->shop_url.find("http"), std::string::npos);
}

TEST(ApiTest, PaginationCoversAllShops) {
  MarketplaceApi api(&TestMarketplace(), QuietOptions());
  size_t seen = 0;
  size_t page = 0, total_pages = 1;
  while (page < total_pages) {
    auto body = api.Get("/shops?page=" + std::to_string(page));
    ASSERT_TRUE(body.ok());
    auto parsed = collect::ParsePage(*body);
    ASSERT_TRUE(parsed.ok());
    total_pages = parsed->total_pages;
    seen += parsed->data.size();
    ++page;
  }
  EXPECT_EQ(seen, TestMarketplace().shops().size());
}

TEST(ApiTest, PagePastEndIsOutOfRange) {
  MarketplaceApi api(&TestMarketplace(), QuietOptions());
  auto body = api.Get("/shops?page=100000");
  EXPECT_EQ(body.status().code(), StatusCode::kOutOfRange);
}

TEST(ApiTest, ItemsOfShop) {
  MarketplaceApi api(&TestMarketplace(), QuietOptions());
  auto body = api.Get("/shops/0/items?page=0");
  ASSERT_TRUE(body.ok());
  auto page = collect::ParsePage(*body);
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->data.empty());
  auto item = collect::ParseItemRecord(page->data[0]);
  ASSERT_TRUE(item.ok()) << item.status().ToString();
  EXPECT_GE(item->sales_volume, 0);
  EXPECT_GT(item->price, 0.0);
  EXPECT_FALSE(item->category.empty());
}

TEST(ApiTest, CommentsMatchListingTwoSchema) {
  const Marketplace& m = TestMarketplace();
  MarketplaceApi api(&m, QuietOptions());
  // Find an item with comments.
  uint64_t item_id = 0;
  for (const Item& item : m.items()) {
    if (!m.CommentIndicesOfItem(item.id).empty()) {
      item_id = item.id;
      break;
    }
  }
  auto body =
      api.Get("/items/" + std::to_string(item_id) + "/comments?page=0");
  ASSERT_TRUE(body.ok());
  auto page = collect::ParsePage(*body);
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->data.empty());
  const JsonValue& rec = page->data[0];
  for (const char* key :
       {"item_id", "comment_id", "comment_content", "nickname",
        "userExpValue", "client_information", "date"}) {
    EXPECT_TRUE(rec.Has(key)) << key;
  }
  // userExpValue serialized as string, per Listing 2.
  EXPECT_TRUE(rec.Get("userExpValue")->is_string());
  auto comment = collect::ParseCommentRecord(rec);
  ASSERT_TRUE(comment.ok());
  EXPECT_EQ(comment->item_id, item_id);
  EXPECT_GE(comment->user_exp_value, kMinUserExpValue);
}

TEST(ApiTest, GroundTruthNeverSerialized) {
  MarketplaceApi api(&TestMarketplace(), QuietOptions());
  for (const char* path : {"/shops?page=0", "/shops/0/items?page=0"}) {
    auto body = api.Get(path);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body->find("fraud"), std::string::npos);
    EXPECT_EQ(body->find("hired"), std::string::npos);
    EXPECT_EQ(body->find("malicious"), std::string::npos);
    EXPECT_EQ(body->find("campaign"), std::string::npos);
    EXPECT_EQ(body->find("quality"), std::string::npos);
  }
}

TEST(ApiTest, UnknownRoutesRejected) {
  MarketplaceApi api(&TestMarketplace(), QuietOptions());
  EXPECT_EQ(api.Get("/unknown").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(api.Get("/shops/abc/items").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(api.Get("/shops/999999/items?page=0").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(api.Get("/items/999999999/comments?page=0").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(api.Get("/shops?offset=3").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ApiTest, TransientFailuresInjected) {
  ApiOptions options = QuietOptions();
  options.faults.server_error_prob = 0.5;
  MarketplaceApi api(&TestMarketplace(), options);
  size_t failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!api.Get("/shops?page=0").ok()) ++failures;
  }
  EXPECT_GT(failures, 50u);
  EXPECT_LT(failures, 150u);
  EXPECT_EQ(api.injected_failures(), failures);
  EXPECT_EQ(api.request_count(), 200u);
}

TEST(ApiTest, DuplicateRecordsInjected) {
  ApiOptions options = QuietOptions();
  options.faults.duplicate_record_prob = 1.0;  // duplicate everything
  MarketplaceApi api(&TestMarketplace(), options);
  auto body = api.Get("/shops?page=0");
  ASSERT_TRUE(body.ok());
  auto page = collect::ParsePage(*body);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->data.size(), 20u);  // 10 records, each doubled
  EXPECT_GT(api.injected_duplicates(), 0u);
}

}  // namespace
}  // namespace cats::platform
