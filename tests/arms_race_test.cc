// The adversarial-drift loop, end to end (the "arms race"):
//
//   1. a model trained on baseline traffic serves scores;
//   2. an adaptive adversary (fault::AdversaryPlan, hostile profile) ramps
//      in: template mutation, homograph rotation, filler padding, damped
//      sentiment and aged sockpuppet accounts — the frozen model's AUC
//      visibly degrades;
//   3. the serve loop's drift detector trips kDrifted from the score
//      stream alone, before the traffic window ends;
//   4. the retrain scheduler fires a warm-start continuation on a recent
//      labeled window, the candidate hot-swaps in with zero dropped
//      requests, and AUC recovers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cats.h"
#include "drift/drift_detector.h"
#include "drift/retrain_scheduler.h"
#include "fault/clock.h"
#include "ml/metrics.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace cats {
namespace {

/// Per-item fraud scores over `items`, aligned with the input order.
/// Rule-filtered and quarantined items score 0.0 (predicted clean) so AUC
/// judges the whole pipeline, not just the classifier.
std::vector<double> ScoreAll(const core::Cats& cats_system,
                             const std::vector<collect::CollectedItem>& items) {
  const core::Detector& detector = cats_system.detector();
  core::StagedBatch staged = detector.StageForScoring(items);
  std::vector<core::FeatureVector> rows;
  rows.reserve(staged.pending.size());
  for (size_t i = 0; i < staged.pending.size(); ++i) {
    core::FeatureVector row;
    std::copy_n(staged.rows.begin() +
                    static_cast<std::ptrdiff_t>(i * row.size()),
                row.size(), row.begin());
    rows.push_back(row);
  }
  std::unordered_map<uint64_t, double> by_id;
  if (!rows.empty()) {
    auto scored = detector.ScoreFeatures(rows);
    CATS_CHECK(scored.ok());
    for (size_t i = 0; i < staged.pending.size(); ++i) {
      by_id[staged.pending[i].item_id] = (*scored)[i];
    }
  }
  std::vector<double> scores(items.size(), 0.0);
  for (size_t i = 0; i < items.size(); ++i) {
    auto it = by_id.find(items[i].item.item_id);
    if (it != by_id.end()) scores[i] = it->second;
  }
  return scores;
}

/// A hostile-adversary marketplace, generated and crawled once per process.
/// Seeded differently from the training market (4242) so the frozen model
/// faces genuinely unseen traffic — with the training seed, memorized
/// structure leaks in and masks the adversary's damage.
const platform::Marketplace& HostileMarketplace() {
  static const platform::Marketplace* market = [] {
    platform::MarketplaceConfig config = SmallMarketConfig();
    config.seed = 90211;
    config.adversary = fault::AdversaryProfile::Hostile();
    return new platform::Marketplace(
        platform::Marketplace::Generate(config, &TestLanguage()));
  }();
  return *market;
}

const collect::DataStore& HostileStore() {
  static const collect::DataStore* store =
      new collect::DataStore(CrawlAll(HostileMarketplace()));
  return *store;
}

/// Baseline traffic the frozen model has NOT trained on: same generator,
/// no adversary, different seed.
const platform::Marketplace& BaselineEvalMarketplace() {
  static const platform::Marketplace* market = [] {
    platform::MarketplaceConfig config = SmallMarketConfig();
    config.seed = 90210;
    return new platform::Marketplace(
        platform::Marketplace::Generate(config, &TestLanguage()));
  }();
  return *market;
}

const collect::DataStore& BaselineEvalStore() {
  static const collect::DataStore* store =
      new collect::DataStore(CrawlAll(BaselineEvalMarketplace()));
  return *store;
}

/// Even-index hostile items form the labeled retrain window, odd-index
/// items the held-out evaluation set.
void SplitHostile(std::vector<collect::CollectedItem>* train_items,
                  std::vector<int>* train_labels,
                  std::vector<collect::CollectedItem>* eval_items,
                  std::vector<int>* eval_labels) {
  const collect::DataStore& store = HostileStore();
  const std::vector<int> labels =
      StoreLabels(HostileMarketplace(), store);
  for (size_t i = 0; i < store.items().size(); ++i) {
    if (i % 2 == 0) {
      train_items->push_back(store.items()[i]);
      train_labels->push_back(labels[i]);
    } else {
      eval_items->push_back(store.items()[i]);
      eval_labels->push_back(labels[i]);
    }
  }
}

TEST(ArmsRaceTest, FrozenModelDegradesUnderHostileAdversary) {
  core::Cats frozen;
  ASSERT_TRUE(frozen.LoadModel(TestModelDir()).ok());

  const std::vector<collect::CollectedItem>& base_items =
      BaselineEvalStore().items();
  const std::vector<int> base_labels =
      StoreLabels(BaselineEvalMarketplace(), BaselineEvalStore());
  const double auc_pre =
      ml::RocAuc(base_labels, ScoreAll(frozen, base_items));

  std::vector<collect::CollectedItem> train_items, eval_items;
  std::vector<int> train_labels, eval_labels;
  SplitHostile(&train_items, &train_labels, &eval_items, &eval_labels);
  const double auc_drift =
      ml::RocAuc(eval_labels, ScoreAll(frozen, eval_items));

  std::printf("arms-race: auc_pre=%.4f auc_drift=%.4f drop=%.4f\n", auc_pre,
              auc_drift, auc_pre - auc_drift);
  // The adversary visibly hurts a frozen model: the drift is real.
  EXPECT_GE(auc_pre - auc_drift, 0.05)
      << "auc_pre=" << auc_pre << " auc_drift=" << auc_drift;
}

TEST(ArmsRaceTest, DriftDetectRetrainSwapRecovers) {
  // --- Deploy the baseline model behind the serve loop. --------------------
  serve::ServeOptions options;
  options.queue_capacity = 512;
  options.num_workers = 2;
  options.drift.window_size = 256;
  options.drift.min_observations = 64;
  options.drift.num_bins = 8;
  fault::FakeClock clock;
  options.clock = &clock;
  serve::ServeLoop loop(options);
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems(128)).ok());
  ASSERT_EQ(loop.drift_status(), drift::DriftStatus::kStable);

  std::vector<collect::CollectedItem> train_items, eval_items;
  std::vector<int> train_labels, eval_labels;
  SplitHostile(&train_items, &train_labels, &eval_items, &eval_labels);

  // --- Phase 1: hostile traffic arrives; the detector must trip from the
  // score stream alone, before the traffic window runs out. -----------------
  uint32_t next_id = 1;
  size_t drift_fired_at = 0;
  const std::vector<collect::CollectedItem>& hostile_all =
      HostileStore().items();
  for (size_t i = 0; i < hostile_all.size(); ++i) {
    serve::Message response = loop.Call(
        serve::MakeScoreItemRequest(next_id++, hostile_all[i]));
    ASSERT_EQ(response.type, serve::MessageType::kOk)
        << "request " << i << " failed";
    if (drift_fired_at == 0 &&
        loop.drift_status() == drift::DriftStatus::kDrifted) {
      drift_fired_at = i + 1;
    }
  }
  ASSERT_GT(drift_fired_at, 0u) << "drift never fired";
  EXPECT_LT(drift_fired_at, hostile_all.size())
      << "drift fired only at the very end of the window";
  serve::Message health = loop.Call(serve::MakeHealthRequest(next_id++));
  ASSERT_EQ(health.type, serve::MessageType::kOk);
  EXPECT_EQ(*health.payload.GetString("drift"), "drifted");

  // --- Phase 2: the scheduler reacts — warm-start on the recent labeled
  // window, save a candidate, hot-swap it in. -------------------------------
  const std::string candidate_dir =
      (std::filesystem::temp_directory_path() /
       ("cats_arms_race_candidate_" +
        std::to_string(static_cast<unsigned long>(::getpid()))))
          .string();
  std::filesystem::remove_all(candidate_dir);
  std::filesystem::create_directories(candidate_dir);

  drift::RetrainSchedulerOptions scheduler_options;
  scheduler_options.min_examples = 32;
  drift::RetrainScheduler scheduler(
      scheduler_options, &clock,
      [&](const std::vector<collect::CollectedItem>& window_items,
          const std::vector<int>& window_labels) -> Status {
        core::Cats candidate;
        CATS_RETURN_NOT_OK(candidate.LoadModel(TestModelDir()));
        CATS_RETURN_NOT_OK(candidate.WarmStartDetector(
            window_items, window_labels, /*extra_rounds=*/120));
        CATS_RETURN_NOT_OK(candidate.SaveModel(candidate_dir));
        serve::Message swapped = loop.Call(
            serve::MakeSwapModelRequest(next_id++, candidate_dir));
        if (swapped.type != serve::MessageType::kOk) {
          return Status::Internal("hot swap rejected the candidate");
        }
        return Status::OK();
      });
  for (size_t i = 0; i < train_items.size(); ++i) {
    scheduler.AddLabeled(train_items[i], train_labels[i]);
  }
  auto outcome = scheduler.Tick(loop.drift_status());
  ASSERT_TRUE(outcome.attempted);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(scheduler.successes(), 1u);
  EXPECT_EQ(loop.model_generation(), 2u);

  // The swap re-anchored the drift reference on the new model.
  EXPECT_EQ(loop.drift_status(), drift::DriftStatus::kStable);
  health = loop.Call(serve::MakeHealthRequest(next_id++));
  ASSERT_EQ(health.type, serve::MessageType::kOk);
  EXPECT_EQ(*health.payload.GetString("drift"), "stable");

  // --- Phase 3: the retrained model recovers on held-out hostile traffic. --
  core::Cats frozen, retrained;
  ASSERT_TRUE(frozen.LoadModel(TestModelDir()).ok());
  ASSERT_TRUE(retrained.LoadModel(candidate_dir).ok());
  const std::vector<collect::CollectedItem>& base_items =
      BaselineEvalStore().items();
  const std::vector<int> base_labels =
      StoreLabels(BaselineEvalMarketplace(), BaselineEvalStore());
  const double auc_pre =
      ml::RocAuc(base_labels, ScoreAll(frozen, base_items));
  const double auc_drift =
      ml::RocAuc(eval_labels, ScoreAll(frozen, eval_items));
  const double auc_post =
      ml::RocAuc(eval_labels, ScoreAll(retrained, eval_items));
  std::printf(
      "arms-race: auc_pre=%.4f auc_drift=%.4f auc_post=%.4f "
      "drift_fired_at=%zu/%zu\n",
      auc_pre, auc_drift, auc_post, drift_fired_at, hostile_all.size());
  EXPECT_GE(auc_pre - auc_drift, 0.05)
      << "auc_pre=" << auc_pre << " auc_drift=" << auc_drift;
  EXPECT_GE(auc_post, auc_pre - 0.02)
      << "auc_pre=" << auc_pre << " auc_post=" << auc_post;

  // --- Exact accounting: the whole arms race dropped nothing. --------------
  loop.Stop();
  const serve::ServeStats& stats = loop.stats();
  EXPECT_EQ(stats.received.load(),
            stats.accepted.load() + stats.overload_rejected.load() +
                stats.rejected.load());
  EXPECT_EQ(stats.accepted.load(),
            stats.ok.load() + stats.errors.load() + stats.shed.load());
  EXPECT_EQ(stats.overload_rejected.load(), 0u);
  EXPECT_EQ(stats.rejected.load(), 0u);
  EXPECT_EQ(stats.errors.load(), 0u);
  EXPECT_EQ(stats.shed.load(), 0u);

  std::filesystem::remove_all(candidate_dir);
}

}  // namespace
}  // namespace cats
