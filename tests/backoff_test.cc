#include "collect/backoff.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cats::collect {
namespace {

constexpr int64_t kBase = 50'000;
constexpr int64_t kCap = 5'000'000;

TEST(BackoffTest, FirstDelayIsExactlyBase) {
  Backoff backoff(kBase, kCap, 1);
  EXPECT_EQ(backoff.NextDelayMicros(), kBase);
}

TEST(BackoffTest, DelaysStayWithinEnvelope) {
  Backoff backoff(kBase, kCap, 2);
  int64_t prev = backoff.NextDelayMicros();
  for (int i = 0; i < 1000; ++i) {
    int64_t hi = prev > kCap / 3 ? kCap : prev * 3;
    int64_t d = backoff.NextDelayMicros();
    EXPECT_GE(d, kBase);
    EXPECT_LE(d, std::max(kBase, hi));
    EXPECT_LE(d, kCap);
    prev = d;
  }
}

TEST(BackoffTest, SameSeedSameSequence) {
  Backoff a(kBase, kCap, 77);
  Backoff b(kBase, kCap, 77);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.NextDelayMicros(), b.NextDelayMicros());
  }
}

TEST(BackoffTest, DifferentSeedsDiverge) {
  Backoff a(kBase, kCap, 1);
  Backoff b(kBase, kCap, 2);
  a.NextDelayMicros();  // both cold starts return base
  b.NextDelayMicros();
  bool diverged = false;
  for (int i = 0; i < 50 && !diverged; ++i) {
    diverged = a.NextDelayMicros() != b.NextDelayMicros();
  }
  EXPECT_TRUE(diverged);
}

TEST(BackoffTest, GrowsTowardCapUnderSustainedFailure) {
  // Expected delay grows exponentially: after enough draws the sequence
  // must be able to reach the cap region.
  Backoff backoff(kBase, kCap, 3);
  int64_t max_seen = 0;
  for (int i = 0; i < 200; ++i) {
    max_seen = std::max(max_seen, backoff.NextDelayMicros());
  }
  EXPECT_GT(max_seen, kCap / 2);
}

TEST(BackoffTest, ResetReturnsToColdBase) {
  Backoff backoff(kBase, kCap, 4);
  backoff.NextDelayMicros();
  backoff.NextDelayMicros();
  backoff.Reset();
  EXPECT_EQ(backoff.NextDelayMicros(), kBase);
}

TEST(BackoffTest, DegenerateParametersClamped) {
  // base <= 0 clamps to 1; cap below base clamps up to base.
  Backoff tiny(0, 0, 5);
  EXPECT_EQ(tiny.base_micros(), 1);
  EXPECT_EQ(tiny.cap_micros(), 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(tiny.NextDelayMicros(), 1);

  Backoff inverted(1000, 10, 6);
  EXPECT_EQ(inverted.cap_micros(), 1000);
  for (int i = 0; i < 20; ++i) {
    int64_t d = inverted.NextDelayMicros();
    EXPECT_GE(d, 1000);
    EXPECT_LE(d, 1000);
  }
}

}  // namespace
}  // namespace cats::collect
