#include "ml/binning.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml_test_util.h"
#include "util/thread_pool.h"

namespace cats::ml {
namespace {

TEST(BinMapperTest, BoundariesStrictlyIncreasingAndCoverMax) {
  Dataset data = MakeGaussianDataset(300, 4, 2.0, 11);
  BinMapper mapper = BinMapper::Build(data, 64);
  ASSERT_EQ(mapper.num_features(), 4u);
  for (size_t f = 0; f < 4; ++f) {
    size_t nb = mapper.num_bins(f);
    ASSERT_GE(nb, 1u);
    ASSERT_LE(nb, 64u);
    float max_value = data.Value(0, f);
    for (size_t i = 1; i < data.num_rows(); ++i) {
      max_value = std::max(max_value, data.Value(i, f));
    }
    for (size_t b = 1; b < nb; ++b) {
      EXPECT_LT(mapper.UpperBound(f, b - 1), mapper.UpperBound(f, b));
    }
    // The last boundary covers the feature's maximum training value.
    EXPECT_EQ(mapper.UpperBound(f, nb - 1), max_value);
  }
}

TEST(BinMapperTest, BinOfMatchesThresholdSemantics) {
  // Contract: value v lands in the first bin b with v <= UpperBound(f, b),
  // so a tree split "bin <= b" is the float comparison "v <= UpperBound".
  Dataset data = MakeGaussianDataset(200, 3, 3.0, 13);
  BinMapper mapper = BinMapper::Build(data, 32);
  for (size_t i = 0; i < data.num_rows(); i += 3) {
    for (size_t f = 0; f < 3; ++f) {
      float v = data.Value(i, f);
      size_t b = mapper.BinOf(f, v);
      EXPECT_LE(v, mapper.UpperBound(f, b));
      if (b > 0) EXPECT_GT(v, mapper.UpperBound(f, b - 1));
    }
  }
  // Values above every boundary land in the last bin (unseen at inference).
  size_t nb = mapper.num_bins(0);
  EXPECT_EQ(mapper.BinOf(0, mapper.UpperBound(0, nb - 1) + 100.0f), nb - 1);
}

TEST(BinMapperTest, FewDistinctValuesGetExactMidpointBoundaries) {
  // With distinct values <= max_bins every distinct value gets its own bin
  // and the boundaries are the exact-greedy candidate midpoints.
  Dataset data({"x"});
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        data.AddRow({static_cast<float>(i % 4)}, i % 2).ok());  // 0,1,2,3
  }
  BinMapper mapper = BinMapper::Build(data, 256);
  ASSERT_EQ(mapper.num_bins(0), 4u);
  EXPECT_EQ(mapper.UpperBound(0, 0), 0.5f);
  EXPECT_EQ(mapper.UpperBound(0, 1), 1.5f);
  EXPECT_EQ(mapper.UpperBound(0, 2), 2.5f);
  EXPECT_EQ(mapper.UpperBound(0, 3), 3.0f);  // the max value
  EXPECT_EQ(mapper.BinOf(0, 0.0f), 0u);
  EXPECT_EQ(mapper.BinOf(0, 1.0f), 1u);
  EXPECT_EQ(mapper.BinOf(0, 3.0f), 3u);
}

TEST(BinMapperTest, ManyDistinctValuesAreThinnedToQuantiles) {
  Dataset data({"x"});
  Rng rng(17);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(
        data.AddRow({static_cast<float>(rng.Normal(0.0, 1.0))}, i % 2).ok());
  }
  BinMapper mapper = BinMapper::Build(data, 64);
  EXPECT_LE(mapper.num_bins(0), 64u);
  EXPECT_GE(mapper.num_bins(0), 32u);  // a healthy spread, not collapsed
}

TEST(BinMapperTest, ConstantFeatureGetsSingleBin) {
  Dataset data({"c", "x"});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(data.AddRow({7.0f, static_cast<float>(i)}, i % 2).ok());
  }
  BinMapper mapper = BinMapper::Build(data, 32);
  EXPECT_EQ(mapper.num_bins(0), 1u);
  EXPECT_EQ(mapper.BinOf(0, 7.0f), 0u);
  EXPECT_EQ(mapper.BinOf(0, -100.0f), 0u);
}

TEST(BinMapperTest, BinRowsParallelMatchesSerial) {
  Dataset data = MakeGaussianDataset(500, 5, 2.0, 19);
  BinMapper mapper = BinMapper::Build(data, 48);
  std::vector<uint8_t> serial = mapper.BinRows(data, nullptr);
  ThreadPool pool(3);
  std::vector<uint8_t> parallel = mapper.BinRows(data, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(BinMapperTest, SerializeRoundTripIsExact) {
  Dataset data = MakeGaussianDataset(300, 3, 2.0, 23);
  BinMapper mapper = BinMapper::Build(data, 200);
  std::ostringstream out;
  mapper.AppendTo(out);
  std::istringstream in(out.str());
  auto parsed = BinMapper::ParseFrom(in, 3);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == mapper);
  // Re-serialize: byte-identical (%.9g round-trips floats exactly).
  std::ostringstream out2;
  parsed->AppendTo(out2);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(BinMapperTest, ParseRejectsCorruption) {
  auto expect_rejected = [](const std::string& content, size_t features,
                            const char* why) {
    std::istringstream in(content);
    EXPECT_FALSE(BinMapper::ParseFrom(in, features).ok()) << why;
  };
  expect_rejected("bims 2\n1 0.5\n1 0.25\n", 2, "bad header tag");
  expect_rejected("bins 3\n1 0.5\n1 0.25\n", 2, "feature count mismatch");
  expect_rejected("bins 2\n0\n1 0.25\n", 2, "zero bin count");
  expect_rejected("bins 2\n300 0.5\n1 0.25\n", 2, "bin count past uint8");
  expect_rejected("bins 2\n2 0.5\n", 2, "truncated boundaries");
  expect_rejected("bins 2\n1 nan\n1 0.25\n", 2, "non-finite boundary");
  expect_rejected("bins 2\n2 0.5 0.25\n1 0.1\n", 2,
                  "non-increasing boundaries");
}

}  // namespace
}  // namespace cats::ml
