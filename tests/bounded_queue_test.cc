#include "util/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cats::util {
namespace {

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    std::optional<int> v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CapacityClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));  // full
}

TEST(BoundedQueueTest, TryPushFailsWhenFullOrClosed) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Close();
  EXPECT_FALSE(q.TryPush(4));
}

TEST(BoundedQueueTest, PushBlocksUntilRoomThenSucceeds) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks: queue is full
    pushed.store(true);
  });
  // The producer must be stuck until a Pop makes room.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, PopBlocksUntilItemArrives) {
  BoundedQueue<int> q(4);
  std::optional<int> got;
  std::thread consumer([&] { got = q.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.Push(42));
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
}

TEST(BoundedQueueTest, CloseDrainsRemainingItemsThenEnds) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed: rejected
  // Drain-on-shutdown: both accepted items still come out, then nullopt.
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Pop().has_value());  // stays ended
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<int> results{0};
  std::thread producer([&] {
    if (!q.Push(2)) results.fetch_add(1);  // blocked on full, then closed
  });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] {
    if (!empty.Pop().has_value()) results.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  empty.Close();
  producer.join();
  consumer.join();
  EXPECT_EQ(results.load(), 2);
}

TEST(BoundedQueueTest, PopBatchTakesWhatIsQueuedWithoutBlockingAgain) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  std::vector<int> batch;
  // Ceiling below queued count: take exactly the ceiling.
  EXPECT_TRUE(q.PopBatch(&batch, 3));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  // Ceiling above queued count: take what is there, do not wait for more.
  EXPECT_TRUE(q.PopBatch(&batch, 10));
  EXPECT_EQ(batch, (std::vector<int>{3, 4}));
}

TEST(BoundedQueueTest, PopBatchEndsAfterCloseAndDrain) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(7));
  q.Close();
  std::vector<int> batch;
  EXPECT_TRUE(q.PopBatch(&batch, 4));
  EXPECT_EQ(batch, std::vector<int>{7});
  EXPECT_FALSE(q.PopBatch(&batch, 4));
  EXPECT_TRUE(batch.empty());
}

TEST(BoundedQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  // 4 producers x 250 items through a tiny queue into 3 consumers: every
  // item must come out exactly once despite constant backpressure.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(3);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::mutex mu;
  std::multiset<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      while (q.PopBatch(&batch, 7)) {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(batch.begin(), batch.end());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.Close();
  for (std::thread& t : consumers) t.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(seen.count(v), 1u) << v;
  }
}

TEST(BoundedQueueTest, MetricsTrackDepthThroughputAndStalls) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Gauge* depth = registry.GetGauge("test.bq.depth");
  obs::Counter* pushed = registry.GetCounter("test.bq.pushed_total");
  obs::Counter* push_stall =
      registry.GetCounter("test.bq.push_stall_micros_total");
  obs::Counter* pop_stall =
      registry.GetCounter("test.bq.pop_stall_micros_total");
  BoundedQueueMetrics metrics{depth, pushed, push_stall, pop_stall};
  BoundedQueue<int> q(1, metrics);

  ASSERT_TRUE(q.Push(1));
  EXPECT_EQ(pushed->value(), 1u);
  EXPECT_EQ(depth->value(), 1.0);

  // Force a push stall (full queue) and a pop stall (empty queue); both
  // counters must have accumulated real blocked time.
  std::thread producer([&] { EXPECT_TRUE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(depth->value(), 0.0);
  EXPECT_EQ(pushed->value(), 2u);
  EXPECT_GT(push_stall->value(), 0u);

  std::thread consumer([&] { EXPECT_EQ(q.Pop().value(), 3); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.Push(3));
  consumer.join();
  EXPECT_GT(pop_stall->value(), 0u);
}

TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.Push(std::make_unique<int>(5)));
  std::optional<std::unique_ptr<int>> v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace cats::util
