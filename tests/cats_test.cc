#include "core/cats.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "platform_test_util.h"

namespace cats::core {
namespace {

/// Builds a fully-trained Cats instance over the shared test fixtures.
std::unique_ptr<Cats> BuildTrainedCats() {
  const auto& market = cats::TestMarketplace();
  const auto& store = cats::TestStore();
  std::vector<std::string> corpus;
  for (const platform::Comment& c : market.comments()) {
    corpus.push_back(c.content);
  }
  CatsOptions options;
  options.semantic.word2vec.epochs = 2;
  options.semantic.word2vec.dim = 32;
  auto cats_system = std::make_unique<Cats>(options);
  Status st = cats_system->BuildSemanticModel(
      corpus, cats::TestLanguage().BuildSegmentationDictionary(),
      cats::TestLanguage().PositiveSeeds(3),
      cats::TestLanguage().NegativeSeeds(3),
      market.BuildSentimentCorpus(2000, 11));
  CATS_CHECK(st.ok());
  st = cats_system->TrainDetector(store.items(),
                                  cats::StoreLabels(market, store));
  CATS_CHECK(st.ok());
  return cats_system;
}

TEST(CatsTest, OperationsBeforeSemanticModelFail) {
  Cats cats_system;
  EXPECT_FALSE(cats_system.has_semantic_model());
  EXPECT_FALSE(cats_system.TrainDetector({}, {}).ok());
  EXPECT_FALSE(cats_system.Detect({}).ok());
  EXPECT_FALSE(cats_system.SaveModel("/tmp").ok());
}

TEST(CatsTest, EndToEndDetectionWorks) {
  auto cats_system = BuildTrainedCats();
  auto report = cats_system->Detect(cats::TestStore().items());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->detections.size(), 10u);

  const auto& market = cats::TestMarketplace();
  size_t tp = 0;
  for (const Detection& d : report->detections) {
    if (market.IsFraudItem(d.item_id)) ++tp;
  }
  double precision =
      static_cast<double>(tp) / report->detections.size();
  EXPECT_GT(precision, 0.6);
}

TEST(CatsTest, ModelPersistenceRoundTrip) {
  auto dir = std::filesystem::temp_directory_path() /
             ("cats_model_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  auto original = BuildTrainedCats();
  ASSERT_TRUE(original->SaveModel(dir.string()).ok());
  for (const char* file :
       {"gbdt.model", "sentiment.model", "positive_lexicon.txt",
        "negative_lexicon.txt", "dictionary.txt"}) {
    EXPECT_TRUE(std::filesystem::exists(dir / file)) << file;
  }

  Cats restored;
  ASSERT_TRUE(restored.LoadModel(dir.string()).ok());
  EXPECT_TRUE(restored.has_semantic_model());
  EXPECT_EQ(restored.semantic_model().positive.size(),
            original->semantic_model().positive.size());
  EXPECT_EQ(restored.semantic_model().dictionary.size(),
            original->semantic_model().dictionary.size());

  // Same detections as the original (deployment story: pre-train on
  // Taobao, ship the model).
  auto ra = original->Detect(cats::TestStore().items());
  auto rb = restored.Detect(cats::TestStore().items());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->detections.size(), rb->detections.size());
  for (size_t i = 0; i < ra->detections.size(); ++i) {
    EXPECT_EQ(ra->detections[i].item_id, rb->detections[i].item_id);
  }
  std::filesystem::remove_all(dir);
}

TEST(CatsTest, LoadFromMissingDirFails) {
  Cats cats_system;
  EXPECT_FALSE(cats_system.LoadModel("/nonexistent_dir_zzz").ok());
}

}  // namespace
}  // namespace cats::core
