// Deterministic chaos tests: crawl the shared marketplace under ~20 seeded
// fault plans, up to the full hostile profile, and assert that the hardened
// crawler (a) converges, (b) collects a store record-identical to a
// fault-free crawl, and (c) keeps its accounting invariants exact.

#include <gtest/gtest.h>

#include <vector>

#include "collect/crawler.h"
#include "fault/fault_plan.h"
#include "platform_test_util.h"

namespace cats::collect {
namespace {

/// Two stores are record-identical: same shops, items, and comments in the
/// same order with the same content.
void ExpectStoresIdentical(const DataStore& got, const DataStore& want) {
  ASSERT_EQ(got.shops().size(), want.shops().size());
  for (size_t i = 0; i < want.shops().size(); ++i) {
    EXPECT_EQ(got.shops()[i].shop_id, want.shops()[i].shop_id);
    EXPECT_EQ(got.shops()[i].shop_name, want.shops()[i].shop_name);
    EXPECT_EQ(got.shops()[i].shop_url, want.shops()[i].shop_url);
  }
  ASSERT_EQ(got.items().size(), want.items().size());
  for (size_t i = 0; i < want.items().size(); ++i) {
    const CollectedItem& a = got.items()[i];
    const CollectedItem& b = want.items()[i];
    EXPECT_EQ(a.item.item_id, b.item.item_id);
    EXPECT_EQ(a.item.shop_id, b.item.shop_id);
    EXPECT_EQ(a.item.item_name, b.item.item_name);
    EXPECT_EQ(a.item.price, b.item.price);
    EXPECT_EQ(a.item.sales_volume, b.item.sales_volume);
    EXPECT_EQ(a.item.category, b.item.category);
    ASSERT_EQ(a.comments.size(), b.comments.size()) << "item " << i;
    for (size_t j = 0; j < b.comments.size(); ++j) {
      EXPECT_EQ(a.comments[j].comment_id, b.comments[j].comment_id);
      EXPECT_EQ(a.comments[j].content, b.comments[j].content);
      EXPECT_EQ(a.comments[j].nickname, b.comments[j].nickname);
      EXPECT_EQ(a.comments[j].user_exp_value, b.comments[j].user_exp_value);
      EXPECT_EQ(a.comments[j].date, b.comments[j].date);
    }
  }
  EXPECT_EQ(got.num_comments(), want.num_comments());
}

/// The crawler's books must balance against itself and against the API:
/// every request is exactly one of {accepted page, pagination probe, retry
/// trigger}, and every retry was triggered by exactly one observed fault.
void ExpectAccountingExact(const Crawler& crawler,
                           const platform::MarketplaceApi& api) {
  const CrawlStats& s = crawler.stats();
  EXPECT_EQ(s.requests, api.request_count());
  EXPECT_EQ(s.requests, s.pages_fetched + s.pagination_probes + s.retries);
  EXPECT_EQ(s.retries, s.rate_limited + s.server_errors + s.malformed_bodies);
  // What the crawler observed is what the plan injected.
  const fault::FaultPlan& plan = api.fault_plan();
  EXPECT_EQ(s.rate_limited, plan.injected(fault::FaultKind::kRateLimit));
  EXPECT_EQ(s.server_errors, plan.injected(fault::FaultKind::kServerError));
  // Scheduled corruptions that hit an already-failing request (e.g. a
  // pagination probe) never manifest, so compare against what the API
  // actually corrupted.
  EXPECT_EQ(s.malformed_bodies, api.corrupted_bodies());
  EXPECT_LE(s.malformed_bodies,
            plan.injected(fault::FaultKind::kTruncatedBody) +
                plan.injected(fault::FaultKind::kGarbledBody));
  EXPECT_EQ(s.slow_responses,
            plan.injected(fault::FaultKind::kSlowResponse));
  if (plan.injected(fault::FaultKind::kRateLimit) > 0) {
    EXPECT_GT(s.backoff_micros, 0);
  }
}

struct ChaosCase {
  const char* name;
  uint64_t seed;
  fault::FaultProfile profile;
};

std::vector<ChaosCase> ChaosCases() {
  std::vector<ChaosCase> cases;
  // Single-fault plans: each fault kind alone, two seeds each.
  struct Single {
    const char* name;
    void (*apply)(fault::FaultProfile*);
  };
  const Single singles[] = {
      {"rate_limit", [](fault::FaultProfile* p) { p->rate_limit_prob = 0.05; }},
      {"server_error_bursts",
       [](fault::FaultProfile* p) {
         p->server_error_prob = 0.03;
         p->server_error_burst_max = 3;
       }},
      {"truncated", [](fault::FaultProfile* p) { p->truncate_body_prob = 0.04; }},
      {"garbled", [](fault::FaultProfile* p) { p->garble_body_prob = 0.04; }},
      {"slow", [](fault::FaultProfile* p) { p->slow_response_prob = 0.03; }},
      {"stale_pages",
       [](fault::FaultProfile* p) { p->stale_total_pages_prob = 0.10; }},
      {"repagination",
       [](fault::FaultProfile* p) { p->repagination_shift_prob = 0.10; }},
      {"duplicates",
       [](fault::FaultProfile* p) { p->duplicate_record_prob = 0.05; }},
  };
  for (const Single& single : singles) {
    for (uint64_t seed : {101u, 202u}) {
      fault::FaultProfile profile = fault::FaultProfile::None();
      single.apply(&profile);
      cases.push_back({single.name, seed, profile});
    }
  }
  // Full hostile plans, several seeds.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    cases.push_back({"hostile", seed, fault::FaultProfile::Hostile()});
  }
  return cases;  // 8 * 2 + 6 = 22 plans
}

CrawlerOptions ChaosCrawlerOptions() {
  CrawlerOptions options;
  options.requests_per_second = 0.0;  // uncapped: chaos, not throughput
  options.max_retries = 12;           // hostile bursts need headroom
  options.backoff_cap_micros = 500'000;  // keep virtual waits small
  options.breaker_failure_threshold = 5;
  options.breaker_pause_micros = 200'000;
  return options;
}

TEST(ChaosCrawlTest, ConvergesToFaultFreeStoreUnderEveryPlan) {
  const platform::Marketplace& m = TestMarketplace();
  const DataStore& reference = TestStore();  // fault-free crawl
  for (const ChaosCase& chaos : ChaosCases()) {
    SCOPED_TRACE(std::string(chaos.name) + "/seed=" +
                 std::to_string(chaos.seed));
    FakeClock clock;
    platform::ApiOptions api_options;
    api_options.faults = chaos.profile;
    api_options.seed = chaos.seed;
    api_options.clock = &clock;
    platform::MarketplaceApi api(&m, api_options);
    Crawler crawler(&api, ChaosCrawlerOptions(), &clock);
    DataStore store;
    Status st = crawler.Crawl(&store);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ExpectStoresIdentical(store, reference);
    ExpectAccountingExact(crawler, api);
  }
}

TEST(ChaosCrawlTest, SameSeedReproducesIdenticalRun) {
  const platform::Marketplace& m = TestMarketplace();
  auto run = [&](uint64_t seed) {
    FakeClock clock;
    platform::ApiOptions api_options;
    api_options.faults = fault::FaultProfile::Hostile();
    api_options.seed = seed;
    api_options.clock = &clock;
    platform::MarketplaceApi api(&m, api_options);
    Crawler crawler(&api, ChaosCrawlerOptions(), &clock);
    DataStore store;
    Status st = crawler.Crawl(&store);
    CATS_CHECK(st.ok());
    return std::make_tuple(crawler.stats().requests,
                           crawler.stats().retries,
                           crawler.stats().backoff_micros,
                           clock.NowMicros());
  };
  EXPECT_EQ(run(31337), run(31337));
  EXPECT_NE(run(31337), run(31338));
}

TEST(ChaosCrawlTest, DuplicatesDroppedMatchInjected) {
  const platform::Marketplace& m = TestMarketplace();
  FakeClock clock;
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.duplicate_record_prob = 0.04;
  api_options.faults.repagination_shift_prob = 0.08;
  api_options.seed = 555;
  platform::MarketplaceApi api(&m, api_options);
  Crawler crawler(&api, ChaosCrawlerOptions(), &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  // Every record the API served twice was dropped exactly once.
  EXPECT_EQ(store.duplicates_dropped(), api.injected_duplicates());
  EXPECT_GT(store.duplicates_dropped(), 0u);
  EXPECT_EQ(store.items().size(), m.items().size());
}

// A crawl aborted mid-flight by a tiny retry budget resumes from its
// checkpoint: the finished store is identical, and the resumed run is
// verifiably cheaper than a from-scratch crawl (completed pages are not
// re-fetched).
TEST(ChaosCrawlTest, CheckpointResumeSkipsCompletedPages) {
  const platform::Marketplace& m = TestMarketplace();
  const DataStore& reference = TestStore();

  FakeClock clock;
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::Hostile();
  api_options.seed = 9001;
  api_options.clock = &clock;
  platform::MarketplaceApi api(&m, api_options);

  CrawlerOptions options = ChaosCrawlerOptions();
  options.retry_budget = 5;  // abort early under hostile weather
  Crawler crawler(&api, options, &clock);

  DataStore store;
  CrawlCheckpoint checkpoint;
  Status st = crawler.Crawl(&store, &checkpoint);
  ASSERT_FALSE(st.ok());  // the budget must bite under Hostile()
  ASSERT_FALSE(checkpoint.complete);
  uint64_t requests_before_resume = api.request_count();
  EXPECT_GT(requests_before_resume, 0u);
  size_t pages_before_resume = crawler.stats().pages_fetched;
  EXPECT_GT(pages_before_resume, 0u);

  // Resume with a realistic budget until done (hostile weather can exhaust
  // a small budget more than once).
  CrawlerOptions resume_options = ChaosCrawlerOptions();
  Crawler resumer(&api, resume_options, &clock);
  st = resumer.Crawl(&store, &checkpoint);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(checkpoint.complete);
  ExpectStoresIdentical(store, reference);

  // Completed pages were not re-fetched: the combined accepted-page count
  // equals one fault-free crawl's pages (+1 tolerance for the aborted
  // in-flight page, which is never counted twice).
  uint64_t total_pages_fetched =
      pages_before_resume + resumer.stats().pages_fetched;
  // A fault-free crawl of this marketplace fetches a fixed number of pages;
  // measure it directly.
  platform::ApiOptions clean_options;
  clean_options.faults = fault::FaultProfile::None();
  platform::MarketplaceApi clean_api(&m, clean_options);
  FakeClock clean_clock;
  Crawler clean_crawler(&clean_api, CrawlerOptions{}, &clean_clock);
  DataStore clean_store;
  ASSERT_TRUE(clean_crawler.Crawl(&clean_store).ok());
  uint64_t clean_pages = clean_crawler.stats().pages_fetched;
  EXPECT_GE(total_pages_fetched, clean_pages);
  // +1: the aborted walk's in-flight page is re-fetched on resume.
  EXPECT_LE(total_pages_fetched, clean_pages + 1);

  // And resuming a complete checkpoint is a no-op.
  uint64_t requests_after = api.request_count();
  ASSERT_TRUE(resumer.Crawl(&store, &checkpoint).ok());
  EXPECT_EQ(api.request_count(), requests_after);
}

}  // namespace
}  // namespace cats::collect
