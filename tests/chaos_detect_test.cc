// Deterministic chaos tests for the detection pipeline's dirty-data
// handling: crawl the shared marketplace under seeded data-fault plans
// (missing fields, absurd prices, garbled / oversized comment text), run
// detection, and assert that (a) nothing crashes, (b) the report accounts
// for every scanned item exactly — clean + degraded + quarantined — and
// (c) the quarantine matches, id for id, what the API actually poisoned.
// Also the SaveModel/LoadModel corruption matrix: every way a model dir can
// be damaged mid-flight is rejected with a typed error, while a clean
// save -> load -> save round-trip is bit-identical.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "collect/crawler.h"
#include "core/cats.h"
#include "core/detector.h"
#include "core/model_manifest.h"
#include "core/record_validator.h"
#include "fault/data_fault_plan.h"
#include "platform_test_util.h"
#include "util/csv.h"

namespace cats::core {
namespace {

using collect::CollectedItem;
using collect::DataStore;

/// One detector trained on the clean store, shared across the battery
/// (training is the expensive step; Detect is const).
const Detector& TrainedDetector() {
  static const Detector* detector = [] {
    auto* d = new Detector(&cats::TestSemanticModel());
    const auto& store = cats::TestStore();
    CATS_CHECK(d->Train(store.items(),
                        cats::StoreLabels(cats::TestMarketplace(), store))
                   .ok());
    return d;
  }();
  return *detector;
}

/// Crawls the shared marketplace through an API injecting `data_faults`
/// (and optionally transport faults too). Returns the store; the API is
/// passed in so callers can read its ground-truth poisoned/degraded sets.
DataStore CrawlWithDataFaults(platform::MarketplaceApi* api) {
  collect::FakeClock clock;
  collect::CrawlerOptions options;
  options.requests_per_second = 0.0;
  options.max_retries = 12;
  options.backoff_cap_micros = 500'000;
  collect::Crawler crawler(api, options, &clock);
  DataStore store;
  Status st = crawler.Crawl(&store);
  CATS_CHECK(st.ok());
  return store;
}

std::set<uint64_t> QuarantinedIds(const DetectionReport& report) {
  std::set<uint64_t> ids;
  for (const QuarantineEntry& e : report.quarantine.entries) {
    ids.insert(e.item_id);
  }
  return ids;
}

/// The report's books must balance: every scanned item lands in exactly one
/// of {quarantined, rule-filtered, classified}, and the degraded are a
/// subset of the classified.
void ExpectAccountingExact(const DetectionReport& report, size_t num_items) {
  EXPECT_EQ(report.items_scanned, num_items);
  EXPECT_EQ(report.items_scanned,
            report.items_quarantined + report.items_filtered_low_sales +
                report.items_filtered_no_signal +
                report.items_filtered_no_comments + report.items_classified);
  EXPECT_EQ(report.items_quarantined, report.quarantine.size());
  EXPECT_LE(report.items_degraded, report.items_classified);
  EXPECT_LE(report.degraded_detections.size(), report.items_degraded);
  for (const Detection& d : report.detections) {
    EXPECT_EQ(d.confidence, ScoreConfidence::kFull);
  }
  for (const Detection& d : report.degraded_detections) {
    EXPECT_EQ(d.confidence, ScoreConfidence::kDegraded);
  }
}

/// The quarantine must match the API's ground truth exactly — same ids, no
/// more, no less — and the degraded count must match what a validator run
/// over the store finds.
void ExpectTriageMatchesGroundTruth(const DetectionReport& report,
                                    const DataStore& store,
                                    const platform::MarketplaceApi& api) {
  std::set<uint64_t> expected_poison(api.data_poisoned_items().begin(),
                                     api.data_poisoned_items().end());
  EXPECT_EQ(QuarantinedIds(report), expected_poison);

  const RecordValidator& validator = TrainedDetector().validator();
  size_t expected_degraded = 0;
  for (const CollectedItem& ci : store.items()) {
    if (validator.Validate(ci).verdict == RecordVerdict::kDegraded) {
      ++expected_degraded;
    }
  }
  EXPECT_EQ(report.items_degraded, expected_degraded);

  // Every API-degraded item that was not also poisoned must have been
  // triaged degraded (never silently treated as clean or dropped).
  for (uint64_t id : api.data_degraded_items()) {
    if (expected_poison.count(id)) continue;
    for (const CollectedItem& ci : store.items()) {
      if (ci.item.item_id != id) continue;
      EXPECT_EQ(validator.Validate(ci).verdict, RecordVerdict::kDegraded)
          << "item " << id;
    }
  }
}

struct DataChaosCase {
  const char* name;
  uint64_t seed;
  fault::DataFaultProfile profile;
};

std::vector<DataChaosCase> DataChaosCases() {
  std::vector<DataChaosCase> cases;
  struct Single {
    const char* name;
    void (*apply)(fault::DataFaultProfile*);
  };
  const Single singles[] = {
      {"drop_comments",
       [](fault::DataFaultProfile* p) { p->drop_comments_prob = 0.08; }},
      {"drop_orders",
       [](fault::DataFaultProfile* p) { p->drop_orders_prob = 0.08; }},
      {"absurd_price",
       [](fault::DataFaultProfile* p) { p->absurd_price_prob = 0.05; }},
      {"corrupt_text",
       [](fault::DataFaultProfile* p) { p->corrupt_text_prob = 0.02; }},
      {"oversize_text",
       [](fault::DataFaultProfile* p) { p->oversize_text_prob = 0.01; }},
      {"duplicate_comment_id",
       [](fault::DataFaultProfile* p) {
         p->duplicate_comment_id_prob = 0.05;
       }},
  };
  for (const Single& single : singles) {
    for (uint64_t seed : {11u, 22u}) {
      fault::DataFaultProfile profile;
      single.apply(&profile);
      cases.push_back({single.name, seed, profile});
    }
  }
  for (uint64_t seed : {1u, 2u, 3u}) {
    cases.push_back({"hostile", seed, fault::DataFaultProfile::Hostile()});
  }
  return cases;  // 6 * 2 + 3 = 15 plans
}

TEST(ChaosDetectTest, PipelineSurvivesEveryDataFaultPlan) {
  const platform::Marketplace& m = cats::TestMarketplace();
  for (const DataChaosCase& chaos : DataChaosCases()) {
    SCOPED_TRACE(std::string(chaos.name) + "/seed=" +
                 std::to_string(chaos.seed));
    platform::ApiOptions api_options;
    api_options.faults = fault::FaultProfile::None();
    api_options.data_faults = chaos.profile;
    api_options.seed = chaos.seed;
    platform::MarketplaceApi api(&m, api_options);
    DataStore store = CrawlWithDataFaults(&api);
    EXPECT_EQ(store.items().size(), m.items().size());

    auto report = TrainedDetector().Detect(store.items());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ExpectAccountingExact(*report, store.items().size());
    ExpectTriageMatchesGroundTruth(*report, store, api);
  }
}

TEST(ChaosDetectTest, SurvivesCombinedTransportAndDataHostility) {
  // Transport chaos (503 bursts, truncation, duplicates) on top of dirty
  // data: the crawler retries its way through, and because data-fault
  // decisions are pure functions of record ids, re-served records carry
  // identical corruption — the pipeline's books still balance exactly.
  const platform::Marketplace& m = cats::TestMarketplace();
  collect::FakeClock clock;
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::Hostile();
  api_options.data_faults = fault::DataFaultProfile::Hostile();
  api_options.seed = 31337;
  api_options.clock = &clock;
  platform::MarketplaceApi api(&m, api_options);

  collect::CrawlerOptions options;
  options.requests_per_second = 0.0;
  options.max_retries = 12;
  options.backoff_cap_micros = 500'000;
  collect::Crawler crawler(&api, options, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  ASSERT_EQ(store.items().size(), m.items().size());

  auto report = TrainedDetector().Detect(store.items());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->items_quarantined, 0u);
  EXPECT_GT(report->items_degraded, 0u);
  ExpectAccountingExact(*report, store.items().size());
  ExpectTriageMatchesGroundTruth(*report, store, api);
}

TEST(ChaosDetectTest, SameSeedReproducesIdenticalQuarantine) {
  const platform::Marketplace& m = cats::TestMarketplace();
  auto run = [&](uint64_t seed) {
    platform::ApiOptions api_options;
    api_options.faults = fault::FaultProfile::None();
    api_options.data_faults = fault::DataFaultProfile::Hostile();
    api_options.seed = seed;
    platform::MarketplaceApi api(&m, api_options);
    DataStore store = CrawlWithDataFaults(&api);
    auto report = TrainedDetector().Detect(store.items());
    CATS_CHECK(report.ok());
    return std::move(report).value();
  };
  DetectionReport a = run(777);
  DetectionReport b = run(777);
  ASSERT_EQ(a.quarantine.size(), b.quarantine.size());
  for (size_t i = 0; i < a.quarantine.entries.size(); ++i) {
    EXPECT_EQ(a.quarantine.entries[i].item_id,
              b.quarantine.entries[i].item_id);
    EXPECT_EQ(a.quarantine.entries[i].issues,
              b.quarantine.entries[i].issues);
  }
  EXPECT_EQ(a.items_degraded, b.items_degraded);
  EXPECT_EQ(a.detections.size(), b.detections.size());
  DetectionReport c = run(778);
  EXPECT_NE(QuarantinedIds(a), QuarantinedIds(c));
}

TEST(ChaosDetectTest, DegradedItemsAreScoredNotDropped) {
  // Hand-degrade known items from the clean store: strip the comments of
  // one, mark another's orders missing. Both must be triaged degraded,
  // classified (not dropped, not NaN), and any resulting flag must land in
  // degraded_detections with kDegraded confidence.
  std::vector<CollectedItem> items = cats::TestStore().items();
  uint64_t stripped_id = 0, orderless_id = 0;
  bool stripped = false, orderless = false;
  for (CollectedItem& ci : items) {
    if (!stripped && ci.comments.size() > 3) {
      ci.comments.clear();
      stripped_id = ci.item.item_id;
      stripped = true;
    } else if (!orderless && ci.item.sales_volume > 0) {
      ci.item.sales_volume = -1;
      orderless_id = ci.item.item_id;
      orderless = true;
    }
  }
  ASSERT_TRUE(stripped);
  ASSERT_TRUE(orderless);

  auto report = TrainedDetector().Detect(items);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectAccountingExact(*report, items.size());
  EXPECT_GE(report->items_degraded, 2u);
  EXPECT_FALSE(report->quarantine.Contains(stripped_id));
  EXPECT_FALSE(report->quarantine.Contains(orderless_id));
  // Degraded flags never leak into the full-confidence detections.
  for (const Detection& d : report->detections) {
    EXPECT_NE(d.item_id, stripped_id);
  }
}

TEST(ChaosDetectTest, HandBuiltPoisonIsQuarantinedWithTypedReasons) {
  std::vector<CollectedItem> items;
  auto make_item = [](uint64_t id) {
    CollectedItem ci;
    ci.item.item_id = id;
    ci.item.price = 25.0;
    ci.item.sales_volume = 50;
    collect::CommentRecord c;
    c.item_id = id;
    c.comment_id = id * 100;
    c.content = "好评很好商品";
    ci.comments.push_back(c);
    return ci;
  };
  CollectedItem clean = make_item(1);
  CollectedItem absurd = make_item(2);
  absurd.item.price = 5e11;
  CollectedItem corrupt = make_item(3);
  corrupt.comments[0].content = "\xFE\x80garbage";
  CollectedItem oversized = make_item(4);
  oversized.comments[0].content.assign(20 * 1024, 'a');
  CollectedItem duplicated = make_item(5);
  duplicated.comments.push_back(duplicated.comments[0]);
  items = {clean, absurd, corrupt, oversized, duplicated};

  auto report = TrainedDetector().Detect(items);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectAccountingExact(*report, items.size());
  EXPECT_EQ(report->items_quarantined, 4u);
  EXPECT_FALSE(report->quarantine.Contains(1));
  auto issues_of = [&](uint64_t id) {
    for (const QuarantineEntry& e : report->quarantine.entries) {
      if (e.item_id == id) return e.issues;
    }
    return RecordIssue::kNone;
  };
  EXPECT_TRUE(HasIssue(issues_of(2), RecordIssue::kAbsurdPrice));
  EXPECT_TRUE(HasIssue(issues_of(3), RecordIssue::kCorruptCommentText));
  EXPECT_TRUE(HasIssue(issues_of(4), RecordIssue::kOversizedComment));
  EXPECT_TRUE(HasIssue(issues_of(5), RecordIssue::kDuplicateCommentIds));
  // Poison never reaches the classifier's outputs.
  for (const Detection& d : report->detections) {
    EXPECT_EQ(d.item_id, 1u);
  }
  EXPECT_TRUE(report->degraded_detections.empty());
}

TEST(ChaosDetectTest, ValidationOffReplicatesLegacyPipeline) {
  DetectorOptions options;
  options.validate_records = false;
  Detector detector(&cats::TestSemanticModel(), options);
  const auto& store = cats::TestStore();
  ASSERT_TRUE(detector
                  .Train(store.items(),
                         cats::StoreLabels(cats::TestMarketplace(), store))
                  .ok());
  auto report = detector.Detect(store.items());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->items_quarantined, 0u);
  EXPECT_EQ(report->items_degraded, 0u);
  EXPECT_TRUE(report->quarantine.empty());
  EXPECT_TRUE(report->degraded_detections.empty());
  // The pre-robustness invariant.
  EXPECT_EQ(report->items_scanned,
            report->items_classified + report->items_filtered_low_sales +
                report->items_filtered_no_signal +
                report->items_filtered_no_comments);
}

// ---------------------------------------------------------------------------
// Model-persistence corruption matrix.

/// A fully trained Cats over the shared fixtures (semantic model reused
/// from the disk cache, so only the Gbdt trains here).
std::unique_ptr<Cats> TrainedCats() {
  auto cats_system = std::make_unique<Cats>();
  cats_system->SetSemanticModel(SemanticModel(cats::TestSemanticModel()));
  const auto& store = cats::TestStore();
  CATS_CHECK(cats_system
                 ->TrainDetector(store.items(),
                                 cats::StoreLabels(cats::TestMarketplace(),
                                                   store))
                 .ok());
  return cats_system;
}

class ModelCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::temp_directory_path() /
             ("cats_chaos_model_" + std::to_string(::getpid())))
                .string();
    std::filesystem::create_directories(base_ + "/saved");
    auto cats_system = TrainedCats();
    ASSERT_TRUE(cats_system->SaveModel(base_ + "/saved").ok());
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  /// Fresh copy of the saved model dir to damage.
  std::string DamageCopy(const std::string& name) {
    std::string dir = base_ + "/" + name;
    std::filesystem::copy(base_ + "/saved", dir);
    return dir;
  }

  static Status LoadFrom(const std::string& dir) {
    Cats cats_system;
    return cats_system.LoadModel(dir);
  }

  std::string base_;
};

TEST_F(ModelCorruptionTest, CleanRoundTripIsBitIdentical) {
  Cats restored;
  ASSERT_TRUE(restored.LoadModel(base_ + "/saved").ok());
  std::string resaved = base_ + "/resaved";
  std::filesystem::create_directories(resaved);
  ASSERT_TRUE(restored.SaveModel(resaved).ok());
  for (const auto& entry :
       std::filesystem::directory_iterator(base_ + "/saved")) {
    std::string file = entry.path().filename().string();
    auto a = ReadFileToString(entry.path().string());
    auto b = ReadFileToString(resaved + "/" + file);
    ASSERT_TRUE(a.ok() && b.ok()) << file;
    EXPECT_EQ(*a, *b) << file << " differs after save -> load -> save";
  }
}

TEST_F(ModelCorruptionTest, EveryTruncatedFileIsRejected) {
  auto manifest = ReadManifest(base_ + "/saved");
  ASSERT_TRUE(manifest.ok());
  for (const ManifestEntry& entry : manifest->entries) {
    std::string dir = DamageCopy("trunc_" + entry.file);
    auto content = ReadFileToString(dir + "/" + entry.file);
    ASSERT_TRUE(content.ok());
    ASSERT_TRUE(WriteStringToFileAtomic(
                    dir + "/" + entry.file,
                    content->substr(0, content->size() / 2))
                    .ok());
    Status st = LoadFrom(dir);
    ASSERT_FALSE(st.ok()) << entry.file;
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << entry.file;
    EXPECT_NE(st.message().find(entry.file), std::string::npos);
  }
}

TEST_F(ModelCorruptionTest, EveryBitFlippedFileIsRejected) {
  auto manifest = ReadManifest(base_ + "/saved");
  ASSERT_TRUE(manifest.ok());
  for (const ManifestEntry& entry : manifest->entries) {
    std::string dir = DamageCopy("flip_" + entry.file);
    auto content = ReadFileToString(dir + "/" + entry.file);
    ASSERT_TRUE(content.ok());
    std::string flipped = *content;
    flipped[flipped.size() / 2] ^= 0x01;  // same size: only the CRC sees it
    ASSERT_TRUE(
        WriteStringToFileAtomic(dir + "/" + entry.file, flipped).ok());
    Status st = LoadFrom(dir);
    ASSERT_FALSE(st.ok()) << entry.file;
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << entry.file;
  }
}

TEST_F(ModelCorruptionTest, EveryDeletedFileIsRejected) {
  auto manifest = ReadManifest(base_ + "/saved");
  ASSERT_TRUE(manifest.ok());
  for (const ManifestEntry& entry : manifest->entries) {
    std::string dir = DamageCopy("del_" + entry.file);
    std::filesystem::remove(dir + "/" + entry.file);
    Status st = LoadFrom(dir);
    ASSERT_FALSE(st.ok()) << entry.file;
    EXPECT_EQ(st.code(), StatusCode::kNotFound) << entry.file;
    EXPECT_NE(st.message().find(entry.file), std::string::npos);
  }
}

TEST_F(ModelCorruptionTest, AppendedGarbageIsRejected) {
  auto manifest = ReadManifest(base_ + "/saved");
  ASSERT_TRUE(manifest.ok());
  for (const ManifestEntry& entry : manifest->entries) {
    std::string dir = DamageCopy("garbage_" + entry.file);
    auto content = ReadFileToString(dir + "/" + entry.file);
    ASSERT_TRUE(content.ok());
    ASSERT_TRUE(WriteStringToFileAtomic(dir + "/" + entry.file,
                                        *content + "\ntrailing junk 123\n")
                    .ok());
    Status st = LoadFrom(dir);
    ASSERT_FALSE(st.ok()) << entry.file;
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << entry.file;
  }
}

TEST_F(ModelCorruptionTest, MissingManifestIsRejected) {
  // A model dir without a MANIFEST is by definition partially written
  // (SaveModel writes it last) — never silently accepted.
  std::string dir = DamageCopy("no_manifest");
  std::filesystem::remove(dir + "/" + kManifestFileName);
  Status st = LoadFrom(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST_F(ModelCorruptionTest, VersionSkewIsRejected) {
  std::string dir = DamageCopy("version_skew");
  auto content = ReadFileToString(dir + "/" + kManifestFileName);
  ASSERT_TRUE(content.ok());
  std::string bumped = *content;
  size_t pos = bumped.find("cats-model-manifest-v1");
  ASSERT_NE(pos, std::string::npos);
  bumped.replace(pos, 22, "cats-model-manifest-v9");
  ASSERT_TRUE(
      WriteStringToFileAtomic(dir + "/" + kManifestFileName, bumped).ok());
  Status st = LoadFrom(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ModelCorruptionTest, MissingDirIsOneClearError) {
  Status st = LoadFrom("/nonexistent_model_dir_zzz");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_NE(st.message().find("/nonexistent_model_dir_zzz"),
            std::string::npos);
}

}  // namespace
}  // namespace cats::core
