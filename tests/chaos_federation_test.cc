// Chaos coverage for the federation plane: every shard gets its platform's
// own hostile fault profile, and the federated crawl must still converge
// to exactly the fault-free store per platform — same shops, same items,
// same comments, byte for byte.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "federate/federation.h"
#include "platform_test_util.h"

namespace cats {
namespace {

std::string SaveStoreToString(const collect::DataStore& store,
                              const std::string& tag) {
  auto dir = std::filesystem::temp_directory_path() /
             ("cats_chaosfed_" + tag + "_" +
              std::to_string(static_cast<unsigned long>(::getpid())));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  CATS_CHECK(store.SaveJsonl(dir.string()).ok());
  std::ostringstream out;
  for (const char* file : {"shops.jsonl", "items.jsonl", "comments.jsonl"}) {
    std::ifstream in(dir / file, std::ios::binary);
    CATS_CHECK(in.good());
    out << in.rdbuf();
  }
  std::filesystem::remove_all(dir);
  return out.str();
}

TEST(ChaosFederationTest, HostileShardsConvergeToFaultFreeStores) {
  auto shards = federate::BuiltinShards(platform::BuiltinPlatformNames(),
                                        0.002);
  ASSERT_TRUE(shards.ok());

  std::vector<federate::ShardConfig> clean = *shards;
  std::vector<federate::ShardConfig> hostile = *shards;
  for (federate::ShardConfig& shard : clean) {
    shard.spec.default_weather = fault::FaultProfile::None();
  }
  for (federate::ShardConfig& shard : hostile) {
    shard.spec.default_weather = fault::FaultProfile::Hostile();
    shard.crawler.max_retries = 12;  // ride out 5xx bursts
  }

  federate::FederationReport clean_report =
      federate::CrawlFederation(clean, TestLanguage(), /*parallel=*/true);
  federate::FederationReport hostile_report =
      federate::CrawlFederation(hostile, TestLanguage(), /*parallel=*/true);
  ASSERT_TRUE(clean_report.all_ok());
  ASSERT_TRUE(hostile_report.all_ok());

  uint64_t faults_seen = 0;
  for (size_t i = 0; i < hostile_report.shards.size(); ++i) {
    const federate::ShardReport& h = hostile_report.shards[i];
    const federate::ShardReport& c = clean_report.shards[i];
    SCOPED_TRACE(h.platform_id);
    // Exact per-platform accounting under hostile weather: nothing lost,
    // nothing invented — bit-for-bit the fault-free crawl.
    EXPECT_EQ(h.store.shops().size(), h.truth_shops);
    EXPECT_EQ(h.store.items().size(), h.truth_items);
    EXPECT_EQ(SaveStoreToString(h.store, "h" + std::to_string(i)),
              SaveStoreToString(c.store, "c" + std::to_string(i)));
    // The weather was real: the shard had to retry / probe to get there.
    faults_seen += h.stats.rate_limited + h.stats.server_errors +
                   h.stats.malformed_bodies + h.stats.pagination_probes;
    EXPECT_GE(h.stats.requests, c.stats.requests);
  }
  EXPECT_GT(faults_seen, 0u);
}

TEST(ChaosFederationTest, PerShardWeatherIsIndependent) {
  // One calm shard and one hostile shard in the same federation: the
  // hostile shard's faults must not leak into the calm shard's stats.
  auto shards =
      federate::BuiltinShards({"taobao", "bazaar"}, 0.002);
  ASSERT_TRUE(shards.ok());
  (*shards)[0].spec.default_weather = fault::FaultProfile::None();
  (*shards)[1].spec.default_weather = fault::FaultProfile::Hostile();
  (*shards)[1].crawler.max_retries = 12;

  federate::FederationReport report =
      federate::CrawlFederation(*shards, TestLanguage(), /*parallel=*/true);
  ASSERT_TRUE(report.all_ok());
  const collect::CrawlStats& calm = report.shards[0].stats;
  const collect::CrawlStats& stormy = report.shards[1].stats;
  EXPECT_EQ(calm.rate_limited + calm.server_errors + calm.malformed_bodies,
            0u);
  EXPECT_GT(stormy.rate_limited + stormy.server_errors +
                stormy.malformed_bodies + stormy.pagination_probes,
            0u);
  EXPECT_EQ(report.shards[0].store.items().size(),
            report.shards[0].truth_items);
  EXPECT_EQ(report.shards[1].store.items().size(),
            report.shards[1].truth_items);
}

}  // namespace
}  // namespace cats
