// Chaos battery for the streaming plane: run pipeline::StreamingCats
// against an API injecting hostile transport faults (429 storms, 5xx
// bursts, truncated bodies, stale pagination) AND hostile data faults
// (dropped fields, absurd prices, garbled text) at once, through
// deliberately tiny queues, and assert that (a) nothing deadlocks — a
// watchdog aborts loudly instead of hanging the suite, (b) the books
// balance exactly: every scanned item is quarantined, rule-filtered or
// classified, (c) the quarantine matches the API's ground-truth poison set
// id for id, and (d) the merged report equals the sequential Detect over
// the same collected store — hostility changes throughput, never results.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <set>
#include <utility>
#include <vector>

#include "collect/crawler.h"
#include "core/detector.h"
#include "fault/data_fault_plan.h"
#include "fault/fault_plan.h"
#include "pipeline/streaming_cats.h"
#include "platform_test_util.h"

namespace cats::pipeline {
namespace {

using collect::CollectedItem;
using core::DetectionReport;
using core::Detector;

const Detector& TrainedDetector() {
  static const Detector* detector = [] {
    auto* d = new Detector(&cats::TestSemanticModel());
    const auto& store = cats::TestStore();
    CATS_CHECK(d->Train(store.items(),
                        cats::StoreLabels(cats::TestMarketplace(), store))
                   .ok());
    return d;
  }();
  return *detector;
}

/// Runs `fn` under a deadlock watchdog: if the pipeline wedges (a queue
/// handshake bug would hang forever), abort the process with a diagnostic
/// instead of eating the whole ctest timeout.
template <typename Fn>
auto RunWithWatchdog(Fn&& fn) {
  auto future = std::async(std::launch::async, std::forward<Fn>(fn));
  if (future.wait_for(std::chrono::seconds(120)) !=
      std::future_status::ready) {
    std::fprintf(stderr,
                 "chaos_stream_test: pipeline deadlocked (no result within "
                 "120s watchdog)\n");
    std::fflush(stderr);
    std::abort();
  }
  return future.get();
}

void ExpectAccountingExact(const DetectionReport& report, size_t num_items) {
  EXPECT_EQ(report.items_scanned, num_items);
  EXPECT_EQ(report.items_scanned,
            report.items_quarantined + report.items_filtered_low_sales +
                report.items_filtered_no_signal +
                report.items_filtered_no_comments + report.items_classified);
  EXPECT_EQ(report.items_quarantined, report.quarantine.size());
  EXPECT_LE(report.items_degraded, report.items_classified);
}

std::set<uint64_t> QuarantinedIds(const DetectionReport& report) {
  std::set<uint64_t> ids;
  for (const core::QuarantineEntry& e : report.quarantine.entries) {
    ids.insert(e.item_id);
  }
  return ids;
}

/// Sorted-by-id sequential ground truth over the same store.
DetectionReport SequentialReport(const std::vector<CollectedItem>& items) {
  auto report = TrainedDetector().Detect(items);
  CATS_CHECK(report.ok());
  auto by_id = [](const core::Detection& a, const core::Detection& b) {
    return a.item_id < b.item_id;
  };
  std::sort(report->detections.begin(), report->detections.end(), by_id);
  std::sort(report->degraded_detections.begin(),
            report->degraded_detections.end(), by_id);
  std::sort(report->quarantine.entries.begin(),
            report->quarantine.entries.end(),
            [](const core::QuarantineEntry& a, const core::QuarantineEntry& b) {
              return a.item_id < b.item_id;
            });
  return std::move(report).value();
}

void ExpectSameResults(const DetectionReport& streaming,
                       const DetectionReport& sequential) {
  EXPECT_EQ(streaming.items_classified, sequential.items_classified);
  EXPECT_EQ(streaming.items_degraded, sequential.items_degraded);
  ASSERT_EQ(streaming.detections.size(), sequential.detections.size());
  for (size_t i = 0; i < sequential.detections.size(); ++i) {
    EXPECT_EQ(streaming.detections[i].item_id,
              sequential.detections[i].item_id);
    EXPECT_EQ(streaming.detections[i].score, sequential.detections[i].score);
  }
  EXPECT_EQ(QuarantinedIds(streaming), QuarantinedIds(sequential));
}

TEST(ChaosStreamTest, SurvivesHostileTransportAndDataFaults) {
  const platform::Marketplace& market = cats::TestMarketplace();
  collect::FakeClock clock;
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::Hostile();
  api_options.data_faults = fault::DataFaultProfile::Hostile();
  api_options.seed = 31337;
  api_options.clock = &clock;
  platform::MarketplaceApi api(&market, api_options);

  collect::CrawlerOptions options;
  options.requests_per_second = 0.0;
  options.max_retries = 12;
  options.backoff_cap_micros = 500'000;
  collect::Crawler crawler(&api, options, &clock);
  collect::DataStore store;
  collect::CrawlCheckpoint checkpoint;

  StreamingCats streaming(&TrainedDetector());
  auto result = RunWithWatchdog([&] {
    return streaming.Run(&crawler, &store, &checkpoint);
  });
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->crawl_status.ok())
      << result->crawl_status.ToString();
  EXPECT_TRUE(checkpoint.complete);
  ASSERT_EQ(store.items().size(), market.items().size());
  EXPECT_EQ(result->items_streamed, store.items().size());

  // Exact accounting over the dirty store; hostility visibly exercised
  // both triage paths.
  ExpectAccountingExact(result->report, store.items().size());
  EXPECT_GT(result->report.items_quarantined, 0u);
  EXPECT_GT(result->report.items_degraded, 0u);

  // Quarantine must match the API's ground-truth poison set exactly.
  std::set<uint64_t> expected_poison(api.data_poisoned_items().begin(),
                                     api.data_poisoned_items().end());
  EXPECT_EQ(QuarantinedIds(result->report), expected_poison);

  // And the whole report must equal the sequential run over the same data.
  ExpectSameResults(result->report, SequentialReport(store.items()));
}

TEST(ChaosStreamTest, TinyQueuesUnderHostilityDrainCleanly) {
  // Capacity-1 queues maximize backpressure and handshake traffic — the
  // configuration most likely to expose a lost-wakeup or shutdown-order
  // bug. Results must still be exact, and both queues must end drained.
  const platform::Marketplace& market = cats::TestMarketplace();
  collect::FakeClock clock;
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::Hostile();
  api_options.data_faults = fault::DataFaultProfile::Hostile();
  api_options.seed = 4242;
  api_options.clock = &clock;
  platform::MarketplaceApi api(&market, api_options);

  collect::CrawlerOptions options;
  options.requests_per_second = 0.0;
  options.max_retries = 12;
  options.backoff_cap_micros = 500'000;
  collect::Crawler crawler(&api, options, &clock);
  collect::DataStore store;
  collect::CrawlCheckpoint checkpoint;

  StreamingCats streaming(&TrainedDetector(),
                          StreamingOptions{.ingest_capacity = 1,
                                           .staged_capacity = 1,
                                           .max_batch_items = 1,
                                           .num_stage_workers = 3});
  auto result = RunWithWatchdog([&] {
    return streaming.Run(&crawler, &store, &checkpoint);
  });
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->crawl_status.ok());
  EXPECT_EQ(result->items_streamed, store.items().size());
  ExpectAccountingExact(result->report, store.items().size());
  ExpectSameResults(result->report, SequentialReport(store.items()));
}

TEST(ChaosStreamTest, SameSeedSameChaosSameReport) {
  // Streaming under chaos stays reproducible: same fault seed, same
  // results, run to run — worker interleaving must not leak into output.
  auto run = [](uint64_t seed) {
    const platform::Marketplace& market = cats::TestMarketplace();
    collect::FakeClock clock;
    platform::ApiOptions api_options;
    api_options.faults = fault::FaultProfile::Hostile();
    api_options.data_faults = fault::DataFaultProfile::Hostile();
    api_options.seed = seed;
    api_options.clock = &clock;
    platform::MarketplaceApi api(&market, api_options);
    collect::CrawlerOptions options;
    options.requests_per_second = 0.0;
    options.max_retries = 12;
    options.backoff_cap_micros = 500'000;
    collect::Crawler crawler(&api, options, &clock);
    collect::DataStore store;
    collect::CrawlCheckpoint checkpoint;
    StreamingCats streaming(&TrainedDetector());
    auto result = RunWithWatchdog([&] {
      return streaming.Run(&crawler, &store, &checkpoint);
    });
    CATS_CHECK(result.ok());
    return std::move(result).value();
  };
  StreamingReport a = run(777);
  StreamingReport b = run(777);
  ASSERT_EQ(a.report.detections.size(), b.report.detections.size());
  for (size_t i = 0; i < a.report.detections.size(); ++i) {
    EXPECT_EQ(a.report.detections[i].item_id, b.report.detections[i].item_id);
    EXPECT_EQ(a.report.detections[i].score, b.report.detections[i].score);
  }
  EXPECT_EQ(QuarantinedIds(a.report), QuarantinedIds(b.report));
  StreamingReport c = run(778);
  EXPECT_NE(QuarantinedIds(a.report), QuarantinedIds(c.report));
}

}  // namespace
}  // namespace cats::pipeline
