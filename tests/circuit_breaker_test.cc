#include "collect/circuit_breaker.h"

#include <gtest/gtest.h>

#include "collect/rate_limiter.h"

namespace cats::collect {
namespace {

TEST(CircuitBreakerTest, StartsClosed) {
  FakeClock clock;
  CircuitBreaker breaker(3, 1'000'000, &clock);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, OpensAtThreshold) {
  FakeClock clock;
  CircuitBreaker breaker(3, 1'000'000, &clock);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_EQ(breaker.open_until_micros(), clock.NowMicros() + 1'000'000);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  FakeClock clock;
  CircuitBreaker breaker(3, 1'000'000, &clock);
  for (int round = 0; round < 10; ++round) {
    breaker.RecordFailure();
    breaker.RecordFailure();
    breaker.RecordSuccess();  // never 3 in a row
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreakerTest, HalfOpensAfterPause) {
  FakeClock clock;
  CircuitBreaker breaker(1, 500'000, &clock);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.AdvanceMicros(499'999);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.AdvanceMicros(1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, HalfOpenProbeSuccessCloses) {
  FakeClock clock;
  CircuitBreaker breaker(1, 500'000, &clock);
  breaker.RecordFailure();
  clock.AdvanceMicros(500'000);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  FakeClock clock;
  CircuitBreaker breaker(2, 500'000, &clock);
  breaker.RecordFailure();
  breaker.RecordFailure();
  clock.AdvanceMicros(500'000);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordFailure();  // a single probe failure suffices to reopen
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_EQ(breaker.open_until_micros(), clock.NowMicros() + 500'000);
}

TEST(CircuitBreakerTest, ZeroThresholdDisables) {
  FakeClock clock;
  CircuitBreaker breaker(0, 500'000, &clock);
  for (int i = 0; i < 100; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.opens(), 0u);
}

}  // namespace
}  // namespace cats::collect
