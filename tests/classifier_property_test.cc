// Property sweeps over every classifier: invariants that must hold for any
// model implementing ml::Classifier, across class separations and dataset
// shapes (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/svm.h"
#include "ml_test_util.h"

namespace cats::ml {
namespace {

struct ClassifierCase {
  const char* name;
  std::function<std::unique_ptr<Classifier>()> make;
};

class ClassifierPropertyTest
    : public ::testing::TestWithParam<ClassifierCase> {};

TEST_P(ClassifierPropertyTest, ProbaAlwaysInUnitInterval) {
  auto model = GetParam().make();
  Dataset data = MakeGaussianDataset(150, 5, 1.0, 1234);
  ASSERT_TRUE(model->Fit(data).ok());
  // Probe far outside the training distribution too.
  std::vector<float> extreme(5);
  Rng rng(7);
  for (int probe = 0; probe < 200; ++probe) {
    for (float& v : extreme) {
      v = static_cast<float>(rng.UniformDouble(-1e4, 1e4));
    }
    double p = model->PredictProba(extreme.data());
    EXPECT_GE(p, 0.0) << GetParam().name;
    EXPECT_LE(p, 1.0) << GetParam().name;
    EXPECT_FALSE(std::isnan(p)) << GetParam().name;
  }
}

TEST_P(ClassifierPropertyTest, AccuracyMonotoneInSeparation) {
  auto weak = GetParam().make();
  auto strong = GetParam().make();
  Dataset hard = MakeGaussianDataset(400, 4, 0.3, 777);
  Dataset easy = MakeGaussianDataset(400, 4, 5.0, 777);
  ASSERT_TRUE(weak->Fit(hard).ok());
  ASSERT_TRUE(strong->Fit(easy).ok());
  EXPECT_GT(TrainAccuracy(*strong, easy), TrainAccuracy(*weak, hard))
      << GetParam().name;
  EXPECT_GT(TrainAccuracy(*strong, easy), 0.9) << GetParam().name;
}

TEST_P(ClassifierPropertyTest, RefitReplacesOldModel) {
  auto model = GetParam().make();
  Dataset first = MakeGaussianDataset(200, 3, 5.0, 111);
  ASSERT_TRUE(model->Fit(first).ok());
  // Refit with flipped labels: predictions must flip too.
  Dataset flipped({"f0", "f1", "f2"});
  for (size_t i = 0; i < first.num_rows(); ++i) {
    std::vector<float> row(first.Row(i), first.Row(i) + 3);
    ASSERT_TRUE(flipped.AddRow(row, 1 - first.Label(i)).ok());
  }
  ASSERT_TRUE(model->Fit(flipped).ok());
  EXPECT_GT(TrainAccuracy(*model, flipped), 0.9) << GetParam().name;
}

TEST_P(ClassifierPropertyTest, PredictConsistentWithProba) {
  auto model = GetParam().make();
  Dataset data = MakeGaussianDataset(150, 3, 2.0, 222);
  ASSERT_TRUE(model->Fit(data).ok());
  // For every model except the margin-thresholded SVM, Predict is the 0.5
  // cut of PredictProba. (LinearSvm documents its own decision rule.)
  if (std::string(GetParam().name) == "svm") return;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(model->Predict(data.Row(i)),
              model->PredictProba(data.Row(i)) >= 0.5 ? 1 : 0)
        << GetParam().name;
  }
}

TEST_P(ClassifierPropertyTest, CloneUntrainedIsIndependent) {
  auto model = GetParam().make();
  Dataset data = MakeGaussianDataset(150, 3, 4.0, 333);
  ASSERT_TRUE(model->Fit(data).ok());
  auto clone = model->CloneUntrained();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->name(), model->name());
  // Training the clone must not disturb the original's predictions.
  std::vector<double> before;
  for (size_t i = 0; i < 20; ++i) {
    before.push_back(model->PredictProba(data.Row(i)));
  }
  Dataset other = MakeGaussianDataset(100, 3, 1.0, 444);
  ASSERT_TRUE(clone->Fit(other).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(model->PredictProba(data.Row(i)), before[i])
        << GetParam().name;
  }
}

TEST_P(ClassifierPropertyTest, HandlesConstantFeatures) {
  auto model = GetParam().make();
  Dataset data({"c0", "x", "c1"});
  Rng rng(555);
  for (int i = 0; i < 200; ++i) {
    int label = i % 2;
    ASSERT_TRUE(data.AddRow({1.0f,
                             static_cast<float>(rng.Normal(label * 3.0, 1.0)),
                             -7.5f},
                            label)
                    .ok());
  }
  ASSERT_TRUE(model->Fit(data).ok());
  EXPECT_GT(TrainAccuracy(*model, data), 0.85) << GetParam().name;
}

TEST_P(ClassifierPropertyTest, SurvivesSevereClassImbalance) {
  auto model = GetParam().make();
  Dataset data({"x", "y"});
  Rng rng(666);
  for (int i = 0; i < 970; ++i) {
    ASSERT_TRUE(data.AddRow({static_cast<float>(rng.Normal(0.0, 1.0)),
                             static_cast<float>(rng.Normal(0.0, 1.0))},
                            0)
                    .ok());
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(data.AddRow({static_cast<float>(rng.Normal(6.0, 1.0)),
                             static_cast<float>(rng.Normal(6.0, 1.0))},
                            1)
                    .ok());
  }
  ASSERT_TRUE(model->Fit(data).ok());
  // Well-separated minority: overall accuracy must beat the majority-vote
  // baseline (0.97).
  EXPECT_GT(TrainAccuracy(*model, data), 0.97) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllClassifiers, ClassifierPropertyTest,
    ::testing::Values(
        ClassifierCase{"gbdt",
                       [] {
                         GbdtOptions o;
                         o.num_rounds = 30;
                         return std::unique_ptr<Classifier>(
                             std::make_unique<Gbdt>(o));
                       }},
        ClassifierCase{"decision_tree",
                       [] {
                         return std::unique_ptr<Classifier>(
                             std::make_unique<DecisionTree>());
                       }},
        ClassifierCase{"adaboost",
                       [] {
                         AdaBoostOptions o;
                         o.num_rounds = 40;
                         return std::unique_ptr<Classifier>(
                             std::make_unique<AdaBoost>(o));
                       }},
        ClassifierCase{"svm",
                       [] {
                         return std::unique_ptr<Classifier>(
                             std::make_unique<LinearSvm>());
                       }},
        ClassifierCase{"mlp",
                       [] {
                         MlpOptions o;
                         o.epochs = 25;
                         return std::unique_ptr<Classifier>(
                             std::make_unique<Mlp>(o));
                       }},
        ClassifierCase{"naive_bayes",
                       [] {
                         return std::unique_ptr<Classifier>(
                             std::make_unique<GaussianNaiveBayes>());
                       }}),
    [](const ::testing::TestParamInfo<ClassifierCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace cats::ml
