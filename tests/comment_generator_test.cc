#include "platform/comment_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "platform_test_util.h"
#include "text/segmenter.h"
#include "text/text_stats.h"
#include "util/stats.h"

namespace cats::platform {
namespace {

class CommentGeneratorTest : public ::testing::Test {
 protected:
  CommentGeneratorTest()
      : generator_(&TestLanguage()),
        dict_(TestLanguage().BuildSegmentationDictionary()),
        segmenter_(&dict_),
        rng_(99) {}

  double PositiveFraction(const std::string& comment) {
    auto tokens = segmenter_.Segment(comment);
    if (tokens.empty()) return 0.0;
    size_t pos = 0;
    for (const auto& t : tokens) {
      if (TestLanguage().PolarityOf(t) == Polarity::kPositive) ++pos;
    }
    return static_cast<double>(pos) / tokens.size();
  }

  CommentGenerator generator_;
  text::SegmentationDictionary dict_;
  text::Segmenter segmenter_;
  Rng rng_;
};

TEST_F(CommentGeneratorTest, BenignCommentsNonEmpty) {
  for (int i = 0; i < 100; ++i) {
    std::string c = generator_.GenerateBenign(0.5, &rng_);
    EXPECT_FALSE(c.empty());
    EXPECT_FALSE(segmenter_.Segment(c).empty());
  }
}

TEST_F(CommentGeneratorTest, QualityDrivesBenignPolarity) {
  RunningStats low, high;
  for (int i = 0; i < 400; ++i) {
    low.Add(PositiveFraction(generator_.GenerateBenign(0.1, &rng_)));
    high.Add(PositiveFraction(generator_.GenerateBenign(0.95, &rng_)));
  }
  EXPECT_GT(high.mean(), low.mean() + 0.05);
}

TEST_F(CommentGeneratorTest, SpamLongerThanBenign) {
  RunningStats benign_len, spam_len;
  for (int i = 0; i < 300; ++i) {
    benign_len.Add(static_cast<double>(
        segmenter_.Segment(generator_.GenerateBenign(0.6, &rng_)).size()));
    auto tmpl = generator_.GenerateSpamTemplate(&rng_);
    spam_len.Add(static_cast<double>(
        segmenter_.Segment(generator_.GenerateSpamFromTemplate(tmpl, &rng_))
            .size()));
  }
  EXPECT_GT(spam_len.mean(), benign_len.mean() * 2.0);
}

TEST_F(CommentGeneratorTest, SpamMorePositiveThanBenign) {
  RunningStats benign_pos, spam_pos;
  for (int i = 0; i < 300; ++i) {
    benign_pos.Add(PositiveFraction(generator_.GenerateBenign(0.6, &rng_)));
    auto tmpl = generator_.GenerateSpamTemplate(&rng_);
    spam_pos.Add(
        PositiveFraction(generator_.GenerateSpamFromTemplate(tmpl, &rng_)));
  }
  EXPECT_GT(spam_pos.mean(), benign_pos.mean() + 0.1);
}

TEST_F(CommentGeneratorTest, SpamHasLowerUniqueRatio) {
  RunningStats benign_ratio, spam_ratio;
  for (int i = 0; i < 300; ++i) {
    auto bt = segmenter_.Segment(generator_.GenerateBenign(0.6, &rng_));
    if (bt.size() >= 10) benign_ratio.Add(text::UniqueTokenRatio(bt));
    auto tmpl = generator_.GenerateSpamTemplate(&rng_);
    auto st = segmenter_.Segment(
        generator_.GenerateSpamFromTemplate(tmpl, &rng_));
    if (st.size() >= 10) spam_ratio.Add(text::UniqueTokenRatio(st));
  }
  EXPECT_LT(spam_ratio.mean(), benign_ratio.mean());
}

TEST_F(CommentGeneratorTest, SpamHasMorePunctuation) {
  RunningStats benign_punct, spam_punct;
  for (int i = 0; i < 300; ++i) {
    benign_punct.Add(
        text::AnalyzeStructure(generator_.GenerateBenign(0.6, &rng_))
            .punctuation_count);
    auto tmpl = generator_.GenerateSpamTemplate(&rng_);
    spam_punct.Add(
        text::AnalyzeStructure(generator_.GenerateSpamFromTemplate(tmpl, &rng_))
            .punctuation_count);
  }
  EXPECT_GT(spam_punct.mean(), benign_punct.mean() * 1.5);
}

TEST_F(CommentGeneratorTest, StealthSpamShorterAndLessPositiveThanBlatant) {
  RunningStats blatant_len, stealth_len, blatant_pos, stealth_pos;
  for (int i = 0; i < 300; ++i) {
    auto bt = generator_.GenerateSpamTemplate(&rng_, false);
    auto st = generator_.GenerateSpamTemplate(&rng_, true);
    std::string blatant = generator_.GenerateSpamFromTemplate(bt, &rng_, false);
    std::string stealth = generator_.GenerateSpamFromTemplate(st, &rng_, true);
    blatant_len.Add(
        static_cast<double>(segmenter_.Segment(blatant).size()));
    stealth_len.Add(static_cast<double>(segmenter_.Segment(stealth).size()));
    blatant_pos.Add(PositiveFraction(blatant));
    stealth_pos.Add(PositiveFraction(stealth));
  }
  EXPECT_LT(stealth_len.mean(), blatant_len.mean());
  EXPECT_LT(stealth_pos.mean(), blatant_pos.mean());
}

TEST_F(CommentGeneratorTest, TemplateReuseSharesVocabulary) {
  // Comments from the same template overlap much more than comments from
  // different templates.
  auto tmpl_a = generator_.GenerateSpamTemplate(&rng_);
  auto tmpl_b = generator_.GenerateSpamTemplate(&rng_);
  auto overlap = [&](const std::string& x, const std::string& y) {
    auto tx = segmenter_.Segment(x);
    auto ty = segmenter_.Segment(y);
    std::set<std::string> sx(tx.begin(), tx.end());
    size_t shared = 0;
    std::set<std::string> sy(ty.begin(), ty.end());
    for (const auto& t : sx) shared += sy.count(t);
    return static_cast<double>(shared) /
           std::max<size_t>(1, std::min(sx.size(), sy.size()));
  };
  RunningStats same, cross;
  for (int i = 0; i < 50; ++i) {
    std::string a1 = generator_.GenerateSpamFromTemplate(tmpl_a, &rng_);
    std::string a2 = generator_.GenerateSpamFromTemplate(tmpl_a, &rng_);
    std::string b1 = generator_.GenerateSpamFromTemplate(tmpl_b, &rng_);
    same.Add(overlap(a1, a2));
    cross.Add(overlap(a1, b1));
  }
  EXPECT_GT(same.mean(), cross.mean() + 0.2);
}

TEST_F(CommentGeneratorTest, SentimentDocsCarryLabelPolarity) {
  RunningStats pos_frac, neg_frac;
  for (int i = 0; i < 200; ++i) {
    pos_frac.Add(PositiveFraction(
        generator_.GenerateSentimentTrainingDoc(true, &rng_)));
    neg_frac.Add(PositiveFraction(
        generator_.GenerateSentimentTrainingDoc(false, &rng_)));
  }
  EXPECT_GT(pos_frac.mean(), 0.3);
  EXPECT_LT(neg_frac.mean(), 0.1);
}

TEST_F(CommentGeneratorTest, HomographsAppearOnlyInSpam) {
  size_t benign_homographs = 0, spam_homographs = 0;
  for (int i = 0; i < 300; ++i) {
    for (const auto& t :
         segmenter_.Segment(generator_.GenerateBenign(0.7, &rng_))) {
      for (const LanguageWord& w : TestLanguage().words()) {
        if (w.spam_homograph && w.text == t) ++benign_homographs;
      }
    }
    auto tmpl = generator_.GenerateSpamTemplate(&rng_);
    for (const auto& t : segmenter_.Segment(
             generator_.GenerateSpamFromTemplate(tmpl, &rng_))) {
      for (const LanguageWord& w : TestLanguage().words()) {
        if (w.spam_homograph && w.text == t) ++spam_homographs;
      }
    }
  }
  EXPECT_EQ(benign_homographs, 0u);
  EXPECT_GT(spam_homographs, 0u);
}

}  // namespace
}  // namespace cats::platform
