#include "collect/crawler.h"

#include <gtest/gtest.h>

#include "collect/backoff.h"
#include "fault/fault_plan.h"
#include "platform_test_util.h"

namespace cats::collect {
namespace {

TEST(CrawlerTest, CollectsWholePlatform) {
  const platform::Marketplace& m = TestMarketplace();
  DataStore store = CrawlAll(m);
  EXPECT_EQ(store.shops().size(), m.shops().size());
  EXPECT_EQ(store.items().size(), m.items().size());
  EXPECT_EQ(store.num_comments(), m.comments().size());
}

TEST(CrawlerTest, CollectedContentMatchesSource) {
  const platform::Marketplace& m = TestMarketplace();
  const DataStore& store = TestStore();
  // Spot-check item fields and comments against ground truth.
  for (size_t i = 0; i < m.items().size(); i += 37) {
    const platform::Item& truth = m.items()[i];
    const CollectedItem* collected = store.FindItem(truth.id);
    ASSERT_NE(collected, nullptr);
    EXPECT_EQ(collected->item.item_name, truth.name);
    EXPECT_EQ(collected->item.sales_volume, truth.sales_volume);
    EXPECT_EQ(collected->comments.size(),
              m.CommentIndicesOfItem(truth.id).size());
  }
}

TEST(CrawlerTest, SurvivesTransientFailures) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.server_error_prob = 0.10;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  Crawler crawler(&api, CrawlerOptions{}, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_EQ(store.items().size(), m.items().size());
  EXPECT_GT(crawler.stats().retries, 0u);
  EXPECT_EQ(crawler.stats().server_errors, crawler.stats().retries);
}

TEST(CrawlerTest, DeduplicatesInjectedRecords) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.duplicate_record_prob = 0.05;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  Crawler crawler(&api, CrawlerOptions{}, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  // Duplicates must be injected and dropped; totals unchanged.
  EXPECT_GT(store.duplicates_dropped(), 0u);
  EXPECT_EQ(store.items().size(), m.items().size());
  EXPECT_EQ(store.num_comments(), m.comments().size());
}

TEST(CrawlerTest, RateLimiterThrottlesVirtualTime) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.requests_per_second = 100.0;
  options.burst = 5.0;
  Crawler crawler(&api, options, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_GT(crawler.stats().throttled_micros, 0);
  // Virtual elapsed time must be at least requests/rate.
  double min_seconds =
      static_cast<double>(crawler.stats().requests - 5) / 100.0;
  EXPECT_GE(static_cast<double>(clock.NowMicros()) / 1e6, min_seconds * 0.9);
}

TEST(CrawlerTest, MaxItemsStopsEarly) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.max_items = 20;
  Crawler crawler(&api, options, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_LT(store.items().size(), m.items().size());
  EXPECT_GE(store.items().size(), 20u);
}

TEST(CrawlerTest, PersistentFailureGivesUpAfterRetries) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.server_error_prob = 1.0;  // always down
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.max_retries = 3;
  options.breaker_failure_threshold = 0;  // isolate the retry logic
  Crawler crawler(&api, options, &clock);
  DataStore store;
  Status st = crawler.Crawl(&store);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(crawler.stats().retries, 3u);
}

TEST(CrawlerTest, StatsCountsMatchStore) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  Crawler crawler(&api, CrawlerOptions{}, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_EQ(crawler.stats().shops, store.shops().size());
  EXPECT_EQ(crawler.stats().items, store.items().size());
  EXPECT_EQ(crawler.stats().comments, store.num_comments());
  EXPECT_EQ(crawler.stats().requests, api.request_count());
}

// The crawl's retry waits must be exactly the Backoff sequence: a replica
// Backoff constructed with the same (base, cap, seed) predicts, delay for
// delay, how far the crawler advances the FakeClock.
TEST(CrawlerTest, BackoffSequenceIsExact) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.server_error_prob = 1.0;  // every request 503s
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.requests_per_second = 0.0;  // unlimited: no limiter time
  options.max_retries = 4;
  options.breaker_failure_threshold = 0;  // no breaker pauses
  Crawler crawler(&api, options, &clock);
  DataStore store;
  ASSERT_FALSE(crawler.Crawl(&store).ok());

  Backoff replica(options.backoff_base_micros, options.backoff_cap_micros,
                  options.backoff_seed);
  int64_t expected = 0;
  int64_t first = replica.NextDelayMicros();
  EXPECT_EQ(first, options.backoff_base_micros);  // cold start = base exactly
  expected += first;
  for (size_t i = 1; i < options.max_retries; ++i) {
    int64_t d = replica.NextDelayMicros();
    EXPECT_GE(d, options.backoff_base_micros);
    EXPECT_LE(d, options.backoff_cap_micros);
    expected += d;
  }
  EXPECT_EQ(crawler.stats().retries, options.max_retries);
  EXPECT_EQ(crawler.stats().backoff_micros, expected);
  EXPECT_EQ(clock.NowMicros(), expected);  // nothing else advanced the clock
}

// A 429's Retry-After hint must override the computed backoff: with a fixed
// retry_after window the crawler's waits are exactly that hint, not the
// jittered exponential sequence.
TEST(CrawlerTest, RetryAfterOverridesBackoff) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.rate_limit_prob = 1.0;  // every request 429s
  api_options.faults.retry_after_min_micros = 77'000;
  api_options.faults.retry_after_max_micros = 77'000;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.requests_per_second = 0.0;
  options.max_retries = 3;
  options.breaker_failure_threshold = 0;
  Crawler crawler(&api, options, &clock);
  DataStore store;
  ASSERT_FALSE(crawler.Crawl(&store).ok());
  EXPECT_EQ(crawler.stats().rate_limited, 4u);  // 1 attempt + 3 retries
  EXPECT_EQ(crawler.stats().retries, 3u);
  EXPECT_EQ(crawler.stats().backoff_micros, 3 * 77'000);
  EXPECT_EQ(clock.NowMicros(), 3 * 77'000);
}

// 429 storms halve the adaptive request rate down to the configured floor.
TEST(CrawlerTest, AdaptiveThrottleBacksOffAfter429s) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.rate_limit_prob = 1.0;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.requests_per_second = 200.0;
  options.min_requests_per_second = 25.0;
  options.max_retries = 10;
  options.breaker_failure_threshold = 0;
  Crawler crawler(&api, options, &clock);
  DataStore store;
  ASSERT_FALSE(crawler.Crawl(&store).ok());
  EXPECT_EQ(crawler.current_requests_per_second(), 25.0);
}

// Enough consecutive failures open the circuit breaker; the crawl sleeps
// out the pause (counted in breaker_paused_micros) instead of hammering.
TEST(CrawlerTest, BreakerOpensOnConsecutiveFailures) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.server_error_prob = 1.0;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.requests_per_second = 0.0;
  options.max_retries = 6;
  options.breaker_failure_threshold = 3;
  options.breaker_pause_micros = 1'000'000;
  Crawler crawler(&api, options, &clock);
  DataStore store;
  ASSERT_FALSE(crawler.Crawl(&store).ok());
  EXPECT_GT(crawler.stats().breaker_opens, 0u);
  EXPECT_GT(crawler.stats().breaker_paused_micros, 0);
  // The aborting attempt was a failed half-open probe, which reopens.
  EXPECT_EQ(crawler.breaker().state(), CircuitBreaker::State::kOpen);
}

// Corrupted bodies are detected and re-fetched, never accepted: the store
// still matches the platform exactly.
TEST(CrawlerTest, MalformedBodiesRefetched) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.truncate_body_prob = 0.05;
  api_options.faults.garble_body_prob = 0.05;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  Crawler crawler(&api, CrawlerOptions{}, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_GT(crawler.stats().malformed_bodies, 0u);
  EXPECT_EQ(crawler.stats().malformed_bodies, api.corrupted_bodies());
  EXPECT_EQ(store.shops().size(), m.shops().size());
  EXPECT_EQ(store.items().size(), m.items().size());
  EXPECT_EQ(store.num_comments(), m.comments().size());
}

// Stale total_pages over-reports end cleanly as pagination probes.
TEST(CrawlerTest, StaleTotalPagesEndsWalksCleanly) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  api_options.faults.stale_total_pages_prob = 0.5;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  Crawler crawler(&api, CrawlerOptions{}, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_GT(crawler.stats().pagination_probes, 0u);
  EXPECT_EQ(store.shops().size(), m.shops().size());
  EXPECT_EQ(store.items().size(), m.items().size());
  EXPECT_EQ(store.num_comments(), m.comments().size());
}

}  // namespace
}  // namespace cats::collect
