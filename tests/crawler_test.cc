#include "collect/crawler.h"

#include <gtest/gtest.h>

#include "platform_test_util.h"

namespace cats::collect {
namespace {

TEST(CrawlerTest, CollectsWholePlatform) {
  const platform::Marketplace& m = TestMarketplace();
  DataStore store = CrawlAll(m);
  EXPECT_EQ(store.shops().size(), m.shops().size());
  EXPECT_EQ(store.items().size(), m.items().size());
  EXPECT_EQ(store.num_comments(), m.comments().size());
}

TEST(CrawlerTest, CollectedContentMatchesSource) {
  const platform::Marketplace& m = TestMarketplace();
  const DataStore& store = TestStore();
  // Spot-check item fields and comments against ground truth.
  for (size_t i = 0; i < m.items().size(); i += 37) {
    const platform::Item& truth = m.items()[i];
    const CollectedItem* collected = store.FindItem(truth.id);
    ASSERT_NE(collected, nullptr);
    EXPECT_EQ(collected->item.item_name, truth.name);
    EXPECT_EQ(collected->item.sales_volume, truth.sales_volume);
    EXPECT_EQ(collected->comments.size(),
              m.CommentIndicesOfItem(truth.id).size());
  }
}

TEST(CrawlerTest, SurvivesTransientFailures) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.transient_failure_prob = 0.10;
  api_options.duplicate_record_prob = 0.0;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  Crawler crawler(&api, CrawlerOptions{}, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_EQ(store.items().size(), m.items().size());
  EXPECT_GT(crawler.stats().retries, 0u);
}

TEST(CrawlerTest, DeduplicatesInjectedRecords) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.transient_failure_prob = 0.0;
  api_options.duplicate_record_prob = 0.05;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  Crawler crawler(&api, CrawlerOptions{}, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  // Duplicates must be injected and dropped; totals unchanged.
  EXPECT_GT(store.duplicates_dropped(), 0u);
  EXPECT_EQ(store.items().size(), m.items().size());
  EXPECT_EQ(store.num_comments(), m.comments().size());
}

TEST(CrawlerTest, RateLimiterThrottlesVirtualTime) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.transient_failure_prob = 0.0;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.requests_per_second = 100.0;
  options.burst = 5.0;
  Crawler crawler(&api, options, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_GT(crawler.stats().throttled_micros, 0);
  // Virtual elapsed time must be at least requests/rate.
  double min_seconds =
      static_cast<double>(crawler.stats().requests - 5) / 100.0;
  EXPECT_GE(static_cast<double>(clock.NowMicros()) / 1e6, min_seconds * 0.9);
}

TEST(CrawlerTest, MaxItemsStopsEarly) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.transient_failure_prob = 0.0;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.max_items = 20;
  Crawler crawler(&api, options, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_LT(store.items().size(), m.items().size());
  EXPECT_GE(store.items().size(), 20u);
}

TEST(CrawlerTest, PersistentFailureGivesUpAfterRetries) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.transient_failure_prob = 1.0;  // always down
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  CrawlerOptions options;
  options.max_retries = 3;
  Crawler crawler(&api, options, &clock);
  DataStore store;
  Status st = crawler.Crawl(&store);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(crawler.stats().retries, 3u);
}

TEST(CrawlerTest, StatsCountsMatchStore) {
  const platform::Marketplace& m = TestMarketplace();
  platform::ApiOptions api_options;
  api_options.transient_failure_prob = 0.0;
  api_options.duplicate_record_prob = 0.0;
  platform::MarketplaceApi api(&m, api_options);
  FakeClock clock;
  Crawler crawler(&api, CrawlerOptions{}, &clock);
  DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  EXPECT_EQ(crawler.stats().shops, store.shops().size());
  EXPECT_EQ(crawler.stats().items, store.items().size());
  EXPECT_EQ(crawler.stats().comments, store.num_comments());
  EXPECT_EQ(crawler.stats().requests, api.request_count());
}

}  // namespace
}  // namespace cats::collect
