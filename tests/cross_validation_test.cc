#include "ml/cross_validation.h"

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/naive_bayes.h"
#include "ml_test_util.h"

namespace cats::ml {
namespace {

TEST(CrossValidationTest, RejectsBadArguments) {
  Dataset data = MakeGaussianDataset(20, 2, 3.0, 227);
  DecisionTree tree;
  EXPECT_FALSE(CrossValidate(tree, data, 1, 0).ok());
  Dataset tiny = MakeGaussianDataset(1, 2, 3.0, 229);
  EXPECT_FALSE(CrossValidate(tree, tiny, 5, 0).ok());
}

TEST(CrossValidationTest, FiveFoldOnSeparableData) {
  Dataset data = MakeGaussianDataset(200, 3, 4.0, 233);
  GbdtOptions options;
  options.num_rounds = 30;
  Gbdt model(options);
  auto result = CrossValidate(model, data, 5, 17);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model_name, "Xgboost");
  EXPECT_EQ(result->folds, 5u);
  EXPECT_EQ(result->per_fold.size(), 5u);
  EXPECT_GT(result->precision, 0.95);
  EXPECT_GT(result->recall, 0.95);
  EXPECT_GT(result->f1, 0.95);
  EXPECT_GT(result->accuracy, 0.95);
  EXPECT_GT(result->auc, 0.95);
  EXPECT_LE(result->auc, 1.0);
}

TEST(CrossValidationTest, AveragesMatchPerFold) {
  Dataset data = MakeGaussianDataset(100, 2, 2.0, 239);
  GaussianNaiveBayes nb;
  auto result = CrossValidate(nb, data, 4, 19);
  ASSERT_TRUE(result.ok());
  double sum_precision = 0.0;
  for (const auto& fold : result->per_fold) sum_precision += fold.precision;
  EXPECT_NEAR(result->precision, sum_precision / 4.0, 1e-12);
}

TEST(CrossValidationTest, DeterministicForSeed) {
  Dataset data = MakeGaussianDataset(100, 2, 2.0, 241);
  DecisionTree tree;
  auto a = CrossValidate(tree, data, 5, 99);
  auto b = CrossValidate(tree, data, 5, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->precision, b->precision);
  EXPECT_DOUBLE_EQ(a->recall, b->recall);
}

TEST(CrossValidationTest, HarderDataLowerScores) {
  Dataset easy = MakeGaussianDataset(150, 2, 5.0, 251);
  Dataset hard = MakeGaussianDataset(150, 2, 0.5, 251);
  DecisionTree tree;
  auto easy_result = CrossValidate(tree, easy, 5, 7);
  auto hard_result = CrossValidate(tree, hard, 5, 7);
  ASSERT_TRUE(easy_result.ok());
  ASSERT_TRUE(hard_result.ok());
  EXPECT_GT(easy_result->f1, hard_result->f1);
}

}  // namespace
}  // namespace cats::ml
