#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace cats {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cats_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, WriteReadRoundTrip) {
  CsvWriter writer(Path("t.csv"));
  writer.SetHeader({"a", "b"});
  writer.AddRow({"1", "x"});
  writer.AddRow({"2", "y"});
  ASSERT_TRUE(writer.Flush().ok());

  auto rows = ReadCsv(Path("t.csv"));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"2", "y"}));
}

TEST_F(CsvTest, QuotingRoundTrip) {
  CsvWriter writer(Path("q.csv"));
  writer.AddRow({"has,comma", "has\"quote", "plain"});
  ASSERT_TRUE(writer.Flush().ok());
  auto rows = ReadCsv(Path("q.csv"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "has,comma");
  EXPECT_EQ((*rows)[0][1], "has\"quote");
  EXPECT_EQ((*rows)[0][2], "plain");
}

TEST_F(CsvTest, EmptyFieldsPreserved) {
  CsvWriter writer(Path("e.csv"));
  writer.AddRow({"", "mid", ""});
  ASSERT_TRUE(writer.Flush().ok());
  auto rows = ReadCsv(Path("e.csv"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"", "mid", ""}));
}

TEST_F(CsvTest, CrLfTolerated) {
  ASSERT_TRUE(WriteStringToFile(Path("crlf.csv"), "a,b\r\n1,2\r\n").ok());
  auto rows = ReadCsv(Path("crlf.csv"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2"}));
}

TEST_F(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadCsv(Path("nope.csv")).status().code(), StatusCode::kIoError);
  EXPECT_EQ(ReadFileToString(Path("nope.txt")).status().code(),
            StatusCode::kIoError);
}

TEST_F(CsvTest, FileStringRoundTrip) {
  std::string content = "binary\0ish\ncontent 好";
  ASSERT_TRUE(WriteStringToFile(Path("f.bin"), content).ok());
  auto read = ReadFileToString(Path("f.bin"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
}

TEST_F(CsvTest, WriteToBadPathFails) {
  CsvWriter writer("/nonexistent_dir_zzz/x.csv");
  EXPECT_EQ(writer.Flush().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace cats
