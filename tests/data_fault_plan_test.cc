#include "fault/data_fault_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "text/utf8.h"
#include "util/json.h"

namespace cats::fault {
namespace {

TEST(DataFaultPlanTest, NoneProfileNeverFaults) {
  DataFaultPlan plan(DataFaultProfile::None(), 1234);
  for (uint64_t id = 0; id < 5000; ++id) {
    EXPECT_EQ(plan.DecideItem(id), DataFaultKind::kNone);
    EXPECT_EQ(plan.DecideComment(id), DataFaultKind::kNone);
  }
}

TEST(DataFaultPlanTest, DecisionsArePureFunctionsOfId) {
  // The same (profile, seed, id) always answers identically — a record
  // re-served after a transport retry or duplicate is mutated the same way.
  DataFaultPlan plan(DataFaultProfile::Hostile(), 42);
  for (uint64_t id : {0ull, 1ull, 17ull, 999ull, 123456789ull}) {
    DataFaultKind first = plan.DecideItem(id);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(plan.DecideItem(id), first);
    DataFaultKind comment_first = plan.DecideComment(id);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(plan.DecideComment(id), comment_first);
    }
    EXPECT_EQ(plan.AbsurdPrice(id), plan.AbsurdPrice(id));
  }
  // An identically-configured plan answers identically.
  DataFaultPlan twin(DataFaultProfile::Hostile(), 42);
  for (uint64_t id = 0; id < 500; ++id) {
    EXPECT_EQ(twin.DecideItem(id), plan.DecideItem(id));
    EXPECT_EQ(twin.DecideComment(id), plan.DecideComment(id));
  }
}

TEST(DataFaultPlanTest, SeedsDecorrelateDecisions) {
  DataFaultPlan a(DataFaultProfile::Hostile(), 1);
  DataFaultPlan b(DataFaultProfile::Hostile(), 2);
  size_t differing = 0;
  for (uint64_t id = 0; id < 2000; ++id) {
    if (a.DecideItem(id) != b.DecideItem(id)) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(DataFaultPlanTest, RatesApproximatelyMatchProfile) {
  DataFaultProfile profile;
  profile.drop_comments_prob = 0.10;
  profile.absurd_price_prob = 0.05;
  DataFaultPlan plan(profile, 7);
  const uint64_t n = 20000;
  uint64_t drops = 0, absurd = 0;
  for (uint64_t id = 0; id < n; ++id) {
    switch (plan.DecideItem(id)) {
      case DataFaultKind::kDropComments:
        ++drops;
        break;
      case DataFaultKind::kAbsurdPrice:
        ++absurd;
        break;
      default:
        break;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(absurd) / n, 0.05, 0.01);
}

TEST(DataFaultPlanTest, MildProfileIsDegradedOnly) {
  // Mild injects missing fields but never poison content.
  DataFaultPlan plan(DataFaultProfile::Mild(), 11);
  for (uint64_t id = 0; id < 10000; ++id) {
    DataFaultKind item_kind = plan.DecideItem(id);
    EXPECT_TRUE(item_kind == DataFaultKind::kNone ||
                item_kind == DataFaultKind::kDropComments ||
                item_kind == DataFaultKind::kDropOrders);
    EXPECT_EQ(plan.DecideComment(id), DataFaultKind::kNone);
  }
}

TEST(DataFaultPlanTest, HostileProfileEmitsEveryKind) {
  DataFaultPlan plan(DataFaultProfile::Hostile(), 5);
  bool seen[kNumDataFaultKinds] = {};
  for (uint64_t id = 0; id < 5000; ++id) {
    seen[static_cast<size_t>(plan.DecideItem(id))] = true;
    seen[static_cast<size_t>(plan.DecideComment(id))] = true;
  }
  for (size_t k = 0; k < kNumDataFaultKinds; ++k) {
    EXPECT_TRUE(seen[k]) << DataFaultKindName(static_cast<DataFaultKind>(k));
  }
}

TEST(DataFaultPlanTest, AbsurdPriceIsAbsurd) {
  DataFaultPlan plan(DataFaultProfile::Hostile(), 9);
  bool saw_negative = false, saw_huge = false;
  for (uint64_t id = 0; id < 2000; ++id) {
    double price = plan.AbsurdPrice(id);
    EXPECT_TRUE(std::isfinite(price));
    // Either negative or far past any real listing; never a plausible value.
    EXPECT_TRUE(price < 0.0 || price >= 1e9) << price;
    saw_negative |= price < 0.0;
    saw_huge |= price >= 1e9;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_huge);
}

TEST(DataFaultPlanTest, CorruptTextIsInvalidUtf8AndJsonSafe) {
  DataFaultPlan plan(DataFaultProfile::Hostile(), 3);
  for (uint64_t id = 0; id < 200; ++id) {
    std::string corrupted = plan.CorruptText("好评很好商品质量", id);
    EXPECT_FALSE(text::IsValidUtf8(corrupted)) << "id=" << id;
    // The corruption must survive the JSON wire format: serialize as a
    // string value, parse it back, get the same bytes.
    std::string doc = JsonValue::String(corrupted).Serialize();
    auto parsed = JsonValue::Parse(doc);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->string_value(), corrupted);
  }
  // Even an empty body comes back invalid (the stray continuation byte).
  EXPECT_FALSE(text::IsValidUtf8(plan.CorruptText("", 1)));
}

TEST(DataFaultPlanTest, CorruptTextIsDeterministicPerId) {
  DataFaultPlan plan(DataFaultProfile::Hostile(), 3);
  EXPECT_EQ(plan.CorruptText("some comment body", 77),
            plan.CorruptText("some comment body", 77));
  // Different ids corrupt different positions (with long-enough text).
  std::string long_text(200, 'x');
  EXPECT_NE(plan.CorruptText(long_text, 1), plan.CorruptText(long_text, 2));
}

TEST(DataFaultPlanTest, OversizeTextExceedsConfiguredBytes) {
  DataFaultProfile profile = DataFaultProfile::Hostile();
  profile.oversize_text_bytes = 1000;
  DataFaultPlan plan(profile, 4);
  std::string inflated = plan.OversizeText("short", 5);
  EXPECT_GT(inflated.size(), 1000u);
  // The original body is preserved as a prefix (padding, not replacement).
  EXPECT_EQ(inflated.substr(0, 5), "short");
}

TEST(DataFaultPlanTest, FromNameRoundTrips) {
  auto none = DataFaultProfile::FromName("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->drop_comments_prob, 0.0);
  auto mild = DataFaultProfile::FromName("mild");
  ASSERT_TRUE(mild.ok());
  EXPECT_GT(mild->drop_comments_prob, 0.0);
  EXPECT_EQ(mild->absurd_price_prob, 0.0);
  auto hostile = DataFaultProfile::FromName("hostile");
  ASSERT_TRUE(hostile.ok());
  EXPECT_GT(hostile->absurd_price_prob, 0.0);
  EXPECT_GT(hostile->corrupt_text_prob, 0.0);
  auto bad = DataFaultProfile::FromName("cranky");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("cranky"), std::string::npos);
}

TEST(DataFaultPlanTest, KindNamesAreStable) {
  EXPECT_EQ(DataFaultKindName(DataFaultKind::kNone), "none");
  EXPECT_EQ(DataFaultKindName(DataFaultKind::kDropComments), "drop_comments");
  EXPECT_EQ(DataFaultKindName(DataFaultKind::kDuplicateCommentId),
            "duplicate_comment_id");
}

}  // namespace
}  // namespace cats::fault
