#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/csv.h"

namespace cats::ml {
namespace {

TEST(DatasetTest, AddRowValidation) {
  Dataset data({"a", "b"});
  EXPECT_TRUE(data.AddRow({1.0f, 2.0f}, 1).ok());
  EXPECT_FALSE(data.AddRow({1.0f}, 0).ok());            // wrong width
  EXPECT_FALSE(data.AddRow({1.0f, 2.0f}, 2).ok());      // bad label
  EXPECT_FALSE(data.AddRow({1.0f, 2.0f}, -1).ok());
  EXPECT_EQ(data.num_rows(), 1u);
  EXPECT_EQ(data.num_features(), 2u);
}

TEST(DatasetTest, AccessorsAndCounts) {
  Dataset data({"a", "b"});
  ASSERT_TRUE(data.AddRow({1.0f, 2.0f}, 1).ok());
  ASSERT_TRUE(data.AddRow({3.0f, 4.0f}, 0).ok());
  ASSERT_TRUE(data.AddRow({5.0f, 6.0f}, 1).ok());
  EXPECT_EQ(data.Value(1, 0), 3.0f);
  EXPECT_EQ(data.Value(2, 1), 6.0f);
  EXPECT_EQ(data.Label(0), 1);
  EXPECT_EQ(data.CountLabel(1), 2u);
  EXPECT_EQ(data.CountLabel(0), 1u);
  EXPECT_EQ(data.Row(1)[1], 4.0f);
}

TEST(DatasetTest, SelectCopiesRows) {
  Dataset data({"x"});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(data.AddRow({static_cast<float>(i)}, i % 2).ok());
  }
  Dataset sub = data.Select({4, 0, 2});
  ASSERT_EQ(sub.num_rows(), 3u);
  EXPECT_EQ(sub.Value(0, 0), 4.0f);
  EXPECT_EQ(sub.Value(1, 0), 0.0f);
  EXPECT_EQ(sub.Value(2, 0), 2.0f);
  EXPECT_EQ(sub.Label(0), 0);
  EXPECT_EQ(sub.feature_names(), data.feature_names());
}

TEST(DatasetTest, Column) {
  Dataset data({"a", "b"});
  ASSERT_TRUE(data.AddRow({1.0f, 10.0f}, 0).ok());
  ASSERT_TRUE(data.AddRow({2.0f, 20.0f}, 1).ok());
  EXPECT_EQ(data.Column(1), (std::vector<double>{10.0, 20.0}));
}

TEST(DatasetTest, CsvRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "cats_dataset_test.csv")
          .string();
  Dataset data({"averagePositiveNumber", "averagePositive/NegativeNumber"});
  ASSERT_TRUE(data.AddRow({1.5f, -2.25f}, 1).ok());
  ASSERT_TRUE(data.AddRow({0.0f, 3.0f}, 0).ok());
  ASSERT_TRUE(data.SaveCsv(path).ok());

  auto loaded = Dataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->feature_names(), data.feature_names());
  EXPECT_FLOAT_EQ(loaded->Value(0, 1), -2.25f);
  EXPECT_EQ(loaded->Label(0), 1);
  EXPECT_EQ(loaded->Label(1), 0);
  std::filesystem::remove(path);
}

TEST(DatasetTest, LoadCsvRequiresLabelColumn) {
  std::string path =
      (std::filesystem::temp_directory_path() / "cats_bad_dataset.csv")
          .string();
  ASSERT_TRUE(WriteStringToFile(path, "a,b\n1,2\n").ok());
  EXPECT_FALSE(Dataset::LoadCsv(path).ok());
  std::filesystem::remove(path);
}

TEST(DatasetTest, EmptyDataset) {
  Dataset data({"x"});
  EXPECT_EQ(data.num_rows(), 0u);
  EXPECT_EQ(data.CountLabel(1), 0u);
  Dataset sub = data.Select({});
  EXPECT_EQ(sub.num_rows(), 0u);
}

}  // namespace
}  // namespace cats::ml
