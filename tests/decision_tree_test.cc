#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "ml_test_util.h"

namespace cats::ml {
namespace {

TEST(DecisionTreeTest, FitEmptyFails) {
  DecisionTree tree;
  Dataset empty({"x"});
  EXPECT_FALSE(tree.Fit(empty).ok());
}

TEST(DecisionTreeTest, SeparableDataHighAccuracy) {
  Dataset data = MakeGaussianDataset(300, 4, 5.0, 21);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(tree, data), 0.97);
  EXPECT_GT(tree.num_split_nodes(), 0u);
}

TEST(DecisionTreeTest, SolvesXor) {
  Dataset data = MakeXorDataset(600, 23);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(tree, data), 0.95);
  // XOR needs at least 2 levels.
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTreeTest, PureNodeBecomesLeafImmediately) {
  Dataset data({"x"});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(data.AddRow({static_cast<float>(i)}, 1).ok());
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  EXPECT_EQ(tree.num_split_nodes(), 0u);
  float row = 3.0f;
  EXPECT_DOUBLE_EQ(tree.PredictProba(&row), 1.0);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  Dataset data = MakeXorDataset(500, 29);
  DecisionTreeOptions options;
  options.max_depth = 1;
  DecisionTree stump(options);
  ASSERT_TRUE(stump.Fit(data).ok());
  EXPECT_LE(stump.depth(), 1u);
  // A stump cannot solve XOR.
  EXPECT_LT(TrainAccuracy(stump, data), 0.8);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Dataset data = MakeGaussianDataset(50, 2, 1.0, 31);
  DecisionTreeOptions options;
  options.min_samples_leaf = 40;  // only very large leaves allowed
  options.min_samples_split = 80;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(data).ok());
  // With 100 rows and min leaf 40, at most one split is possible.
  EXPECT_LE(tree.num_split_nodes(), 1u);
}

TEST(DecisionTreeTest, PredictProbaInUnitInterval) {
  Dataset data = MakeGaussianDataset(100, 3, 2.0, 37);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    double p = tree.PredictProba(data.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DecisionTreeTest, UntrainedPredictsHalf) {
  DecisionTree tree;
  float row[2] = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(tree.PredictProba(row), 0.5);
}

TEST(DecisionTreeTest, CloneUntrainedIsFresh) {
  Dataset data = MakeGaussianDataset(100, 2, 4.0, 41);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  auto clone = tree.CloneUntrained();
  EXPECT_EQ(clone->name(), "Decision Tree");
  float row[2] = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(clone->PredictProba(row), 0.5);  // untrained
  ASSERT_TRUE(clone->Fit(data).ok());
  EXPECT_GT(TrainAccuracy(*clone, data), 0.95);
}

TEST(DecisionTreeTest, DeterministicForSameData) {
  Dataset data = MakeGaussianDataset(200, 3, 2.0, 43);
  DecisionTree a, b;
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(a.PredictProba(data.Row(i)), b.PredictProba(data.Row(i)));
  }
}

}  // namespace
}  // namespace cats::ml
