#include "core/detector.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "ml/naive_bayes.h"
#include "platform_test_util.h"

namespace cats::core {
namespace {

class DetectorTest : public ::testing::Test {
 protected:
  static const Detector& TrainedDetector() {
    static const Detector* detector = [] {
      auto* d = new Detector(&cats::TestSemanticModel());
      const auto& store = cats::TestStore();
      std::vector<int> labels =
          cats::StoreLabels(cats::TestMarketplace(), store);
      CATS_CHECK(d->Train(store.items(), labels).ok());
      return d;
    }();
    return *detector;
  }
};

TEST_F(DetectorTest, DetectBeforeTrainFails) {
  Detector detector(&cats::TestSemanticModel());
  EXPECT_FALSE(detector.Detect(cats::TestStore().items()).ok());
  EXPECT_FALSE(detector.trained());
}

TEST_F(DetectorTest, DetectsMostFraudFewFalsePositives) {
  const auto& store = cats::TestStore();
  const auto& market = cats::TestMarketplace();
  auto report = TrainedDetector().Detect(store.items());
  ASSERT_TRUE(report.ok());
  size_t tp = 0, fp = 0;
  for (const Detection& d : report->detections) {
    if (market.IsFraudItem(d.item_id)) {
      ++tp;
    } else {
      ++fp;
    }
  }
  // Training-set detection: should recover most fraud items cleanly.
  EXPECT_GT(tp, market.NumFraudItems() * 7 / 10);
  EXPECT_LT(fp, store.items().size() / 20);
}

TEST_F(DetectorTest, ReportAccountsForEveryItem) {
  const auto& store = cats::TestStore();
  auto report = TrainedDetector().Detect(store.items());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->items_scanned, store.items().size());
  EXPECT_EQ(report->items_scanned,
            report->items_classified + report->items_filtered_low_sales +
                report->items_filtered_no_signal +
                report->items_filtered_no_comments);
  EXPECT_LE(report->detections.size(), report->items_classified);
}

TEST_F(DetectorTest, ScoresAboveThreshold) {
  auto report = TrainedDetector().Detect(cats::TestStore().items());
  ASSERT_TRUE(report.ok());
  for (const Detection& d : report->detections) {
    EXPECT_GE(d.score, 0.60);  // default threshold
    EXPECT_LE(d.score, 1.0);
  }
}

TEST_F(DetectorTest, ContainsLookup) {
  auto report = TrainedDetector().Detect(cats::TestStore().items());
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->detections.empty());
  EXPECT_TRUE(report->Contains(report->detections[0].item_id));
  EXPECT_FALSE(report->Contains(0xFFFFFFFFull));
}

TEST_F(DetectorTest, CustomClassifierInjectable) {
  Detector detector(&cats::TestSemanticModel());
  detector.SetClassifier(std::make_unique<ml::GaussianNaiveBayes>());
  const auto& store = cats::TestStore();
  std::vector<int> labels = cats::StoreLabels(cats::TestMarketplace(), store);
  ASSERT_TRUE(detector.Train(store.items(), labels).ok());
  auto report = detector.Detect(store.items());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(detector.classifier().name(), "Naive Bayes");
  // NB is weaker but must still find a good chunk of the fraud.
  EXPECT_GT(report->detections.size(), 10u);
}

TEST_F(DetectorTest, SaveGbdtFailsForNonGbdtClassifier) {
  Detector detector(&cats::TestSemanticModel());
  detector.SetClassifier(std::make_unique<ml::GaussianNaiveBayes>());
  EXPECT_FALSE(detector.SaveGbdt("/tmp/x.model").ok());
}

TEST_F(DetectorTest, PretrainedRoundTrip) {
  auto dir = std::filesystem::temp_directory_path() /
             ("cats_detector_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::string path = (dir / "gbdt.model").string();
  ASSERT_TRUE(TrainedDetector().SaveGbdt(path).ok());

  Detector fresh(&cats::TestSemanticModel());
  ASSERT_TRUE(fresh.LoadPretrainedGbdt(path).ok());
  EXPECT_TRUE(fresh.trained());
  auto a = TrainedDetector().Detect(cats::TestStore().items());
  auto b = fresh.Detect(cats::TestStore().items());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->detections.size(), b->detections.size());
  std::filesystem::remove_all(dir);
}

TEST_F(DetectorTest, ScoreFeaturesMatchesClassifier) {
  const auto& store = cats::TestStore();
  FeatureExtractor extractor(&cats::TestSemanticModel());
  std::vector<collect::CollectedItem> items(store.items().begin(),
                                            store.items().begin() + 10);
  auto features = extractor.ExtractAll(items);
  auto scores = TrainedDetector().ScoreFeatures(features);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 10u);
  for (double s : *scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(DetectorTest, CalibrateThresholdRequiresTraining) {
  Detector detector(&cats::TestSemanticModel());
  auto r = detector.CalibrateThreshold(cats::TestStore().items(),
                                       cats::StoreLabels(
                                           cats::TestMarketplace(),
                                           cats::TestStore()),
                                       0.9);
  EXPECT_FALSE(r.ok());
}

TEST_F(DetectorTest, CalibrateThresholdRejectsBadValidation) {
  Detector detector(&cats::TestSemanticModel());
  const auto& store = cats::TestStore();
  std::vector<int> labels = cats::StoreLabels(cats::TestMarketplace(), store);
  ASSERT_TRUE(detector.Train(store.items(), labels).ok());
  EXPECT_FALSE(detector.CalibrateThreshold({}, {}, 0.9).ok());
  std::vector<int> short_labels(3, 0);
  EXPECT_FALSE(
      detector.CalibrateThreshold(store.items(), short_labels, 0.9).ok());
}

TEST_F(DetectorTest, CalibrateThresholdReachesPrecisionTarget) {
  Detector detector(&cats::TestSemanticModel());
  const auto& store = cats::TestStore();
  std::vector<int> labels = cats::StoreLabels(cats::TestMarketplace(), store);
  ASSERT_TRUE(detector.Train(store.items(), labels).ok());
  auto threshold = detector.CalibrateThreshold(store.items(), labels, 0.95);
  ASSERT_TRUE(threshold.ok());
  EXPECT_GT(*threshold, 0.0);
  EXPECT_LE(*threshold, 1.0);
  EXPECT_DOUBLE_EQ(detector.decision_threshold(), *threshold);

  // The calibrated detector must reach the precision target on the
  // calibration set itself.
  auto report = detector.Detect(store.items());
  ASSERT_TRUE(report.ok());
  size_t tp = 0;
  for (const Detection& d : report->detections) {
    tp += cats::TestMarketplace().IsFraudItem(d.item_id) ? 1 : 0;
  }
  ASSERT_GT(report->detections.size(), 0u);
  EXPECT_GE(static_cast<double>(tp) / report->detections.size(), 0.95);
}

TEST_F(DetectorTest, CalibrateHigherTargetGivesHigherThreshold) {
  const auto& store = cats::TestStore();
  std::vector<int> labels = cats::StoreLabels(cats::TestMarketplace(), store);
  Detector a(&cats::TestSemanticModel()), b(&cats::TestSemanticModel());
  ASSERT_TRUE(a.Train(store.items(), labels).ok());
  ASSERT_TRUE(b.Train(store.items(), labels).ok());
  auto low = a.CalibrateThreshold(store.items(), labels, 0.70);
  auto high = b.CalibrateThreshold(store.items(), labels, 0.99);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_LE(*low, *high);
}

TEST_F(DetectorTest, ThresholdControlsVolume) {
  const auto& store = cats::TestStore();
  std::vector<int> labels = cats::StoreLabels(cats::TestMarketplace(), store);
  DetectorOptions strict;
  strict.decision_threshold = 0.95;
  DetectorOptions loose;
  loose.decision_threshold = 0.10;
  Detector a(&cats::TestSemanticModel(), strict);
  Detector b(&cats::TestSemanticModel(), loose);
  ASSERT_TRUE(a.Train(store.items(), labels).ok());
  ASSERT_TRUE(b.Train(store.items(), labels).ok());
  auto ra = a.Detect(store.items());
  auto rb = b.Detect(store.items());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_LT(ra->detections.size(), rb->detections.size());
}

}  // namespace
}  // namespace cats::core
