#include "analysis/distributions.h"

#include <gtest/gtest.h>

#include "platform_test_util.h"
#include "util/stats.h"

namespace cats::analysis {
namespace {

LabeledSplit Split() {
  const auto& store = cats::TestStore();
  return SplitByLabel(store.items(),
                      cats::StoreLabels(cats::TestMarketplace(), store));
}

TEST(SplitByLabelTest, PartitionsByLabel) {
  LabeledSplit split = Split();
  EXPECT_GT(split.fraud.size(), 0u);
  EXPECT_GT(split.normal.size(), split.fraud.size());
  EXPECT_EQ(split.fraud.size() + split.normal.size(),
            cats::TestStore().items().size());
}

TEST(CommentSentimentsTest, FraudMorePositive) {
  // Fig 1 shape: fraud comments' sentiment concentrates higher.
  LabeledSplit split = Split();
  auto fraud = CommentSentiments(cats::TestSemanticModel(), split.fraud);
  auto normal = CommentSentiments(cats::TestSemanticModel(), split.normal);
  ASSERT_GT(fraud.size(), 50u);
  ASSERT_GT(normal.size(), 50u);
  EXPECT_GT(Mean(fraud), Mean(normal));
  for (double s : fraud) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(StructuralSeriesTest, FigTwoToFiveShapes) {
  LabeledSplit split = Split();
  StructuralSeries fraud =
      ComputeStructuralSeries(cats::TestSemanticModel(), split.fraud);
  StructuralSeries normal =
      ComputeStructuralSeries(cats::TestSemanticModel(), split.normal);
  // Fig 2: more punctuation in fraud comments.
  EXPECT_GT(Mean(fraud.punctuation_counts), Mean(normal.punctuation_counts));
  // Fig 3: higher entropy (longer, more varied) in fraud comments.
  EXPECT_GT(Mean(fraud.entropies), Mean(normal.entropies));
  // Fig 4: longer fraud comments.
  EXPECT_GT(Mean(fraud.lengths), Mean(normal.lengths));
  // Fig 5: lower unique-word ratio in fraud comments (duplication).
  EXPECT_LT(Mean(fraud.unique_word_ratios),
            Mean(normal.unique_word_ratios));
  // All four series have one entry per comment.
  EXPECT_EQ(fraud.punctuation_counts.size(), fraud.entropies.size());
  EXPECT_EQ(fraud.lengths.size(), fraud.unique_word_ratios.size());
}

TEST(FeatureSeriesTest, MatchesExtractorColumn) {
  LabeledSplit split = Split();
  std::vector<collect::CollectedItem> sample(split.fraud.begin(),
                                             split.fraud.begin() + 5);
  auto series = FeatureSeries(cats::TestSemanticModel(), sample,
                              core::FeatureId::kAverageSentiment);
  ASSERT_EQ(series.size(), 5u);
  core::FeatureExtractor extractor(&cats::TestSemanticModel());
  for (size_t i = 0; i < 5; ++i) {
    auto f = extractor.Extract(sample[i]);
    EXPECT_FLOAT_EQ(
        static_cast<float>(series[i]),
        f[static_cast<size_t>(core::FeatureId::kAverageSentiment)]);
  }
}

TEST(CompareDistributionsTest, SharedBinningAndKs) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{10, 11, 12};
  DistributionComparison cmp = CompareDistributions(a, b, 10);
  EXPECT_EQ(cmp.a.num_bins(), 10u);
  EXPECT_EQ(cmp.a.lo(), cmp.b.lo());
  EXPECT_EQ(cmp.a.hi(), cmp.b.hi());
  EXPECT_DOUBLE_EQ(cmp.ks_statistic, 1.0);  // disjoint
  EXPECT_EQ(cmp.a.total(), 5u);
  EXPECT_EQ(cmp.b.total(), 3u);
}

TEST(CompareDistributionsTest, IdenticalSeriesZeroKs) {
  std::vector<double> a{1, 2, 3};
  DistributionComparison cmp = CompareDistributions(a, a, 4);
  EXPECT_DOUBLE_EQ(cmp.ks_statistic, 0.0);
}

TEST(CompareDistributionsTest, AsciiRenderable) {
  DistributionComparison cmp =
      CompareDistributions({1, 2, 2, 3}, {2, 3, 3, 4}, 4);
  std::string ascii = cmp.ToAscii("fraud", "normal");
  EXPECT_NE(ascii.find("fraud"), std::string::npos);
  EXPECT_NE(ascii.find("normal"), std::string::npos);
}

TEST(CompareDistributionsTest, EmptyInputsSafe) {
  DistributionComparison cmp = CompareDistributions({}, {}, 4);
  EXPECT_EQ(cmp.ks_statistic, 0.0);
  EXPECT_EQ(cmp.a.total(), 0u);
}

TEST(CrossPlatformTest, FeatureDistributionsAgreeAcrossPlatforms) {
  // Fig 13's claim: fraud-feature distributions on a *different* platform
  // resemble the training platform's far more than they resemble that
  // platform's own normal items.
  platform::MarketplaceConfig other_config = cats::SmallMarketConfig();
  other_config.name = "other-market";
  other_config.seed = 990011;
  platform::Marketplace other =
      platform::Marketplace::Generate(other_config, &cats::TestLanguage());
  collect::DataStore other_store = cats::CrawlAll(other);
  LabeledSplit other_split = SplitByLabel(
      other_store.items(), cats::StoreLabels(other, other_store));
  LabeledSplit home_split = Split();

  for (core::FeatureId feature : {core::FeatureId::kAverageSentiment,
                                  core::FeatureId::kAverageCommentLength,
                                  core::FeatureId::kAveragePositiveNumber}) {
    auto home_fraud =
        FeatureSeries(cats::TestSemanticModel(), home_split.fraud, feature);
    auto other_fraud =
        FeatureSeries(cats::TestSemanticModel(), other_split.fraud, feature);
    auto other_normal =
        FeatureSeries(cats::TestSemanticModel(), other_split.normal, feature);
    double ks_fraud_vs_fraud =
        KolmogorovSmirnovStatistic(home_fraud, other_fraud);
    double ks_fraud_vs_normal =
        KolmogorovSmirnovStatistic(home_fraud, other_normal);
    EXPECT_LT(ks_fraud_vs_fraud, ks_fraud_vs_normal)
        << core::FeatureName(feature);
  }
}

}  // namespace
}  // namespace cats::analysis
