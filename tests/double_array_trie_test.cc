// DoubleArrayTrie invariants: exact lookup over the build list (word i ->
// value i), rejection of non-members including every proper prefix and
// extension, Step/ValueAt agreement with a reference prefix walk, and
// structural sanity (root protected, bases positive) on dictionaries from
// tiny adversarial sets up to the full simulator vocabulary.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "platform_test_util.h"
#include "text/double_array_trie.h"
#include "text/utf8.h"
#include "util/random.h"

namespace cats::text {
namespace {

std::vector<std::string> Sorted(std::vector<std::string> words) {
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  return words;
}

/// Walks `s` byte by byte; returns the final node or -1 if the walk dies.
int32_t Walk(const DoubleArrayTrie& trie, std::string_view s) {
  int32_t node = DoubleArrayTrie::kRoot;
  for (char c : s) {
    node = trie.Step(node, static_cast<uint8_t>(c));
    if (node < 0) return -1;
  }
  return node;
}

TEST(DoubleArrayTrieTest, FindsEveryBuildWordWithItsIndex) {
  std::vector<std::string> words =
      Sorted({"a", "ab", "abc", "b", "ba", "xyz", "xy", "x"});
  DoubleArrayTrie trie = DoubleArrayTrie::Build(words);
  EXPECT_EQ(trie.num_words(), words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(trie.Find(words[i]), static_cast<int32_t>(i)) << words[i];
  }
}

TEST(DoubleArrayTrieTest, RejectsNonMembersPrefixesAndExtensions) {
  std::vector<std::string> words = Sorted({"ab", "abcd", "q"});
  DoubleArrayTrie trie = DoubleArrayTrie::Build(words);
  // "a" and "abc" are live prefixes but carry no value; "abcde" overshoots;
  // "z" never enters the trie; "" ends at the root which has no value.
  for (const char* miss : {"a", "abc", "abcde", "z", "", "ac", "qq"}) {
    EXPECT_EQ(trie.Find(miss), DoubleArrayTrie::kNoValue) << miss;
  }
  // The live prefixes still walk (they must, for longest-match scanning);
  // the dead ones must not.
  EXPECT_GE(Walk(trie, "a"), 0);
  EXPECT_GE(Walk(trie, "abc"), 0);
  EXPECT_EQ(Walk(trie, "abcde"), -1);
  EXPECT_EQ(Walk(trie, "z"), -1);
}

TEST(DoubleArrayTrieTest, EmptyWordListBehavesAsTotalMiss) {
  DoubleArrayTrie trie = DoubleArrayTrie::Build({});
  EXPECT_EQ(trie.num_words(), 0u);
  EXPECT_EQ(trie.Find("anything"), DoubleArrayTrie::kNoValue);
  EXPECT_EQ(trie.Find(""), DoubleArrayTrie::kNoValue);
  // No byte transition out of the root may reach a node carrying a value.
  for (int c = 0; c < 256; ++c) {
    int32_t node =
        trie.Step(DoubleArrayTrie::kRoot, static_cast<uint8_t>(c));
    if (node >= 0) {
      EXPECT_EQ(trie.ValueAt(node), DoubleArrayTrie::kNoValue);
    }
  }
}

TEST(DoubleArrayTrieTest, SingleByteAlphabetFullCoverage) {
  // All 255 single-byte words (no NUL): a dense first level.
  std::vector<std::string> words;
  for (int c = 1; c < 256; ++c) {
    words.push_back(std::string(1, static_cast<char>(c)));
  }
  words = Sorted(words);
  DoubleArrayTrie trie = DoubleArrayTrie::Build(words);
  for (size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(trie.Find(words[i]), static_cast<int32_t>(i));
  }
  EXPECT_EQ(trie.Find(std::string(2, 'a')), DoubleArrayTrie::kNoValue);
}

TEST(DoubleArrayTrieTest, MultiByteUtf8WordsSharePrefixSlots) {
  // CJK words sharing first bytes (same UTF-8 lead/continuation prefixes)
  // stress sibling packing.
  std::vector<std::string> words;
  for (uint32_t cp = 0x4E00; cp < 0x4E40; ++cp) {
    words.push_back(EncodeCodepoint(cp));
    words.push_back(EncodeCodepoint(cp) + EncodeCodepoint(cp + 1));
  }
  words.push_back("mixed" + EncodeCodepoint(0x1F600));
  words = Sorted(words);
  DoubleArrayTrie trie = DoubleArrayTrie::Build(words);
  for (size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(trie.Find(words[i]), static_cast<int32_t>(i)) << i;
  }
}

TEST(DoubleArrayTrieTest, MatchesSetLookupOnRandomCorpus) {
  Rng rng(0xDA7);
  std::vector<std::string> pool;
  for (int w = 0; w < 400; ++w) {
    std::string word;
    size_t len = 1 + rng.UniformU32(4);
    for (size_t k = 0; k < len; ++k) {
      AppendCodepoint(0x4E00 + rng.UniformU32(0x80), &word);
    }
    pool.push_back(word);
  }
  std::vector<std::string> words = Sorted(pool);
  std::set<std::string> reference(words.begin(), words.end());
  DoubleArrayTrie trie = DoubleArrayTrie::Build(words);

  // Every pool word and every random probe must agree with the set.
  for (int i = 0; i < 4000; ++i) {
    std::string probe;
    size_t len = 1 + rng.UniformU32(5);
    for (size_t k = 0; k < len; ++k) {
      AppendCodepoint(0x4E00 + rng.UniformU32(0x90), &probe);
    }
    const bool in_set = reference.count(probe) > 0;
    const int32_t value = trie.Find(probe);
    EXPECT_EQ(value != DoubleArrayTrie::kNoValue, in_set) << probe;
    if (in_set) {
      EXPECT_EQ(words[static_cast<size_t>(value)], probe);
    }
  }
}

TEST(DoubleArrayTrieTest, FullSimulatorVocabularyRoundTrips) {
  const SegmentationDictionary dict =
      cats::TestLanguage().BuildSegmentationDictionary();
  std::vector<std::string> words(dict.words().begin(), dict.words().end());
  words = Sorted(words);
  DoubleArrayTrie trie = DoubleArrayTrie::Build(words);
  EXPECT_EQ(trie.num_words(), words.size());
  EXPECT_GT(trie.num_slots(), words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    ASSERT_EQ(trie.Find(words[i]), static_cast<int32_t>(i)) << words[i];
  }
  // Probes assembled from word fragments must agree with the hash set.
  Rng rng(0xDA8);
  for (int i = 0; i < 2000; ++i) {
    const std::string& a = words[rng.UniformU32(
        static_cast<uint32_t>(words.size()))];
    const std::string& b = words[rng.UniformU32(
        static_cast<uint32_t>(words.size()))];
    std::string probe = a.substr(0, 3 * (1 + rng.UniformU32(2))) + b;
    EXPECT_EQ(trie.Find(probe) != DoubleArrayTrie::kNoValue,
              dict.Contains(probe))
        << probe;
  }
}

}  // namespace
}  // namespace cats::text
