#include "drift/drift_detector.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace cats {
namespace {

using drift::DriftDetector;
using drift::DriftDetectorOptions;
using drift::DriftStatus;

/// n scores ~ Beta(a, b) — a handy bounded score-like distribution.
std::vector<double> BetaScores(size_t n, double a, double b, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> scores;
  scores.reserve(n);
  for (size_t i = 0; i < n; ++i) scores.push_back(rng.Beta(a, b));
  return scores;
}

DriftDetectorOptions SmallOptions() {
  DriftDetectorOptions options;
  options.window_size = 256;
  options.min_observations = 64;
  return options;
}

TEST(DriftDetectorTest, StatusNames) {
  EXPECT_EQ(drift::DriftStatusName(DriftStatus::kStable), "stable");
  EXPECT_EQ(drift::DriftStatusName(DriftStatus::kWarning), "warning");
  EXPECT_EQ(drift::DriftStatusName(DriftStatus::kDrifted), "drifted");
}

TEST(DriftDetectorTest, NoVerdictWithoutReference) {
  DriftDetector detector(SmallOptions());
  EXPECT_FALSE(detector.has_reference());
  detector.Observe(0.9);
  EXPECT_EQ(detector.status(), DriftStatus::kStable);
  EXPECT_EQ(detector.psi(), 0.0);
}

TEST(DriftDetectorTest, NoVerdictBelowMinObservations) {
  DriftDetector detector(SmallOptions());
  detector.SetReference(BetaScores(512, 2.0, 5.0, 1));
  // A wildly different stream, but fewer than min_observations of it.
  for (int i = 0; i < 50; ++i) detector.Observe(0.99);
  EXPECT_EQ(detector.status(), DriftStatus::kStable);
  EXPECT_EQ(detector.psi(), 0.0);
}

TEST(DriftDetectorTest, MatchingTrafficStaysStable) {
  DriftDetector detector(SmallOptions());
  detector.SetReference(BetaScores(2048, 2.0, 5.0, 1));
  detector.ObserveBatch(BetaScores(256, 2.0, 5.0, 2));
  EXPECT_EQ(detector.status(), DriftStatus::kStable);
  EXPECT_LT(detector.psi(), 0.10);
  EXPECT_EQ(detector.observations(), 256u);
}

TEST(DriftDetectorTest, DistributionShapeShiftTripsPsi) {
  DriftDetectorOptions options = SmallOptions();
  // Isolate PSI: make Page-Hinkley impossible to trip.
  options.ph_warning = 1e9;
  options.ph_drifted = 1e9;
  DriftDetector detector(options);
  detector.SetReference(BetaScores(2048, 2.0, 5.0, 1));
  // Scores now concentrate at the top: mass leaves most reference bins.
  detector.ObserveBatch(BetaScores(256, 5.0, 1.2, 3));
  EXPECT_EQ(detector.status(), DriftStatus::kDrifted);
  EXPECT_GT(detector.psi(), options.psi_drifted);
}

TEST(DriftDetectorTest, MeanCreepTripsPageHinkley) {
  DriftDetectorOptions options = SmallOptions();
  // Isolate Page-Hinkley: make PSI impossible to trip.
  options.psi_warning = 1e9;
  options.psi_drifted = 1e9;
  DriftDetector detector(options);
  detector.SetReference(BetaScores(2048, 2.0, 5.0, 1));
  // Small but persistent upward creep relative to the reference mean
  // (Beta(2,5) mean is ~0.286).
  Rng rng(9);
  for (int i = 0; i < 256; ++i) {
    detector.Observe(0.35 + rng.UniformDouble(0.0, 0.05));
  }
  EXPECT_EQ(detector.status(), DriftStatus::kDrifted);
  EXPECT_GT(detector.page_hinkley(), options.ph_drifted);
}

TEST(DriftDetectorTest, ModerateShiftWarnsFirst) {
  DriftDetectorOptions options = SmallOptions();
  options.ph_warning = 1e9;
  options.ph_drifted = 1e9;
  // Widen the PSI band so the shift below lands between the thresholds.
  options.psi_warning = 0.05;
  options.psi_drifted = 10.0;
  DriftDetector detector(options);
  detector.SetReference(BetaScores(2048, 2.0, 5.0, 1));
  detector.ObserveBatch(BetaScores(256, 2.6, 4.4, 3));
  EXPECT_EQ(detector.status(), DriftStatus::kWarning);
  EXPECT_GT(detector.psi(), options.psi_warning);
}

TEST(DriftDetectorTest, SetReferenceResetsVerdict) {
  DriftDetector detector(SmallOptions());
  detector.SetReference(BetaScores(2048, 2.0, 5.0, 1));
  detector.ObserveBatch(BetaScores(256, 5.0, 1.2, 3));
  ASSERT_EQ(detector.status(), DriftStatus::kDrifted);
  // The swap path re-anchors on the new model's probe scores: the window,
  // the Page-Hinkley accumulators and the verdict all clear.
  detector.SetReference(BetaScores(2048, 5.0, 1.2, 4));
  EXPECT_EQ(detector.status(), DriftStatus::kStable);
  EXPECT_EQ(detector.observations(), 0u);
  EXPECT_EQ(detector.psi(), 0.0);
  detector.ObserveBatch(BetaScores(256, 5.0, 1.2, 5));
  EXPECT_EQ(detector.status(), DriftStatus::kStable);
}

TEST(DriftDetectorTest, WindowSlidesPastOldScores) {
  DriftDetectorOptions options = SmallOptions();
  options.ph_warning = 1e9;  // PSI only: PH is cumulative by design
  options.ph_drifted = 1e9;
  DriftDetector detector(options);
  detector.SetReference(BetaScores(2048, 2.0, 5.0, 1));
  detector.ObserveBatch(BetaScores(256, 5.0, 1.2, 3));
  ASSERT_EQ(detector.status(), DriftStatus::kDrifted);
  // A full window of on-distribution traffic evicts the drifted scores.
  detector.ObserveBatch(BetaScores(options.window_size, 2.0, 5.0, 6));
  EXPECT_EQ(detector.status(), DriftStatus::kStable);
  EXPECT_LT(detector.psi(), 0.10);
}

TEST(DriftDetectorTest, DegenerateOptionsAreClamped) {
  DriftDetectorOptions options;
  options.window_size = 0;
  options.min_observations = 0;
  options.num_bins = 0;
  DriftDetector detector(options);
  detector.SetReference(BetaScores(64, 2.0, 2.0, 1));
  for (int i = 0; i < 64; ++i) detector.Observe(0.5);
  // No crash, and the detector still renders verdicts.
  EXPECT_GE(detector.observations(), 1u);
}

}  // namespace
}  // namespace cats
