#include "nlp/embedding.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/thread_pool.h"

namespace cats::nlp {
namespace {

TEST(EmbeddingStoreTest, AddAndLookup) {
  EmbeddingStore store(3);
  store.Add("a", {1.0f, 0.0f, 0.0f});
  store.Add("b", {0.0f, 2.0f, 0.0f});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains("a"));
  EXPECT_FALSE(store.Contains("z"));
  auto v = store.Vector("b");
  ASSERT_TRUE(v.ok());
  // Vectors are L2-normalized on insert.
  EXPECT_FLOAT_EQ((*v)[1], 1.0f);
}

TEST(EmbeddingStoreTest, WrongDimensionIgnored) {
  EmbeddingStore store(3);
  store.Add("bad", {1.0f});
  EXPECT_EQ(store.size(), 0u);
}

TEST(EmbeddingStoreTest, ReAddOverwrites) {
  EmbeddingStore store(2);
  store.Add("w", {1.0f, 0.0f});
  store.Add("w", {0.0f, 1.0f});
  EXPECT_EQ(store.size(), 1u);
  auto v = store.Vector("w");
  EXPECT_FLOAT_EQ((*v)[1], 1.0f);
}

TEST(EmbeddingStoreTest, CosineOrthogonalAndParallel) {
  EmbeddingStore store(2);
  store.Add("x", {1.0f, 0.0f});
  store.Add("y", {0.0f, 5.0f});
  store.Add("x2", {3.0f, 0.0f});
  EXPECT_NEAR(*store.Cosine("x", "y"), 0.0f, 1e-6);
  EXPECT_NEAR(*store.Cosine("x", "x2"), 1.0f, 1e-6);
  EXPECT_EQ(store.Cosine("x", "missing").status().code(),
            StatusCode::kNotFound);
}

TEST(EmbeddingStoreTest, NearestNeighborsSortedAndExcludesSelf) {
  EmbeddingStore store(2);
  store.Add("q", {1.0f, 0.0f});
  store.Add("close", {0.9f, 0.1f});
  store.Add("mid", {0.5f, 0.5f});
  store.Add("far", {-1.0f, 0.0f});
  auto nn = store.NearestNeighbors("q", 3);
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn->size(), 3u);
  EXPECT_EQ((*nn)[0].word, "close");
  EXPECT_EQ((*nn)[1].word, "mid");
  EXPECT_EQ((*nn)[2].word, "far");
  for (const Neighbor& n : *nn) EXPECT_NE(n.word, "q");
  EXPECT_GE((*nn)[0].similarity, (*nn)[1].similarity);
}

TEST(EmbeddingStoreTest, KLargerThanStore) {
  EmbeddingStore store(2);
  store.Add("a", {1.0f, 0.0f});
  store.Add("b", {0.0f, 1.0f});
  auto nn = store.NearestNeighbors("a", 10);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->size(), 1u);
}

TEST(EmbeddingStoreTest, UnknownQueryIsNotFound) {
  EmbeddingStore store(2);
  store.Add("a", {1.0f, 0.0f});
  EXPECT_EQ(store.NearestNeighbors("zzz", 1).status().code(),
            StatusCode::kNotFound);
}

TEST(EmbeddingStoreTest, SaveLoadRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "cats_emb_test.txt").string();
  EmbeddingStore store(3);
  store.Add("好评", {0.1f, 0.2f, 0.3f});
  store.Add("差评", {-0.1f, 0.5f, 0.0f});
  ASSERT_TRUE(store.Save(path).ok());

  auto loaded = EmbeddingStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 3u);
  EXPECT_NEAR(*loaded->Cosine("好评", "差评"), *store.Cosine("好评", "差评"),
              1e-5);
  std::filesystem::remove(path);
}

TEST(EmbeddingStoreTest, LoadMissingFileFails) {
  EXPECT_EQ(EmbeddingStore::Load("/nonexistent/emb.txt").status().code(),
            StatusCode::kIoError);
}

TEST(EmbeddingStoreTest, ParallelNearestNeighborsMatchesSerial) {
  // A store big enough to cross the kMinParallelRows gate, with plenty of
  // duplicate similarities so the deterministic tie-break is exercised.
  EmbeddingStore store(8);
  Rng rng(41);
  std::vector<float> vec(8);
  for (size_t i = 0; i < 900; ++i) {
    for (float& v : vec) {
      v = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    store.Add("w" + std::to_string(i), vec);
  }
  ThreadPool pool(3);
  for (const char* query : {"w0", "w250", "w899"}) {
    auto serial = store.NearestNeighbors(query, 25);
    auto parallel = store.NearestNeighbors(query, 25, &pool);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial->size(), parallel->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*serial)[i].word, (*parallel)[i].word) << query << " " << i;
      EXPECT_EQ((*serial)[i].similarity, (*parallel)[i].similarity)
          << query << " " << i;
    }
  }
}

}  // namespace
}  // namespace cats::nlp
