// Integration test: the paper's full cross-platform story at test scale.
// Train the semantic model and detector on one simulated platform, then
// crawl a *different* platform (different seed, different workload mix) and
// detect frauds there — the deployment mode CATS was built for.

#include <gtest/gtest.h>

#include "analysis/validation.h"
#include "core/cats.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "platform_test_util.h"

namespace cats {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static platform::Marketplace MakeTargetPlatform() {
    platform::MarketplaceConfig config = SmallMarketConfig();
    config.name = "target-platform";
    config.seed = 20171224;  // the paper's E-platform crawl started then
    config.num_normal_items = 500;
    config.num_fraud_items = 35;
    config.campaign.crew_size = 20;
    return platform::Marketplace::Generate(config, &TestLanguage());
  }
};

TEST_F(EndToEndTest, CrossPlatformDetection) {
  // 1. Train everything on the home platform.
  core::CatsOptions cats_options;
  cats_options.semantic.word2vec.epochs = 2;
  cats_options.semantic.word2vec.dim = 32;
  // Balanced operating point — the tiny test platforms leave no headroom
  // for the precision-leaning default threshold.
  cats_options.detector.decision_threshold = 0.5;
  core::Cats cats_system(cats_options);
  {
    std::vector<std::string> corpus;
    for (const platform::Comment& c : TestMarketplace().comments()) {
      corpus.push_back(c.content);
    }
    ASSERT_TRUE(cats_system
                    .BuildSemanticModel(
                        corpus, TestLanguage().BuildSegmentationDictionary(),
                        TestLanguage().PositiveSeeds(3),
                        TestLanguage().NegativeSeeds(3),
                        TestMarketplace().BuildSentimentCorpus(2000, 11))
                    .ok());
    ASSERT_TRUE(cats_system
                    .TrainDetector(TestStore().items(),
                                   StoreLabels(TestMarketplace(), TestStore()))
                    .ok());
  }

  // 2. Crawl the target platform through its public API (with failure and
  //    duplicate injection on).
  platform::Marketplace target = MakeTargetPlatform();
  platform::ApiOptions api_options;  // defaults inject noise
  platform::MarketplaceApi api(&target, api_options);
  collect::FakeClock clock;
  collect::Crawler crawler(&api, collect::CrawlerOptions{}, &clock);
  collect::DataStore store;
  ASSERT_TRUE(crawler.Crawl(&store).ok());
  ASSERT_EQ(store.items().size(), target.items().size());

  // 3. Detect and validate against the target's hidden ground truth. Take
  //    a registry snapshot around the run so the pipeline's observability
  //    invariants can be asserted on the deltas.
  obs::MetricsSnapshot before = core::Cats::MetricsSnapshot();
  auto report = cats_system.Detect(store.items());
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->detections.size(), 0u);

  // Conservation across stage 1 + stage 2: every scanned item was either
  // rule-filtered or classified, and the registry agrees with the report.
  obs::MetricsSnapshot after = core::Cats::MetricsSnapshot();
  uint64_t scanned = after.CounterValue(obs::kDetectorItemsScannedTotal) -
                     before.CounterValue(obs::kDetectorItemsScannedTotal);
  uint64_t filtered =
      after.CounterValue(obs::kDetectorItemsRuleFilteredTotal) -
      before.CounterValue(obs::kDetectorItemsRuleFilteredTotal);
  uint64_t classified =
      after.CounterValue(obs::kDetectorItemsClassifiedTotal) -
      before.CounterValue(obs::kDetectorItemsClassifiedTotal);
  EXPECT_EQ(scanned, store.items().size());
  EXPECT_EQ(scanned, filtered + classified);
  EXPECT_EQ(classified, report->items_classified);

  // Every classified item left a score sample; extraction covered the run.
  const obs::HistogramSnapshot* scores =
      after.FindHistogram(obs::kDetectorScoreHistogram);
  ASSERT_NE(scores, nullptr);
  uint64_t before_scores = 0;
  if (const obs::HistogramSnapshot* h =
          before.FindHistogram(obs::kDetectorScoreHistogram)) {
    before_scores = h->total_count;
  }
  EXPECT_EQ(scores->total_count - before_scores, classified);
  EXPECT_GT(scores->total_count, 0u);
  EXPECT_GE(after.CounterValue(obs::kExtractorItemsFeaturizedTotal) -
                before.CounterValue(obs::kExtractorItemsFeaturizedTotal),
            scanned);

  // The report carries a stage trace: detect > extract_features +
  // rule_filter_and_classify, with item attribution.
  const obs::TraceNode* detect_stage =
      report->trace.root().FindChild("detect");
  ASSERT_NE(detect_stage, nullptr);
  EXPECT_EQ(detect_stage->items, store.items().size());
  const obs::TraceNode* extract_stage =
      detect_stage->FindChild("extract_features");
  ASSERT_NE(extract_stage, nullptr);
  EXPECT_EQ(extract_stage->items, store.items().size());
  const obs::TraceNode* classify_stage =
      detect_stage->FindChild("rule_filter_and_classify");
  ASSERT_NE(classify_stage, nullptr);
  EXPECT_EQ(classify_stage->items, report->items_classified);
  EXPECT_GE(detect_stage->wall_micros, extract_stage->wall_micros);

  // The facade's JSON dump parses back through util/json.h.
  ASSERT_TRUE(JsonValue::Parse(core::Cats::DumpMetricsJson()).ok());

  std::vector<uint64_t> ids;
  std::vector<int> labels;
  for (const collect::CollectedItem& ci : store.items()) {
    ids.push_back(ci.item.item_id);
    labels.push_back(target.IsFraudItem(ci.item.item_id) ? 1 : 0);
  }
  auto metrics = analysis::EvaluateReport(*report, ids, labels);
  // Cross-platform transfer must hold up (paper: precision ~0.9+, recall
  // ~0.9 at full scale; test scale is tiny so accept a generous floor).
  EXPECT_GT(metrics.precision, 0.6) << metrics.ToString();
  EXPECT_GT(metrics.recall, 0.4) << metrics.ToString();

  // 4. Sampled "expert" validation agrees with full-truth precision.
  std::unordered_map<uint64_t, int> truth;
  for (size_t i = 0; i < ids.size(); ++i) truth[ids[i]] = labels[i];
  Rng rng(9);
  auto sampled = analysis::ValidateBySampling(
      *report, truth, report->detections.size(), &rng);
  EXPECT_NEAR(sampled.precision, metrics.precision, 1e-9);
}

TEST_F(EndToEndTest, PipelineDeterministicAcrossRuns) {
  // Two complete pipeline executions over the same seeds must agree.
  auto run = [] {
    platform::Marketplace target = MakeTargetPlatform();
    collect::DataStore store = CrawlAll(target);
    core::Detector detector(&TestSemanticModel());
    Status st = detector.Train(TestStore().items(),
                               StoreLabels(TestMarketplace(), TestStore()));
    CATS_CHECK(st.ok());
    auto report = detector.Detect(store.items());
    CATS_CHECK(report.ok());
    std::vector<uint64_t> flagged;
    for (const auto& d : report->detections) flagged.push_back(d.item_id);
    return flagged;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cats
