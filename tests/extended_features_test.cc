#include "core/extended_features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "platform_test_util.h"
#include "util/stats.h"

namespace cats::core {
namespace {

collect::CommentRecord Comment(const char* nickname, int64_t exp_value,
                               const char* client, const char* date) {
  collect::CommentRecord c;
  c.nickname = nickname;
  c.user_exp_value = exp_value;
  c.client = client;
  c.date = date;
  c.content = "x";
  return c;
}

float Get(const std::array<float, kNumExtendedOnly>& f,
          ExtendedFeatureId id) {
  return f[static_cast<size_t>(id)];
}

TEST(DateOrdinalTest, ParsesAndOrders) {
  int32_t a = ParseDateToDayOrdinal("2017-09-01 00:00:00");
  int32_t b = ParseDateToDayOrdinal("2017-09-08 23:59:59");
  int32_t c = ParseDateToDayOrdinal("2018-01-01 05:00:00");
  ASSERT_GE(a, 0);
  EXPECT_EQ(b - a, 7);
  EXPECT_EQ(c - a, 122);  // Sep(29)+Oct(31)+Nov(30)+Dec(31)+1
}

TEST(DateOrdinalTest, LeapYearHandled) {
  int32_t feb28 = ParseDateToDayOrdinal("2016-02-28 00:00:00");
  int32_t mar01 = ParseDateToDayOrdinal("2016-03-01 00:00:00");
  EXPECT_EQ(mar01 - feb28, 2);  // 2016 is a leap year
  int32_t feb28_17 = ParseDateToDayOrdinal("2017-02-28 00:00:00");
  int32_t mar01_17 = ParseDateToDayOrdinal("2017-03-01 00:00:00");
  EXPECT_EQ(mar01_17 - feb28_17, 1);
}

TEST(DateOrdinalTest, MalformedRejected) {
  EXPECT_EQ(ParseDateToDayOrdinal(""), -1);
  EXPECT_EQ(ParseDateToDayOrdinal("not a date"), -1);
  EXPECT_EQ(ParseDateToDayOrdinal("2017-13-01 00:00:00"), -1);
  EXPECT_EQ(ParseDateToDayOrdinal("2017-02-30 00:00:00"), -1);
  EXPECT_EQ(ParseDateToDayOrdinal("1999-01-01 00:00:00"), -1);
}

TEST(ExtendedFeaturesTest, EmptyItemAllZero) {
  collect::CollectedItem item;
  auto f = ExtendedFeatureExtractor::ExtractMetadataFeatures(item);
  for (float v : f) EXPECT_EQ(v, 0.0f);
}

TEST(ExtendedFeaturesTest, BuyerExpFeaturesByHand) {
  collect::CollectedItem item;
  item.comments.push_back(Comment("a", 100, "Web", "2017-09-01 10:00:00"));
  item.comments.push_back(Comment("b", 1000, "Android", "2017-09-02 10:00:00"));
  item.comments.push_back(Comment("c", 10000, "iPhone", "2017-09-03 10:00:00"));
  auto f = ExtendedFeatureExtractor::ExtractMetadataFeatures(item);
  // avg = (100+1000+10000)/3 = 3700 -> log10 ~ 3.568.
  EXPECT_NEAR(Get(f, ExtendedFeatureId::kLogAvgBuyerExpValue),
              std::log10(3700.0), 1e-5);
  EXPECT_NEAR(Get(f, ExtendedFeatureId::kMinExpBuyerFraction), 1.0f / 3.0f,
              1e-6);
  EXPECT_NEAR(Get(f, ExtendedFeatureId::kWebClientRatio), 1.0f / 3.0f, 1e-6);
}

TEST(ExtendedFeaturesTest, RepeatBuyersCountedByIdentity) {
  collect::CollectedItem item;
  // Same (nickname, exp) twice = one repeat buyer with 2 orders; a third
  // singleton order.
  item.comments.push_back(Comment("a", 100, "Web", "2017-09-01 10:00:00"));
  item.comments.push_back(Comment("a", 100, "Web", "2017-09-02 10:00:00"));
  item.comments.push_back(Comment("a", 500, "Web", "2017-09-03 10:00:00"));
  auto f = ExtendedFeatureExtractor::ExtractMetadataFeatures(item);
  EXPECT_NEAR(Get(f, ExtendedFeatureId::kRepeatBuyerRatio), 2.0f / 3.0f,
              1e-6);
}

TEST(ExtendedFeaturesTest, BurstConcentrationByHand) {
  collect::CollectedItem item;
  // 3 comments within one week, 1 far away -> densest 7-day window = 3/4.
  item.comments.push_back(Comment("a", 100, "Web", "2017-09-01 10:00:00"));
  item.comments.push_back(Comment("b", 100, "Web", "2017-09-03 10:00:00"));
  item.comments.push_back(Comment("c", 100, "Web", "2017-09-05 10:00:00"));
  item.comments.push_back(Comment("d", 100, "Web", "2017-12-01 10:00:00"));
  auto f = ExtendedFeatureExtractor::ExtractMetadataFeatures(item);
  EXPECT_NEAR(Get(f, ExtendedFeatureId::kBurstConcentration), 0.75f, 1e-6);
}

TEST(ExtendedFeaturesTest, BurstWindowIsSevenDaysExclusive) {
  collect::CollectedItem item;
  item.comments.push_back(Comment("a", 100, "Web", "2017-09-01 10:00:00"));
  item.comments.push_back(Comment("b", 100, "Web", "2017-09-08 10:00:00"));
  auto f = ExtendedFeatureExtractor::ExtractMetadataFeatures(item);
  // 7 days apart: outside one window -> densest window holds 1 of 2.
  EXPECT_NEAR(Get(f, ExtendedFeatureId::kBurstConcentration), 0.5f, 1e-6);
}

TEST(ExtendedFeaturesTest, SingleDayAllInBurst) {
  collect::CollectedItem item;
  for (int i = 0; i < 5; ++i) {
    item.comments.push_back(Comment("a", 100, "Web", "2017-09-01 10:00:00"));
  }
  auto f = ExtendedFeatureExtractor::ExtractMetadataFeatures(item);
  EXPECT_FLOAT_EQ(Get(f, ExtendedFeatureId::kBurstConcentration), 1.0f);
}

TEST(ExtendedFeaturesTest, FullVectorPrefixMatchesBaseExtractor) {
  const auto& store = cats::TestStore();
  ExtendedFeatureExtractor extended(&cats::TestSemanticModel());
  FeatureExtractor base(&cats::TestSemanticModel());
  for (size_t i = 0; i < 10; ++i) {
    auto full = extended.Extract(store.items()[i]);
    auto head = base.Extract(store.items()[i]);
    for (size_t f = 0; f < kNumFeatures; ++f) {
      EXPECT_FLOAT_EQ(full[f], head[f]) << i << "," << f;
    }
  }
}

TEST(ExtendedFeaturesTest, MetadataFeaturesSeparateFraudFromNormal) {
  // The §V findings as features: fraud items burst, skew web, have
  // low-reputation and repeat buyers.
  const auto& market = cats::TestMarketplace();
  const auto& store = cats::TestStore();
  RunningStats fraud_exp, normal_exp, fraud_web, normal_web, fraud_burst,
      normal_burst;
  for (const collect::CollectedItem& ci : store.items()) {
    if (ci.comments.empty()) continue;
    auto f = ExtendedFeatureExtractor::ExtractMetadataFeatures(ci);
    bool fraud = market.IsFraudItem(ci.item.item_id);
    (fraud ? fraud_exp : normal_exp)
        .Add(Get(f, ExtendedFeatureId::kLogAvgBuyerExpValue));
    (fraud ? fraud_web : normal_web)
        .Add(Get(f, ExtendedFeatureId::kWebClientRatio));
    (fraud ? fraud_burst : normal_burst)
        .Add(Get(f, ExtendedFeatureId::kBurstConcentration));
  }
  EXPECT_LT(fraud_exp.mean(), normal_exp.mean());
  EXPECT_GT(fraud_web.mean(), normal_web.mean());
  EXPECT_GT(fraud_burst.mean(), normal_burst.mean());
}

TEST(ExtendedFeaturesTest, BuildDatasetHas16Columns) {
  const auto& store = cats::TestStore();
  ExtendedFeatureExtractor extractor(&cats::TestSemanticModel());
  std::vector<collect::CollectedItem> items(store.items().begin(),
                                            store.items().begin() + 20);
  std::vector<int> labels(20, 0);
  auto dataset = extractor.BuildDataset(items, labels);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_features(), kNumExtendedFeatures);
  EXPECT_EQ(dataset->feature_names()[kNumFeatures], "logAvgBuyerExpValue");
  EXPECT_EQ(dataset->feature_names().back(), "repeatBuyerRatio");
}

TEST(ExtendedFeaturesTest, ParallelMatchesSerial) {
  const auto& store = cats::TestStore();
  ExtendedFeatureExtractor extractor(&cats::TestSemanticModel());
  std::vector<collect::CollectedItem> items(store.items().begin(),
                                            store.items().begin() + 40);
  auto serial = extractor.ExtractAll(items, 1);
  auto parallel = extractor.ExtractAll(items, 8);
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t f = 0; f < kNumExtendedFeatures; ++f) {
      EXPECT_FLOAT_EQ(serial[i][f], parallel[i][f]);
    }
  }
}

}  // namespace
}  // namespace cats::core
