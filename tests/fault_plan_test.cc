#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/json.h"

namespace cats::fault {
namespace {

TEST(FaultProfileTest, FromNameRoundTrip) {
  auto none = FaultProfile::FromName("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->server_error_prob, 0.0);
  EXPECT_EQ(none->duplicate_record_prob, 0.0);

  auto mild = FaultProfile::FromName("mild");
  ASSERT_TRUE(mild.ok());
  EXPECT_GT(mild->server_error_prob, 0.0);
  EXPECT_EQ(mild->rate_limit_prob, 0.0);

  auto hostile = FaultProfile::FromName("hostile");
  ASSERT_TRUE(hostile.ok());
  EXPECT_GT(hostile->rate_limit_prob, 0.0);
  EXPECT_GT(hostile->truncate_body_prob, 0.0);
  EXPECT_GT(hostile->stale_total_pages_prob, 0.0);

  EXPECT_FALSE(FaultProfile::FromName("apocalyptic").ok());
  EXPECT_FALSE(FaultProfile::FromName("").ok());
}

TEST(FaultPlanTest, SameSeedSameSchedule) {
  FaultProfile profile = FaultProfile::Hostile();
  FaultPlan a(profile, 1234);
  FaultPlan b(profile, 1234);
  for (int i = 0; i < 5000; ++i) {
    FaultDecision da = a.NextRequest();
    FaultDecision db = b.NextRequest();
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.retry_after_micros, db.retry_after_micros);
    EXPECT_EQ(da.latency_micros, db.latency_micros);
    EXPECT_EQ(da.corruption_seed, db.corruption_seed);
    EXPECT_EQ(da.stale_extra_pages, db.stale_extra_pages);
    EXPECT_EQ(da.shift, db.shift);
    EXPECT_EQ(a.NextRecordDuplicate(), b.NextRecordDuplicate());
  }
  for (size_t k = 0; k < kNumFaultKinds; ++k) {
    EXPECT_EQ(a.injected(static_cast<FaultKind>(k)),
              b.injected(static_cast<FaultKind>(k)));
  }
}

TEST(FaultPlanTest, DifferentSeedsDifferentSchedules) {
  FaultProfile profile = FaultProfile::Hostile();
  FaultPlan a(profile, 1);
  FaultPlan b(profile, 2);
  int diverged = 0;
  for (int i = 0; i < 2000; ++i) {
    if (a.NextRequest().kind != b.NextRequest().kind) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(FaultPlanTest, NoneProfileNeverInjects) {
  FaultPlan plan(FaultProfile::None(), 42);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(plan.NextRequest().kind, FaultKind::kNone);
    EXPECT_FALSE(plan.NextRecordDuplicate());
  }
  EXPECT_EQ(plan.total_request_faults(), 0u);
}

TEST(FaultPlanTest, HostileInjectsEveryKind) {
  FaultPlan plan(FaultProfile::Hostile(), 7);
  for (int i = 0; i < 50000; ++i) {
    (void)plan.NextRequest();
    (void)plan.NextRecordDuplicate();
  }
  for (size_t k = 1; k < kNumFaultKinds; ++k) {
    EXPECT_GT(plan.injected(static_cast<FaultKind>(k)), 0u)
        << FaultKindName(static_cast<FaultKind>(k));
  }
}

TEST(FaultPlanTest, ServerErrorBurstsPinFollowingRequests) {
  FaultProfile profile = FaultProfile::None();
  profile.server_error_prob = 0.05;
  profile.server_error_burst_max = 4;
  FaultPlan plan(profile, 11);
  // Scan for a burst longer than one: consecutive server errors must occur.
  int longest_run = 0, run = 0;
  for (int i = 0; i < 20000; ++i) {
    if (plan.NextRequest().kind == FaultKind::kServerError) {
      longest_run = std::max(longest_run, ++run);
    } else {
      run = 0;
    }
  }
  EXPECT_GE(longest_run, 2);
  EXPECT_LE(longest_run, 16);  // bursts are bounded, not runaway
}

TEST(FaultPlanTest, InjectionCountersMatchObservedDecisions) {
  FaultPlan plan(FaultProfile::Hostile(), 99);
  uint64_t observed = 0;
  for (int i = 0; i < 10000; ++i) {
    if (plan.NextRequest().kind != FaultKind::kNone) ++observed;
  }
  EXPECT_EQ(plan.total_request_faults(), observed);
}

TEST(CorruptBodyTest, NeverYieldsParseableJson) {
  const std::string body =
      R"({"page":2,"total_pages":7,"data":[{"k":"v"},{"k":"w"}]})";
  ASSERT_TRUE(JsonValue::Parse(body).ok());
  for (uint64_t seed = 0; seed < 3000; ++seed) {
    for (FaultKind kind :
         {FaultKind::kTruncatedBody, FaultKind::kGarbledBody}) {
      FaultDecision d;
      d.kind = kind;
      d.corruption_seed = seed;
      std::string corrupted = CorruptBody(body, d);
      EXPECT_FALSE(JsonValue::Parse(corrupted).ok()) << corrupted;
      // Corruption is itself deterministic per seed.
      EXPECT_EQ(corrupted, CorruptBody(body, d));
    }
  }
}

TEST(RetryAfterTest, FormatParseRoundTrip) {
  for (int64_t micros : {0LL, 1LL, 20'000LL, 200'000LL, 5'000'000LL}) {
    std::string message = FormatRateLimited(micros);
    auto parsed = ParseRetryAfterMicros(message);
    ASSERT_TRUE(parsed.has_value()) << message;
    EXPECT_EQ(*parsed, micros);
  }
  EXPECT_FALSE(ParseRetryAfterMicros("503 service unavailable").has_value());
  EXPECT_FALSE(ParseRetryAfterMicros("").has_value());
  EXPECT_FALSE(
      ParseRetryAfterMicros("429 rate limited; retry_after_micros=").has_value());
}

}  // namespace
}  // namespace cats::fault
