#include "core/feature_extractor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "platform_test_util.h"
#include "util/stats.h"

namespace cats::core {
namespace {

float Get(const FeatureVector& f, FeatureId id) {
  return f[static_cast<size_t>(id)];
}

/// A tiny hand-built semantic model with known lexicons: P = {好评, 很好},
/// N = {差评}. Dictionary covers all words used in the tests.
const SemanticModel& TinyModel() {
  static const SemanticModel* model = [] {
    auto* m = new SemanticModel();
    for (const char* w :
         {"好评", "很好", "差评", "商品", "质量", "推荐", "不行"}) {
      m->dictionary.AddWord(w);
    }
    m->positive.Insert("好评");
    m->positive.Insert("很好");
    m->negative.Insert("差评");
    // Sentiment: a trivial trained model (positive word -> positive doc).
    std::vector<nlp::SentimentExample> examples;
    for (int i = 0; i < 10; ++i) {
      examples.push_back({{"好评", "很好"}, true});
      examples.push_back({{"差评", "不行"}, false});
    }
    CATS_CHECK(m->sentiment.Train(examples).ok());
    return m;
  }();
  return *model;
}

TEST(FeatureExtractorTest, EmptyCommentsAllZero) {
  FeatureExtractor extractor(&TinyModel());
  FeatureVector f = extractor.ExtractFromComments({});
  for (float v : f) EXPECT_EQ(v, 0.0f);
}

TEST(FeatureExtractorTest, EmptyCommentItemIsFiniteAndDeterministic) {
  FeatureExtractor extractor(&TinyModel());
  collect::CollectedItem ci;
  ci.item.item_id = 1;
  ci.item.price = 9.99;
  ci.item.sales_volume = 0;
  FeatureVector f = extractor.Extract(ci);
  for (float v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0f);
  }
  EXPECT_EQ(extractor.Extract(ci), f);
}

TEST(FeatureExtractorTest, MissingOrdersItemIsFiniteAndDeterministic) {
  FeatureExtractor extractor(&TinyModel());
  collect::CollectedItem ci;
  ci.item.item_id = 2;
  ci.item.price = 9.99;
  ci.item.sales_volume = -1;  // the "field absent" sentinel
  collect::CommentRecord c;
  c.item_id = 2;
  c.comment_id = 1;
  c.content = "好评很好商品";
  ci.comments.push_back(c);
  FeatureVector f = extractor.Extract(ci);
  for (float v : f) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(extractor.Extract(ci), f);
}

TEST(FeatureExtractorTest, HostileCommentBodiesStayFinite) {
  // Garbage the validator would quarantine must still never produce a
  // NaN/inf feature — extraction happens before triage routing and a
  // poison row must not taint adjacent math.
  FeatureExtractor extractor(&TinyModel());
  for (const std::string& content :
       {std::string("\xFE\x80\xFF"), std::string(100000, 'x'),
        std::string("好评\xFE很好"), std::string()}) {
    FeatureVector f = extractor.ExtractFromComments({content});
    for (float v : f) {
      EXPECT_TRUE(std::isfinite(v)) << "content size " << content.size();
    }
    EXPECT_EQ(extractor.ExtractFromComments({content}), f);
  }
}

TEST(FeatureExtractorTest, PositiveCountsByHand) {
  FeatureExtractor extractor(&TinyModel());
  // Comment 1: 好评很好商品 -> P-count 2, N-count 0.
  // Comment 2: 差评商品 -> P-count 0, N-count 1.
  FeatureVector f =
      extractor.ExtractFromComments({"好评很好商品", "差评商品"});
  EXPECT_FLOAT_EQ(Get(f, FeatureId::kAveragePositiveNumber), 1.0f);  // (2+0)/2
  // |2-0|/2 + |0-1|/2 = 1.5.
  EXPECT_FLOAT_EQ(Get(f, FeatureId::kAveragePositiveNegativeNumber), 1.5f);
}

TEST(FeatureExtractorTest, LengthsCountWords) {
  FeatureExtractor extractor(&TinyModel());
  // 3 words and 2 words.
  FeatureVector f =
      extractor.ExtractFromComments({"好评很好商品", "差评商品"});
  EXPECT_FLOAT_EQ(Get(f, FeatureId::kAverageCommentLength), 2.5f);
  EXPECT_FLOAT_EQ(Get(f, FeatureId::kSumCommentLength), 5.0f);
}

TEST(FeatureExtractorTest, PunctuationCounted) {
  FeatureExtractor extractor(&TinyModel());
  FeatureVector f =
      extractor.ExtractFromComments({"好评！很好，商品。", "商品"});
  EXPECT_FLOAT_EQ(Get(f, FeatureId::kSumPunctuationNumber), 3.0f);
  // Comment1 ratio 3/9, comment2 ratio 0; average = 1/6.
  EXPECT_NEAR(Get(f, FeatureId::kAveragePunctuationRatio), 0.5 * (3.0 / 9.0),
              1e-6);
}

TEST(FeatureExtractorTest, UniqueWordRatioAcrossComments) {
  FeatureExtractor extractor(&TinyModel());
  // Tokens: {好评, 好评} + {好评, 商品} -> 2 unique / 4 total.
  FeatureVector f = extractor.ExtractFromComments({"好评好评", "好评商品"});
  EXPECT_FLOAT_EQ(Get(f, FeatureId::kUniqueWordRatio), 0.5f);
}

TEST(FeatureExtractorTest, EntropyZeroForRepeatedWord) {
  FeatureExtractor extractor(&TinyModel());
  FeatureVector f = extractor.ExtractFromComments({"好评好评好评"});
  EXPECT_FLOAT_EQ(Get(f, FeatureId::kAverageCommentEntropy), 0.0f);
  FeatureVector g = extractor.ExtractFromComments({"好评商品"});
  EXPECT_FLOAT_EQ(Get(g, FeatureId::kAverageCommentEntropy), 1.0f);
}

TEST(FeatureExtractorTest, NgramFeaturesByHand) {
  FeatureExtractor extractor(&TinyModel());
  // 好评很好商品: bigrams (好评,很好)+, (很好,商品)+ -> 2 positive bigrams.
  // 商品质量: bigram (商品,质量) -> 0.
  FeatureVector f =
      extractor.ExtractFromComments({"好评很好商品", "商品质量"});
  EXPECT_FLOAT_EQ(Get(f, FeatureId::kAverageNgramNumber), 1.0f);  // (2+0)/2
  // Paper ratio: sum_j count_j / (|C_i| * (|C_j|-1)) = 2/(2*2) + 0 = 0.5.
  EXPECT_FLOAT_EQ(Get(f, FeatureId::kAverageNgramRatio), 0.5f);
}

TEST(FeatureExtractorTest, SentimentAveraged) {
  FeatureExtractor extractor(&TinyModel());
  FeatureVector pos = extractor.ExtractFromComments({"好评很好"});
  FeatureVector neg = extractor.ExtractFromComments({"差评不行"});
  EXPECT_GT(Get(pos, FeatureId::kAverageSentiment), 0.7f);
  EXPECT_LT(Get(neg, FeatureId::kAverageSentiment), 0.3f);
}

TEST(FeatureExtractorTest, ParallelMatchesSerial) {
  const collect::DataStore& store = cats::TestStore();
  std::vector<collect::CollectedItem> items(store.items().begin(),
                                            store.items().begin() + 60);
  FeatureExtractorOptions serial_options;
  serial_options.num_threads = 1;
  FeatureExtractorOptions parallel_options;
  parallel_options.num_threads = 8;
  FeatureExtractor serial(&cats::TestSemanticModel(), serial_options);
  FeatureExtractor parallel(&cats::TestSemanticModel(), parallel_options);
  auto a = serial.ExtractAll(items);
  auto b = parallel.ExtractAll(items);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t f = 0; f < kNumFeatures; ++f) {
      EXPECT_FLOAT_EQ(a[i][f], b[i][f]) << i << "," << f;
    }
  }
}

TEST(FeatureExtractorTest, FraudItemsSeparateFromNormalInAggregate) {
  // The headline property: feature means differ between fraud and normal
  // items in the simulated platform.
  const auto& market = cats::TestMarketplace();
  const collect::DataStore& store = cats::TestStore();
  FeatureExtractor extractor(&cats::TestSemanticModel());
  RunningStats fraud_pos, normal_pos, fraud_sent, normal_sent, fraud_len,
      normal_len;
  auto features = extractor.ExtractAll(store.items());
  for (size_t i = 0; i < store.items().size(); ++i) {
    bool fraud = market.IsFraudItem(store.items()[i].item.item_id);
    if (store.items()[i].comments.empty()) continue;
    (fraud ? fraud_pos : normal_pos)
        .Add(Get(features[i], FeatureId::kAveragePositiveNumber));
    (fraud ? fraud_sent : normal_sent)
        .Add(Get(features[i], FeatureId::kAverageSentiment));
    (fraud ? fraud_len : normal_len)
        .Add(Get(features[i], FeatureId::kAverageCommentLength));
  }
  EXPECT_GT(fraud_pos.mean(), normal_pos.mean());
  EXPECT_GT(fraud_sent.mean(), normal_sent.mean());
  EXPECT_GT(fraud_len.mean(), normal_len.mean());
}

TEST(FeatureExtractorTest, BuildDatasetAlignsLabels) {
  const collect::DataStore& store = cats::TestStore();
  std::vector<collect::CollectedItem> items(store.items().begin(),
                                            store.items().begin() + 30);
  std::vector<int> labels(30, 0);
  labels[3] = 1;
  FeatureExtractor extractor(&cats::TestSemanticModel());
  auto dataset = extractor.BuildDataset(items, labels);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_rows(), 30u);
  EXPECT_EQ(dataset->num_features(), kNumFeatures);
  EXPECT_EQ(dataset->Label(3), 1);
  EXPECT_EQ(dataset->feature_names()[0], "averagePositiveNumber");
}

TEST(FeatureExtractorTest, BuildDatasetSizeMismatchFails) {
  FeatureExtractor extractor(&TinyModel());
  std::vector<collect::CollectedItem> items(2);
  std::vector<int> labels(3, 0);
  EXPECT_FALSE(extractor.BuildDataset(items, labels).ok());
}

TEST(FeatureDefTest, NamesMatchPaperTableTwo) {
  EXPECT_EQ(kNumFeatures, 11u);
  EXPECT_EQ(FeatureName(FeatureId::kAveragePositiveNumber),
            "averagePositiveNumber");
  EXPECT_EQ(FeatureName(FeatureId::kAveragePositiveNegativeNumber),
            "averagePositive/NegativeNumber");
  EXPECT_EQ(FeatureName(FeatureId::kAverageNgramRatio), "averageNgramRatio");
}

}  // namespace
}  // namespace cats::core
