// Property sweeps over the feature extractor: algebraic invariants of the
// 11 Table-II features that must hold for ANY comment set, checked across
// a parameterized family of generated comment bundles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/feature_extractor.h"
#include "platform/comment_generator.h"
#include "platform_test_util.h"

namespace cats::core {
namespace {

float Get(const FeatureVector& f, FeatureId id) {
  return f[static_cast<size_t>(id)];
}

/// One generated comment bundle: seed + composition knobs.
struct BundleCase {
  uint64_t seed;
  size_t benign;
  size_t spam;
  double quality;
};

class FeaturePropertyTest : public ::testing::TestWithParam<BundleCase> {
 protected:
  static std::vector<std::string> MakeBundle(const BundleCase& params) {
    platform::CommentGenerator generator(&cats::TestLanguage());
    Rng rng(params.seed);
    std::vector<std::string> comments;
    for (size_t i = 0; i < params.benign; ++i) {
      comments.push_back(generator.GenerateBenign(params.quality, &rng));
    }
    if (params.spam > 0) {
      auto tmpl = generator.GenerateSpamTemplate(&rng);
      for (size_t i = 0; i < params.spam; ++i) {
        comments.push_back(generator.GenerateSpamFromTemplate(tmpl, &rng));
      }
    }
    return comments;
  }

  static FeatureVector Extract(const std::vector<std::string>& comments) {
    FeatureExtractor extractor(&cats::TestSemanticModel());
    return extractor.ExtractFromComments(comments);
  }
};

TEST_P(FeaturePropertyTest, AllFeaturesFiniteAndRatiosBounded) {
  FeatureVector f = Extract(MakeBundle(GetParam()));
  for (float v : f) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);  // every Table-II feature is non-negative
  }
  EXPECT_LE(Get(f, FeatureId::kUniqueWordRatio), 1.0f);
  EXPECT_LE(Get(f, FeatureId::kAverageSentiment), 1.0f);
  EXPECT_LE(Get(f, FeatureId::kAveragePunctuationRatio), 1.0f);
  EXPECT_LE(Get(f, FeatureId::kAverageNgramRatio), 1.0f + 1e-6f);
}

TEST_P(FeaturePropertyTest, PermutationInvariant) {
  std::vector<std::string> comments = MakeBundle(GetParam());
  FeatureVector a = Extract(comments);
  std::reverse(comments.begin(), comments.end());
  FeatureVector b = Extract(comments);
  for (size_t i = 0; i < kNumFeatures; ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]) << core::kFeatureNames[i];
  }
}

TEST_P(FeaturePropertyTest, DuplicationScalesSumsKeepsAverages) {
  std::vector<std::string> comments = MakeBundle(GetParam());
  FeatureVector once = Extract(comments);
  std::vector<std::string> twice = comments;
  twice.insert(twice.end(), comments.begin(), comments.end());
  FeatureVector doubled = Extract(twice);

  // Sum features double.
  EXPECT_NEAR(Get(doubled, FeatureId::kSumCommentLength),
              2.0f * Get(once, FeatureId::kSumCommentLength),
              Get(once, FeatureId::kSumCommentLength) * 1e-4 + 1e-3);
  EXPECT_NEAR(Get(doubled, FeatureId::kSumPunctuationNumber),
              2.0f * Get(once, FeatureId::kSumPunctuationNumber),
              Get(once, FeatureId::kSumPunctuationNumber) * 1e-4 + 1e-3);
  // Per-comment averages are unchanged.
  for (FeatureId id : {FeatureId::kAveragePositiveNumber,
                       FeatureId::kAveragePositiveNegativeNumber,
                       FeatureId::kAverageSentiment,
                       FeatureId::kAverageCommentEntropy,
                       FeatureId::kAverageCommentLength,
                       FeatureId::kAveragePunctuationRatio,
                       FeatureId::kAverageNgramNumber}) {
    EXPECT_NEAR(Get(doubled, id), Get(once, id),
                std::abs(Get(once, id)) * 1e-4 + 1e-4)
        << core::FeatureName(id);
  }
  // uniqueWordRatio halves-or-less never rises under duplication.
  EXPECT_LE(Get(doubled, FeatureId::kUniqueWordRatio),
            Get(once, FeatureId::kUniqueWordRatio) + 1e-6);
}

TEST_P(FeaturePropertyTest, SumsConsistentWithAverages) {
  std::vector<std::string> comments = MakeBundle(GetParam());
  FeatureVector f = Extract(comments);
  double n = static_cast<double>(comments.size());
  EXPECT_NEAR(Get(f, FeatureId::kSumCommentLength),
              Get(f, FeatureId::kAverageCommentLength) * n,
              Get(f, FeatureId::kSumCommentLength) * 1e-4 + 1e-2);
}

TEST_P(FeaturePropertyTest, AddingPureSpamRaisesPromotionSignals) {
  // The direction only holds for organic-dominant baselines; a pure-spam
  // or single-comment bundle can already sit above the spam average.
  if (GetParam().spam > 0 || GetParam().benign < 5) {
    GTEST_SKIP() << "baseline is not organic-dominant";
  }
  std::vector<std::string> comments = MakeBundle(GetParam());
  FeatureVector before = Extract(comments);

  platform::CommentGenerator generator(&cats::TestLanguage());
  Rng rng(GetParam().seed ^ 0xABCD);
  auto tmpl = generator.GenerateSpamTemplate(&rng);
  for (int i = 0; i < 10; ++i) {
    comments.push_back(generator.GenerateSpamFromTemplate(tmpl, &rng));
  }
  FeatureVector after = Extract(comments);
  EXPECT_GT(Get(after, FeatureId::kAveragePositiveNumber),
            Get(before, FeatureId::kAveragePositiveNumber));
  EXPECT_GT(Get(after, FeatureId::kAverageCommentLength),
            Get(before, FeatureId::kAverageCommentLength));
}

INSTANTIATE_TEST_SUITE_P(
    Bundles, FeaturePropertyTest,
    ::testing::Values(BundleCase{1, 5, 0, 0.2},
                      BundleCase{2, 20, 0, 0.8},
                      BundleCase{3, 10, 5, 0.5},
                      BundleCase{4, 1, 0, 0.9},
                      BundleCase{5, 0, 8, 0.5},
                      BundleCase{6, 40, 15, 0.65}),
    [](const ::testing::TestParamInfo<BundleCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_b" +
             std::to_string(info.param.benign) + "_s" +
             std::to_string(info.param.spam);
    });

}  // namespace
}  // namespace cats::core
