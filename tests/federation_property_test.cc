// Seed-reproducibility and heterogeneity properties across the built-in
// platform presets: the same (preset, seed) must reproduce its crawl byte
// for byte, and different presets must differ on the wire itself — schema
// field names and envelope shape, not just sampled values.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "federate/federation.h"
#include "platform/api.h"
#include "platform_test_util.h"

namespace cats {
namespace {

std::string ReadFileOrDie(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  CATS_CHECK(in.good());
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Crawls one built-in platform and saves its store under a fresh dir.
std::filesystem::path CrawlAndSave(const std::string& platform_name,
                                   uint64_t seed, const std::string& tag) {
  auto spec = platform::BuiltinPlatform(platform_name, 0.002);
  CATS_CHECK(spec.ok());
  federate::ShardConfig shard;
  shard.spec = *std::move(spec);
  if (seed != 0) shard.spec.market.seed = seed;
  federate::FederationReport report = federate::CrawlFederation(
      {shard}, TestLanguage(), /*parallel=*/false);
  CATS_CHECK(report.all_ok());
  auto dir = std::filesystem::temp_directory_path() /
             ("cats_fedprop_" + platform_name + "_" + tag + "_" +
              std::to_string(static_cast<unsigned long>(::getpid())));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  CATS_CHECK(report.shards[0].store.SaveJsonl(dir.string()).ok());
  return dir;
}

TEST(FederationPropertyTest, SameSeedSamePresetIsByteIdentical) {
  for (const std::string& name : platform::BuiltinPlatformNames()) {
    SCOPED_TRACE(name);
    auto dir_a = CrawlAndSave(name, 0xFEED, "a");
    auto dir_b = CrawlAndSave(name, 0xFEED, "b");
    for (const char* file :
         {"shops.jsonl", "items.jsonl", "comments.jsonl"}) {
      EXPECT_EQ(ReadFileOrDie(dir_a / file), ReadFileOrDie(dir_b / file))
          << file;
    }
    std::filesystem::remove_all(dir_a);
    std::filesystem::remove_all(dir_b);
  }
}

TEST(FederationPropertyTest, DifferentSeedsDiverge) {
  auto dir_a = CrawlAndSave("taobao", 0xFEED, "s1");
  auto dir_b = CrawlAndSave("taobao", 0xBEEF, "s2");
  EXPECT_NE(ReadFileOrDie(dir_a / "comments.jsonl"),
            ReadFileOrDie(dir_b / "comments.jsonl"));
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(FederationPropertyTest, PresetsDifferOnTheWireNotJustBySeed) {
  // Fetch each platform's first shops page through its own API and check
  // the raw bodies are structurally different documents: different
  // envelope keys and different record field names.
  std::vector<std::string> bodies;
  for (const std::string& name : platform::BuiltinPlatformNames()) {
    auto spec = platform::BuiltinPlatform(name, 0.002);
    ASSERT_TRUE(spec.ok());
    platform::Marketplace market =
        platform::Marketplace::Generate(spec->market, &TestLanguage());
    platform::ApiOptions options;
    options.profile = spec->profile;
    options.faults = fault::FaultProfile::None();
    platform::MarketplaceApi api(&market, options);
    auto body = api.Get(spec->profile.ShopsRoute() +
                        spec->profile.PageQuery(0, options.page_size));
    ASSERT_TRUE(body.ok()) << name;
    bodies.push_back(*body);
  }
  ASSERT_EQ(bodies.size(), 3u);
  // Canonical taobao speaks Listing 2; the others must not.
  EXPECT_NE(bodies[0].find("\"shop_id\""), std::string::npos);
  EXPECT_NE(bodies[0].find("\"total_pages\""), std::string::npos);
  for (size_t i = 1; i < bodies.size(); ++i) {
    EXPECT_EQ(bodies[i].find("\"shop_id\""), std::string::npos) << i;
    EXPECT_EQ(bodies[i].find("\"total_pages\""), std::string::npos) << i;
  }
  // jademall nests under a status wrapper; bazaar chains cursors.
  EXPECT_NE(bodies[1].find("\"sellerId\""), std::string::npos);
  EXPECT_NE(bodies[1].find("\"result\""), std::string::npos);
  EXPECT_NE(bodies[2].find("\"vendor_ref\""), std::string::npos);
  EXPECT_NE(bodies[2].find("\"next_cursor\""), std::string::npos);
}

}  // namespace
}  // namespace cats
