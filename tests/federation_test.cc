// Federation smoke (ctest label `federation_smoke`): three structurally
// heterogeneous platforms crawled by federated shards, normalized into one
// detection plane, and pushed through the full transfer evaluation — the
// mini version of what `cats_cli transfer-eval` commits as
// BENCH_federation.json.

#include "federate/federation.h"

#include <gtest/gtest.h>

#include <set>

#include "federate/transfer_eval.h"
#include "platform_test_util.h"

namespace cats {
namespace {

using federate::CrawlFederation;
using federate::FederationReport;
using federate::MergedFederation;
using federate::MergeShards;
using federate::ShardConfig;

FederationReport CrawlBuiltins(double scale) {
  auto shards = federate::BuiltinShards(platform::BuiltinPlatformNames(),
                                        scale);
  CATS_CHECK(shards.ok());
  return CrawlFederation(*shards, TestLanguage(), /*parallel=*/true);
}

TEST(FederationTest, ThreeShardCrawlBanksEveryPlatformExactly) {
  FederationReport report = CrawlBuiltins(0.002);
  ASSERT_EQ(report.shards.size(), 3u);
  ASSERT_TRUE(report.all_ok());
  for (const federate::ShardReport& shard : report.shards) {
    SCOPED_TRACE(shard.platform_id);
    // Exact per-platform accounting: transport faults (429s, 5xx bursts,
    // truncated bodies, stale pagination) delay the crawl but never lose
    // records — every public shop and item on the platform is banked.
    EXPECT_EQ(shard.store.shops().size(), shard.truth_shops);
    EXPECT_EQ(shard.store.items().size(), shard.truth_items);
    EXPECT_GT(shard.store.num_comments(), 0u);
    EXPECT_TRUE(shard.checkpoint.complete);
    // Labels cover the whole crawl and contain both classes.
    size_t fraud = 0;
    for (const collect::CollectedItem& ci : shard.store.items()) {
      auto it = shard.labels.find(ci.item.item_id);
      ASSERT_NE(it, shard.labels.end());
      fraud += it->second;
    }
    EXPECT_EQ(fraud, shard.truth_fraud_items);
    EXPECT_GT(fraud, 0u);
    EXPECT_LT(fraud, shard.store.items().size());
  }
}

TEST(FederationTest, ParallelAndSequentialCrawlsAgree) {
  auto shards = federate::BuiltinShards(platform::BuiltinPlatformNames(),
                                        0.002);
  ASSERT_TRUE(shards.ok());
  FederationReport parallel =
      CrawlFederation(*shards, TestLanguage(), /*parallel=*/true);
  FederationReport sequential =
      CrawlFederation(*shards, TestLanguage(), /*parallel=*/false);
  ASSERT_TRUE(parallel.all_ok());
  ASSERT_TRUE(sequential.all_ok());
  for (size_t i = 0; i < parallel.shards.size(); ++i) {
    EXPECT_EQ(parallel.shards[i].store.items().size(),
              sequential.shards[i].store.items().size());
    EXPECT_EQ(parallel.shards[i].store.num_comments(),
              sequential.shards[i].store.num_comments());
    EXPECT_EQ(parallel.shards[i].stats.requests,
              sequential.shards[i].stats.requests);
  }
}

TEST(FederationTest, MergeNamespacesIdsAcrossPlatforms) {
  FederationReport report = CrawlBuiltins(0.002);
  ASSERT_TRUE(report.all_ok());
  MergedFederation merged = MergeShards(report);
  size_t expected = 0;
  for (const federate::ShardReport& s : report.shards) {
    expected += s.store.items().size();
  }
  ASSERT_EQ(merged.items.size(), expected);
  ASSERT_EQ(merged.labels.size(), expected);
  ASSERT_EQ(merged.shard_of.size(), expected);

  std::set<uint64_t> item_ids, comment_ids;
  for (size_t i = 0; i < merged.items.size(); ++i) {
    const collect::CollectedItem& ci = merged.items[i];
    // Ids are unique across the whole federation, and the namespace
    // stride recovers the owning shard.
    EXPECT_TRUE(item_ids.insert(ci.item.item_id).second);
    EXPECT_EQ(ci.item.item_id / federate::kFederationIdStride,
              merged.shard_of[i] + 1);
    for (const collect::CommentRecord& c : ci.comments) {
      EXPECT_TRUE(comment_ids.insert(c.comment_id).second);
      EXPECT_EQ(c.item_id, ci.item.item_id);
    }
  }
}

TEST(FederationTest, TransferEvalProducesFullAucMatrix) {
  federate::TransferEvalOptions options;
  options.scale = 0.002;
  auto report = federate::RunTransferEval(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const size_t n = report->platforms.size();
  ASSERT_EQ(n, 3u);
  ASSERT_EQ(report->cells.size(), n * n);
  for (const federate::TransferCell& cell : report->cells) {
    SCOPED_TRACE(cell.train_platform + " -> " + cell.eval_platform);
    EXPECT_GE(cell.auc, 0.0);
    EXPECT_LE(cell.auc, 1.0);
    EXPECT_GT(cell.items, 0u);
  }
  // In-platform detection is strong; transfer stays far above chance (the
  // paper's §VII premise — the semantic features carry across platforms).
  EXPECT_GT(report->MinInPlatformAuc(), 0.9);
  EXPECT_GT(report->MinCrossAuc(), 0.6);
  EXPECT_LT(report->MaxDegradation(), 0.4);

  // The benchmark document has the shape perf_gate.py --federation gates.
  JsonValue doc = report->ToJson();
  auto bench = doc.GetString("bench");
  ASSERT_TRUE(bench.ok());
  EXPECT_EQ(*bench, "federation_transfer");
  const JsonValue* matrix = doc.Get("matrix");
  ASSERT_NE(matrix, nullptr);
  EXPECT_EQ(matrix->size(), n * n);
  const JsonValue* summary = doc.Get("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_TRUE(summary->Get("min_in_platform_auc") != nullptr);
  EXPECT_TRUE(summary->Get("min_cross_platform_auc") != nullptr);
  EXPECT_TRUE(summary->Get("max_transfer_degradation") != nullptr);
}

}  // namespace
}  // namespace cats
