// Deterministic fuzz tests: feed seeded random garbage into every parser
// and decoder that consumes untrusted bytes (the crawler's input surface).
// The property is totality — no crash, no hang, no out-of-bounds — plus
// round-trip consistency for accepted inputs.

#include <gtest/gtest.h>

#include <string>

#include "collect/record.h"
#include "text/segmenter.h"
#include "text/utf8.h"
#include "util/json.h"
#include "util/random.h"

namespace cats {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->UniformU32(static_cast<uint32_t>(max_len + 1));
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng->UniformU32(256));
  return out;
}

/// Random bytes biased toward JSON punctuation so the parser gets deeper.
std::string RandomJsonish(Rng* rng, size_t max_len) {
  static const char kAlphabet[] = "{}[]\",:0123456789.eE+-truefalsnl \t\n";
  size_t len = rng->UniformU32(static_cast<uint32_t>(max_len + 1));
  std::string out(len, '\0');
  for (char& c : out) {
    c = rng->Bernoulli(0.9)
            ? kAlphabet[rng->UniformU32(sizeof(kAlphabet) - 1)]
            : static_cast<char>(rng->UniformU32(256));
  }
  return out;
}

TEST(JsonFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF022);
  for (int i = 0; i < 20000; ++i) {
    std::string input = RandomBytes(&rng, 64);
    auto result = JsonValue::Parse(input);
    if (result.ok()) {
      // Accepted input must serialize and reparse cleanly.
      auto again = JsonValue::Parse(result->Serialize());
      EXPECT_TRUE(again.ok()) << input;
    }
  }
}

TEST(JsonFuzzTest, JsonishBytesNeverCrash) {
  Rng rng(0xF023);
  size_t accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    std::string input = RandomJsonish(&rng, 48);
    auto result = JsonValue::Parse(input);
    if (result.ok()) {
      ++accepted;
      auto again = JsonValue::Parse(result->Serialize());
      EXPECT_TRUE(again.ok()) << input;
    }
  }
  // The biased alphabet should produce some valid documents (numbers at
  // minimum) — otherwise the fuzzer is not exercising the accept path.
  EXPECT_GT(accepted, 100u);
}

TEST(JsonFuzzTest, DeeplyNestedInputTerminates) {
  // 100k nested arrays: must parse (or reject) without stack overflow is
  // too strong for a recursive parser; cap at a depth that must work.
  std::string nested(2000, '[');
  nested += std::string(2000, ']');
  auto result = JsonValue::Parse(nested);
  EXPECT_TRUE(result.ok());
  std::string unbalanced(2000, '[');
  EXPECT_FALSE(JsonValue::Parse(unbalanced).ok());
}

TEST(Utf8FuzzTest, DecodeTotalAndBounded) {
  Rng rng(0xF024);
  for (int i = 0; i < 20000; ++i) {
    std::string input = RandomBytes(&rng, 64);
    std::vector<uint32_t> cps = text::DecodeString(input);
    EXPECT_LE(cps.size(), input.size());
    // Re-encoding the decoded sequence must itself round-trip exactly
    // (canonical form is a fixed point).
    std::string canonical = text::EncodeString(cps);
    EXPECT_EQ(text::DecodeString(canonical), cps);
  }
}

TEST(SegmenterFuzzTest, RandomInputNeverCrashesTokensCoverText) {
  Rng rng(0xF025);
  text::SegmentationDictionary dict;
  // Random dictionary of CJK words.
  for (int w = 0; w < 100; ++w) {
    std::string word;
    size_t len = 1 + rng.UniformU32(3);
    for (size_t k = 0; k < len; ++k) {
      text::AppendCodepoint(0x4E00 + rng.UniformU32(0x100), &word);
    }
    dict.AddWord(word);
  }
  text::Segmenter segmenter(&dict);
  for (int i = 0; i < 5000; ++i) {
    std::string input = RandomBytes(&rng, 48);
    std::vector<std::string> tokens = segmenter.Segment(input);
    size_t token_bytes = 0;
    for (const std::string& t : tokens) token_bytes += t.size();
    EXPECT_LE(token_bytes, input.size() * 3 + 3);  // U+FFFD re-slicing bound
  }
}

TEST(RecordFuzzTest, ParsersRejectGarbageGracefully) {
  Rng rng(0xF026);
  for (int i = 0; i < 5000; ++i) {
    std::string input = RandomJsonish(&rng, 64);
    auto doc = JsonValue::Parse(input);
    if (!doc.ok()) continue;
    // Whatever parsed, the record parsers must return Status, not crash.
    (void)collect::ParseShopRecord(*doc);
    (void)collect::ParseItemRecord(*doc);
    (void)collect::ParseCommentRecord(*doc);
    (void)collect::ParsePage(input);
  }
  SUCCEED();
}

TEST(PageFuzzTest, TruncatedRealPagesRejected) {
  // Take a well-formed page and truncate at every byte offset: all proper
  // prefixes must be rejected (or parse to a smaller valid doc), never
  // crash.
  std::string page =
      R"({"page":0,"total_pages":2,"data":[{"shop_id":"1","shop_url":"u","shop_name":"n"}]})";
  for (size_t cut = 0; cut < page.size(); ++cut) {
    auto result = collect::ParsePage(page.substr(0, cut));
    EXPECT_FALSE(result.ok()) << cut;
  }
  EXPECT_TRUE(collect::ParsePage(page).ok());
}

}  // namespace
}  // namespace cats
