// Deterministic fuzz tests: feed seeded random garbage into every parser
// and decoder that consumes untrusted bytes (the crawler's input surface).
// The property is totality — no crash, no hang, no out-of-bounds — plus
// round-trip consistency for accepted inputs.

#include <gtest/gtest.h>

#include <string>

#include "collect/record.h"
#include "fault/fault_plan.h"
#include "platform_test_util.h"
#include "text/id_segmenter.h"
#include "text/segmenter.h"
#include "text/token_ids.h"
#include "text/utf8.h"
#include "util/json.h"
#include "util/random.h"

namespace cats {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->UniformU32(static_cast<uint32_t>(max_len + 1));
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng->UniformU32(256));
  return out;
}

/// Random bytes biased toward JSON punctuation so the parser gets deeper.
std::string RandomJsonish(Rng* rng, size_t max_len) {
  static const char kAlphabet[] = "{}[]\",:0123456789.eE+-truefalsnl \t\n";
  size_t len = rng->UniformU32(static_cast<uint32_t>(max_len + 1));
  std::string out(len, '\0');
  for (char& c : out) {
    c = rng->Bernoulli(0.9)
            ? kAlphabet[rng->UniformU32(sizeof(kAlphabet) - 1)]
            : static_cast<char>(rng->UniformU32(256));
  }
  return out;
}

TEST(JsonFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF022);
  for (int i = 0; i < 20000; ++i) {
    std::string input = RandomBytes(&rng, 64);
    auto result = JsonValue::Parse(input);
    if (result.ok()) {
      // Accepted input must serialize and reparse cleanly.
      auto again = JsonValue::Parse(result->Serialize());
      EXPECT_TRUE(again.ok()) << input;
    }
  }
}

TEST(JsonFuzzTest, JsonishBytesNeverCrash) {
  Rng rng(0xF023);
  size_t accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    std::string input = RandomJsonish(&rng, 48);
    auto result = JsonValue::Parse(input);
    if (result.ok()) {
      ++accepted;
      auto again = JsonValue::Parse(result->Serialize());
      EXPECT_TRUE(again.ok()) << input;
    }
  }
  // The biased alphabet should produce some valid documents (numbers at
  // minimum) — otherwise the fuzzer is not exercising the accept path.
  EXPECT_GT(accepted, 100u);
}

TEST(JsonFuzzTest, DeeplyNestedInputTerminates) {
  // 100k nested arrays: must parse (or reject) without stack overflow is
  // too strong for a recursive parser; cap at a depth that must work.
  std::string nested(2000, '[');
  nested += std::string(2000, ']');
  auto result = JsonValue::Parse(nested);
  EXPECT_TRUE(result.ok());
  std::string unbalanced(2000, '[');
  EXPECT_FALSE(JsonValue::Parse(unbalanced).ok());
}

TEST(Utf8FuzzTest, DecodeTotalAndBounded) {
  Rng rng(0xF024);
  for (int i = 0; i < 20000; ++i) {
    std::string input = RandomBytes(&rng, 64);
    std::vector<uint32_t> cps = text::DecodeString(input);
    EXPECT_LE(cps.size(), input.size());
    // Re-encoding the decoded sequence must itself round-trip exactly
    // (canonical form is a fixed point).
    std::string canonical = text::EncodeString(cps);
    EXPECT_EQ(text::DecodeString(canonical), cps);
  }
}

TEST(SegmenterFuzzTest, RandomInputNeverCrashesTokensCoverText) {
  Rng rng(0xF025);
  text::SegmentationDictionary dict;
  // Random dictionary of CJK words.
  for (int w = 0; w < 100; ++w) {
    std::string word;
    size_t len = 1 + rng.UniformU32(3);
    for (size_t k = 0; k < len; ++k) {
      text::AppendCodepoint(0x4E00 + rng.UniformU32(0x100), &word);
    }
    dict.AddWord(word);
  }
  text::Segmenter segmenter(&dict);
  for (int i = 0; i < 5000; ++i) {
    std::string input = RandomBytes(&rng, 48);
    std::vector<std::string> tokens = segmenter.Segment(input);
    size_t token_bytes = 0;
    for (const std::string& t : tokens) token_bytes += t.size();
    EXPECT_LE(token_bytes, input.size() * 3 + 3);  // U+FFFD re-slicing bound
  }
}

/// Shared random dictionary for the differential fuzzers: CJK words with
/// heavy prefix overlap so longest-match decisions actually trigger.
text::SegmentationDictionary FuzzDictionary(Rng* rng,
                                            std::vector<std::string>* words) {
  text::SegmentationDictionary dict;
  for (int w = 0; w < 120; ++w) {
    std::string word;
    size_t len = 1 + rng->UniformU32(3);
    for (size_t k = 0; k < len; ++k) {
      text::AppendCodepoint(0x4E00 + rng->UniformU32(0x60), &word);
    }
    dict.AddWord(word);
    words->push_back(word);
  }
  return dict;
}

TEST(SegmenterFuzzTest, MutatedDictionaryWordsBothPathsAgree) {
  // The differential core of the token-id migration: assemble sentences
  // from dictionary words, then mutate random bytes (flips, deletions,
  // insertions) so UTF-8 breaks mid-sequence — the trie path must emit
  // exactly the legacy FMM token sequence, with no crash and no OOB.
  Rng rng(0xF029);
  std::vector<std::string> words;
  text::SegmentationDictionary dict = FuzzDictionary(&rng, &words);
  text::Segmenter legacy(&dict);
  text::IdSegmenter id_segmenter(dict);
  text::TokenArena arena;
  for (int i = 0; i < 3000; ++i) {
    std::string input;
    size_t count = 1 + rng.UniformU32(6);
    for (size_t k = 0; k < count; ++k) {
      input += words[rng.UniformU32(static_cast<uint32_t>(words.size()))];
    }
    const size_t mutations = rng.UniformU32(4);
    for (size_t m = 0; m < mutations && !input.empty(); ++m) {
      const uint32_t at =
          rng.UniformU32(static_cast<uint32_t>(input.size()));
      switch (rng.UniformU32(3)) {
        case 0:
          input[at] = static_cast<char>(rng.UniformU32(256));
          break;
        case 1:
          input.erase(at, 1);
          break;
        default:
          input.insert(at, 1, static_cast<char>(rng.UniformU32(256)));
          break;
      }
    }
    const std::vector<std::string> expected = legacy.Segment(input);
    arena.Reset();
    auto ids = id_segmenter.SegmentToIds(input, &arena);
    ASSERT_EQ(ids.size(), expected.size());
    for (size_t t = 0; t < ids.size(); ++t) {
      ASSERT_EQ(id_segmenter.TokenText(ids[t], arena), expected[t]);
    }
  }
}

TEST(SegmenterFuzzTest, TokensConcatenateBackToNonWhitespaceBytes) {
  // With punctuation and OOV emission both on, every non-whitespace byte
  // of the input lands in exactly one token, in order — for both paths.
  // (Dict matches and irregular slices reproduce their input bytes;
  // codepoint ids reproduce the canonical encoding, which IS the input
  // slice whenever the decoder accepted it.)
  Rng rng(0xF02B);
  std::vector<std::string> words;
  text::SegmentationDictionary dict = FuzzDictionary(&rng, &words);
  text::SegmenterOptions options;
  options.emit_punctuation = true;
  options.emit_oov_chars = true;
  text::Segmenter legacy(&dict, options);
  text::IdSegmenter id_segmenter(dict, options);
  text::TokenArena arena;
  for (int i = 0; i < 3000; ++i) {
    std::string input;
    if (rng.Bernoulli(0.5)) {
      input = RandomBytes(&rng, 48);
    } else {
      const size_t count = 1 + rng.UniformU32(5);
      for (size_t k = 0; k < count; ++k) {
        input +=
            words[rng.UniformU32(static_cast<uint32_t>(words.size()))];
        if (rng.Bernoulli(0.3)) input += " \t"[rng.UniformU32(2)];
      }
    }
    // Expected: the input with whitespace slices removed, under the same
    // decode sequence the segmenter uses.
    std::string expected;
    size_t pos = 0;
    while (pos < input.size()) {
      const size_t start = pos;
      const uint32_t cp = text::DecodeOne(input, &pos);
      if (cp == ' ' || cp == '\t' || cp == '\n' || cp == '\r' ||
          cp == 0x3000) {
        continue;
      }
      expected.append(input, start, pos - start);
    }
    std::string legacy_concat;
    for (const std::string& t : legacy.Segment(input)) legacy_concat += t;
    EXPECT_EQ(legacy_concat, expected);
    arena.Reset();
    std::string id_concat;
    for (uint32_t id : id_segmenter.SegmentToIds(input, &arena)) {
      id_segmenter.AppendTokenText(id, arena, &id_concat);
    }
    EXPECT_EQ(id_concat, expected);
  }
}

TEST(RecordFuzzTest, ParsersRejectGarbageGracefully) {
  Rng rng(0xF026);
  for (int i = 0; i < 5000; ++i) {
    std::string input = RandomJsonish(&rng, 64);
    auto doc = JsonValue::Parse(input);
    if (!doc.ok()) continue;
    // Whatever parsed, the record parsers must return Status, not crash.
    (void)collect::ParseShopRecord(*doc);
    (void)collect::ParseItemRecord(*doc);
    (void)collect::ParseCommentRecord(*doc);
    (void)collect::ParsePage(input);
  }
  SUCCEED();
}

// Corpus generated by the fault layer itself: every truncation/garbling of
// a well-formed synthetic page body must be rejected by ParsePage with an
// error Status — never a crash, never a silent accept. This is the property
// the chaos tests' exact-completeness invariant rests on.
TEST(PageFuzzTest, FaultLayerCorruptionsAlwaysRejected) {
  const std::string pages[] = {
      R"({"page":0,"total_pages":1,"data":[]})",
      R"({"page":3,"total_pages":9,"data":[{"shop_id":"1","shop_url":"u","shop_name":"n"}]})",
      R"({"page":1,"total_pages":2,"data":[{"item_id":"7","shop_id":"2","item_name":"x","price":1.5,"sales_volume":3,"category":"c"}]})",
  };
  Rng rng(0xF027);
  for (const std::string& page : pages) {
    ASSERT_TRUE(collect::ParsePage(page).ok());
    for (int i = 0; i < 2000; ++i) {
      fault::FaultDecision decision;
      decision.kind = rng.Bernoulli(0.5) ? fault::FaultKind::kTruncatedBody
                                         : fault::FaultKind::kGarbledBody;
      decision.corruption_seed = rng.NextU64();
      std::string corrupted = fault::CorruptBody(page, decision);
      auto result = collect::ParsePage(corrupted);
      EXPECT_FALSE(result.ok()) << corrupted;
    }
  }
}

// Same property against genuine API bodies from every route, which carry
// generated text (CJK content, URLs) rather than toy records.
TEST(PageFuzzTest, FaultLayerCorruptionsOfRealBodiesRejected) {
  platform::ApiOptions options;
  options.faults = fault::FaultProfile::None();
  platform::MarketplaceApi api(&TestMarketplace(), options);
  Rng rng(0xF028);
  for (const char* path :
       {"/shops?page=0", "/shops/0/items?page=0", "/shops/1/items?page=0"}) {
    auto body = api.Get(path);
    ASSERT_TRUE(body.ok());
    ASSERT_TRUE(collect::ParsePage(*body).ok());
    for (int i = 0; i < 1000; ++i) {
      fault::FaultDecision decision;
      decision.kind = rng.Bernoulli(0.5) ? fault::FaultKind::kTruncatedBody
                                         : fault::FaultKind::kGarbledBody;
      decision.corruption_seed = rng.NextU64();
      EXPECT_FALSE(collect::ParsePage(fault::CorruptBody(*body, decision)).ok());
    }
  }
}

TEST(PageFuzzTest, TruncatedRealPagesRejected) {
  // Take a well-formed page and truncate at every byte offset: all proper
  // prefixes must be rejected (or parse to a smaller valid doc), never
  // crash.
  std::string page =
      R"({"page":0,"total_pages":2,"data":[{"shop_id":"1","shop_url":"u","shop_name":"n"}]})";
  for (size_t cut = 0; cut < page.size(); ++cut) {
    auto result = collect::ParsePage(page.substr(0, cut));
    EXPECT_FALSE(result.ok()) << cut;
  }
  EXPECT_TRUE(collect::ParsePage(page).ok());
}

}  // namespace
}  // namespace cats
