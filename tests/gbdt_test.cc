#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numeric>

#include "ml_test_util.h"
#include "util/csv.h"

namespace cats::ml {
namespace {

GbdtOptions FastOptions() {
  GbdtOptions options;
  options.num_rounds = 40;
  options.max_depth = 3;
  options.learning_rate = 0.3f;
  return options;
}

TEST(GbdtTest, FitEmptyFails) {
  Gbdt model;
  Dataset empty({"x"});
  EXPECT_FALSE(model.Fit(empty).ok());
}

TEST(GbdtTest, InvalidBaseScoreFails) {
  GbdtOptions options;
  options.base_score = 1.5f;
  Gbdt model(options);
  Dataset data = MakeGaussianDataset(10, 2, 3.0, 1);
  EXPECT_FALSE(model.Fit(data).ok());
}

TEST(GbdtTest, SeparableDataHighAccuracy) {
  Dataset data = MakeGaussianDataset(300, 4, 4.0, 47);
  Gbdt model(FastOptions());
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(model, data), 0.98);
}

TEST(GbdtTest, SolvesXor) {
  Dataset data = MakeXorDataset(800, 53);
  Gbdt model(FastOptions());
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(model, data), 0.95);
}

TEST(GbdtTest, TrainingLossDecreasesMonotonically) {
  Dataset data = MakeGaussianDataset(200, 3, 2.0, 59);
  Gbdt model(FastOptions());
  ASSERT_TRUE(model.Fit(data).ok());
  const auto& curve = model.training_loss_curve();
  ASSERT_EQ(curve.size(), 40u);
  // Allow tiny numeric wiggle but require overall monotone descent.
  EXPECT_LT(curve.back(), curve.front() * 0.5);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-6) << i;
  }
}

TEST(GbdtTest, SplitCountsSumAndFavorInformativeFeature) {
  // Feature 0 carries the signal; features 1-2 are noise.
  Dataset data({"signal", "noise1", "noise2"});
  Rng rng(61);
  for (int i = 0; i < 600; ++i) {
    int label = i % 2;
    float x = static_cast<float>(rng.Normal(label * 4.0, 1.0));
    float n1 = static_cast<float>(rng.Normal(0.0, 1.0));
    float n2 = static_cast<float>(rng.Normal(0.0, 1.0));
    ASSERT_TRUE(data.AddRow({x, n1, n2}, label).ok());
  }
  // Pinned to exact greedy: the assertion is about split-count importance
  // semantics, and the histogram path's quantile thinning can shuffle a
  // handful of late overfitting splits between the noise features.
  GbdtOptions options = FastOptions();
  options.split_method = GbdtSplitMethod::kExact;
  Gbdt model(options);
  ASSERT_TRUE(model.Fit(data).ok());
  const auto& counts = model.feature_split_counts();
  ASSERT_EQ(counts.size(), 3u);
  uint64_t total = std::accumulate(counts.begin(), counts.end(), 0ull);
  EXPECT_GT(total, 0u);
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[2]);
  EXPECT_EQ(model.feature_names()[0], "signal");
}

TEST(GbdtTest, GammaPrunesSplits) {
  Dataset data = MakeGaussianDataset(200, 3, 1.0, 67);
  GbdtOptions loose = FastOptions();
  GbdtOptions strict = FastOptions();
  strict.gamma = 100.0f;  // essentially forbids splits
  Gbdt a(loose), b(strict);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  uint64_t splits_a = std::accumulate(a.feature_split_counts().begin(),
                                      a.feature_split_counts().end(), 0ull);
  uint64_t splits_b = std::accumulate(b.feature_split_counts().begin(),
                                      b.feature_split_counts().end(), 0ull);
  EXPECT_GT(splits_a, splits_b);
  EXPECT_EQ(splits_b, 0u);
}

TEST(GbdtTest, LambdaShrinksLeafMagnitude) {
  Dataset data = MakeGaussianDataset(100, 2, 4.0, 71);
  GbdtOptions small_l = FastOptions();
  small_l.num_rounds = 1;
  small_l.lambda = 0.01f;
  GbdtOptions big_l = small_l;
  big_l.lambda = 100.0f;
  Gbdt a(small_l), b(big_l);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  // Larger lambda -> margins closer to base (0).
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    ma += std::fabs(a.PredictMargin(data.Row(i)));
    mb += std::fabs(b.PredictMargin(data.Row(i)));
  }
  EXPECT_GT(ma, mb);
}

TEST(GbdtTest, SubsampleAndColsampleStillLearn) {
  GbdtOptions options = FastOptions();
  options.subsample = 0.6f;
  options.colsample = 0.5f;
  Dataset data = MakeGaussianDataset(300, 4, 4.0, 73);
  Gbdt model(options);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(model, data), 0.95);
}

TEST(GbdtTest, ProbaInUnitIntervalAndMonotoneWithMargin) {
  Dataset data = MakeGaussianDataset(100, 2, 3.0, 79);
  Gbdt model(FastOptions());
  ASSERT_TRUE(model.Fit(data).ok());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    double p = model.PredictProba(data.Row(i));
    double m = model.PredictMargin(data.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_EQ(p >= 0.5, m >= 0.0);
  }
}

TEST(GbdtTest, DeterministicForSeed) {
  Dataset data = MakeGaussianDataset(150, 3, 2.0, 83);
  Gbdt a(FastOptions()), b(FastOptions());
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(data.Row(i)), b.PredictProba(data.Row(i)));
  }
}

TEST(GbdtTest, SaveLoadRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "cats_gbdt_test.model")
          .string();
  Dataset data = MakeGaussianDataset(150, 3, 3.0, 89);
  Gbdt model(FastOptions());
  ASSERT_TRUE(model.Fit(data).ok());
  ASSERT_TRUE(model.Save(path).ok());

  auto loaded = Gbdt::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_trees(), model.num_trees());
  EXPECT_EQ(loaded->feature_names(), model.feature_names());
  EXPECT_EQ(loaded->feature_split_counts(), model.feature_split_counts());
  for (size_t i = 0; i < data.num_rows(); i += 7) {
    EXPECT_NEAR(loaded->PredictProba(data.Row(i)),
                model.PredictProba(data.Row(i)), 1e-6);
  }
  std::filesystem::remove(path);
}

TEST(GbdtTest, SaveUntrainedFails) {
  Gbdt model;
  EXPECT_FALSE(model.Save("/tmp/never.model").ok());
}

TEST(GbdtTest, LoadMissingFails) {
  EXPECT_FALSE(Gbdt::Load("/nonexistent/gbdt.model").ok());
}

class GbdtCorruptFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("cats_gbdt_corrupt_" + std::to_string(::getpid()) + ".model"))
                .string();
    Dataset data = MakeGaussianDataset(120, 3, 3.0, 17);
    Gbdt model(FastOptions());
    ASSERT_TRUE(model.Fit(data).ok());
    ASSERT_TRUE(model.Save(path_).ok());
    auto content = ReadFileToString(path_);
    ASSERT_TRUE(content.ok());
    clean_ = *content;
  }
  void TearDown() override { std::filesystem::remove(path_); }

  /// Writes `content` over the fixture and expects Load to reject it with a
  /// descriptive error naming the file.
  void ExpectRejected(const std::string& content, const char* why) {
    ASSERT_TRUE(WriteStringToFile(path_, content).ok());
    auto loaded = Gbdt::Load(path_);
    ASSERT_FALSE(loaded.ok()) << why;
    EXPECT_NE(loaded.status().message().find(path_), std::string::npos)
        << why << ": error must name the file: "
        << loaded.status().ToString();
  }

  std::string path_;
  std::string clean_;
};

TEST_F(GbdtCorruptFileTest, TruncationsAreRejected) {
  // Any mid-structure cut must fail to parse, never half-load.
  for (size_t keep : {clean_.size() / 4, clean_.size() / 2,
                      3 * clean_.size() / 4}) {
    ExpectRejected(clean_.substr(0, keep), "truncated");
  }
}

TEST_F(GbdtCorruptFileTest, TrailingGarbageIsRejected) {
  ExpectRejected(clean_ + "extra 1 2 3\n", "trailing garbage");
}

TEST_F(GbdtCorruptFileTest, FlippedMagicIsRejected) {
  std::string flipped = clean_;
  flipped[0] ^= 0x01;
  ExpectRejected(flipped, "bit-flipped magic");
}

TEST_F(GbdtCorruptFileTest, OutOfBoundsNodeIndicesAreRejected) {
  // A bit flip in a child index must never produce a model that walks
  // out of bounds (or loops) at predict time.
  ExpectRejected(
      "cats-gbdt-v1\n0.3 0 2 1\nf0\nf1\n0 0\n2\n0 0.5 5 6 0.1\n-1 0 -1 -1 "
      "0.2\n",
      "child index past the tree");
  // left <= id would make TreePredict revisit its own node forever.
  ExpectRejected(
      "cats-gbdt-v1\n0.3 0 2 1\nf0\nf1\n0 0\n2\n0 0.5 0 1 0.1\n-1 0 -1 -1 "
      "0.2\n",
      "self-referential child index");
  // Split feature past num_features.
  ExpectRejected(
      "cats-gbdt-v1\n0.3 0 2 1\nf0\nf1\n0 0\n3\n7 0.5 1 2 0.1\n-1 0 -1 -1 "
      "0.2\n-1 0 -1 -1 0.3\n",
      "feature index past num_features");
}

TEST_F(GbdtCorruptFileTest, NonFiniteValuesAreRejected) {
  ExpectRejected(
      "cats-gbdt-v1\n0.3 0 2 1\nf0\nf1\n0 0\n1\n-1 0 -1 -1 nan\n",
      "nan leaf value");
  ExpectRejected(
      "cats-gbdt-v1\ninf 0 2 1\nf0\nf1\n0 0\n1\n-1 0 -1 -1 0.1\n",
      "inf learning rate");
}

TEST_F(GbdtCorruptFileTest, ImplausibleCountsAreRejected) {
  // A flipped digit in a count must not drive a giant allocation.
  ExpectRejected("cats-gbdt-v1\n0.3 0 99999999 1\n", "huge feature count");
  ExpectRejected("cats-gbdt-v1\n0.3 0 2 0\nf0\nf1\n0 0\n", "zero trees");
}

// One quantized informative feature (snapped to a 0.5 grid, so it has few
// distinct values and well-separated candidate gains) plus constant
// padding features. With max_bins >= distinct values the histogram path
// sees exactly the exact-greedy candidate thresholds, and with a single
// splittable feature there are no cross-feature gain ties for
// summation-order ulps to flip.
Dataset MakeQuantizedDataset(size_t per_class, uint64_t seed) {
  Dataset data({"signal", "pad1", "pad2"});
  Rng rng(seed);
  for (size_t i = 0; i < per_class; ++i) {
    for (int label = 0; label < 2; ++label) {
      double v = rng.Normal(label * 3.0, 1.0);
      float q = 0.5f * std::round(static_cast<float>(v) * 2.0f);
      (void)data.AddRow({q, 1.0f, -2.0f}, label);
    }
  }
  return data;
}

GbdtOptions HistOptions(size_t threads) {
  GbdtOptions options = FastOptions();
  options.split_method = GbdtSplitMethod::kHistogram;
  options.num_threads = threads;
  return options;
}

TEST(GbdtTest, HistogramReproducesExactGreedyWhenBinsCoverValues) {
  Dataset data = MakeQuantizedDataset(150, 101);
  GbdtOptions exact = FastOptions();
  exact.split_method = GbdtSplitMethod::kExact;
  GbdtOptions hist = HistOptions(1);
  hist.max_bins = 256;  // >= distinct values per feature
  Gbdt a(exact), b(hist);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  EXPECT_EQ(a.num_trees(), b.num_trees());
  EXPECT_EQ(a.feature_split_counts(), b.feature_split_counts());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_NEAR(a.PredictProba(data.Row(i)), b.PredictProba(data.Row(i)),
                1e-12)
        << i;
  }
}

TEST(GbdtTest, HistogramLearnsOnContinuousData) {
  // Thinned quantile bins (distinct >> max_bins) still learn the task.
  Dataset data = MakeGaussianDataset(300, 4, 4.0, 103);
  GbdtOptions options = HistOptions(2);
  options.max_bins = 32;
  Gbdt model(options);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(model, data), 0.98);
  EXPECT_FALSE(model.bin_mapper().empty());
}

TEST(GbdtTest, HistogramBitDeterministicAcrossThreadCounts) {
  Dataset data = MakeGaussianDataset(200, 4, 2.0, 107);
  std::vector<std::string> saved;
  for (size_t threads : {1u, 2u, 8u}) {
    GbdtOptions options = HistOptions(threads);
    options.subsample = 0.7f;  // exercise the shared rng path too
    options.colsample = 0.8f;
    Gbdt model(options);
    ASSERT_TRUE(model.Fit(data).ok()) << threads;
    std::string path = (std::filesystem::temp_directory_path() /
                        ("cats_gbdt_det_" + std::to_string(::getpid()) + "_" +
                         std::to_string(threads) + ".model"))
                           .string();
    ASSERT_TRUE(model.Save(path).ok());
    auto content = ReadFileToString(path);
    ASSERT_TRUE(content.ok());
    saved.push_back(*content);
    std::filesystem::remove(path);
  }
  // The serialized model (trees, thresholds, leaf values, bin boundaries)
  // is byte-identical for any worker count.
  EXPECT_EQ(saved[0], saved[1]);
  EXPECT_EQ(saved[0], saved[2]);
}

TEST(GbdtTest, PredictBatchMatchesPerRow) {
  Dataset data = MakeGaussianDataset(200, 3, 3.0, 109);  // 400 rows:
  // enough to cross the batch-parallel threshold, so this exercises the
  // pooled path against the serial per-row reference.
  Gbdt model(HistOptions(4));
  ASSERT_TRUE(model.Fit(data).ok());
  auto batch = model.PredictBatch(data);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ((*batch)[i], model.PredictProba(data.Row(i))) << i;
  }
  // The Classifier-level batch entry points agree too.
  std::vector<double> all = model.PredictProbaAll(data);
  EXPECT_EQ(all, *batch);
}

TEST(GbdtTest, PredictBatchValidatesInput) {
  Gbdt untrained;
  Dataset data = MakeGaussianDataset(10, 3, 3.0, 113);
  EXPECT_FALSE(untrained.PredictBatch(data).ok());

  Gbdt model(HistOptions(1));
  ASSERT_TRUE(model.Fit(data).ok());
  Dataset wrong = MakeGaussianDataset(10, 2, 3.0, 113);
  EXPECT_FALSE(model.PredictBatch(wrong).ok());

  Dataset empty({"f0", "f1", "f2"});
  auto result = model.PredictBatch(empty);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(GbdtTest, SaveLoadRoundTripPersistsBinMapper) {
  std::string path =
      (std::filesystem::temp_directory_path() / "cats_gbdt_bins.model")
          .string();
  Dataset data = MakeGaussianDataset(150, 3, 3.0, 127);
  Gbdt model(HistOptions(1));
  ASSERT_TRUE(model.Fit(data).ok());
  ASSERT_FALSE(model.bin_mapper().empty());
  ASSERT_TRUE(model.Save(path).ok());

  auto loaded = Gbdt::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->bin_mapper() == model.bin_mapper());
  // Save -> Load -> Save is byte-identical (%.9g/%.17g round-trip).
  auto first = ReadFileToString(path);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(loaded->Save(path).ok());
  auto second = ReadFileToString(path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  std::filesystem::remove(path);
}

TEST(GbdtTest, ExactModelSavesWithoutBins) {
  std::string path =
      (std::filesystem::temp_directory_path() / "cats_gbdt_nobins.model")
          .string();
  Dataset data = MakeGaussianDataset(100, 2, 3.0, 131);
  GbdtOptions options = FastOptions();
  options.split_method = GbdtSplitMethod::kExact;
  Gbdt model(options);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_TRUE(model.bin_mapper().empty());
  ASSERT_TRUE(model.Save(path).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content->find("nobins"), std::string::npos);
  auto loaded = Gbdt::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->bin_mapper().empty());
  std::filesystem::remove(path);
}

TEST_F(GbdtCorruptFileTest, LegacyV1ModelStillLoads) {
  // Pre-histogram artifacts carry no bin section and must keep loading.
  ASSERT_TRUE(
      WriteStringToFile(
          path_,
          "cats-gbdt-v1\n0.3 0 2 1\nf0\nf1\n0 0\n1\n-1 0 -1 -1 0.2\n")
          .ok());
  auto loaded = Gbdt::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->bin_mapper().empty());
}

TEST_F(GbdtCorruptFileTest, V2BinSectionVariants) {
  const std::string base =
      "cats-gbdt-v2\n0.3 0 2 1\nf0\nf1\n0 0\n1\n-1 0 -1 -1 0.2\n";
  // Valid: explicit nobins marker.
  ASSERT_TRUE(WriteStringToFile(path_, base + "nobins\n").ok());
  ASSERT_TRUE(Gbdt::Load(path_).ok());
  // Valid: a well-formed bins section round-trips.
  ASSERT_TRUE(
      WriteStringToFile(path_, base + "bins 2\n1 0.5\n1 0.25\n").ok());
  auto loaded = Gbdt::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->bin_mapper().num_features(), 2u);
  EXPECT_EQ(loaded->bin_mapper().num_bins(0), 1u);

  // Corruptions: every malformed bin section is rejected with an error
  // naming the file.
  ExpectRejected(base, "bin section missing entirely");
  ExpectRejected(base + "bogus\n", "unknown bin section tag");
  ExpectRejected(base + "bins 3\n1 0.5\n1 0.25\n1 0.75\n",
                 "bin feature count mismatch");
  ExpectRejected(base + "bins 2\n300 0.5\n1 0.25\n",
                 "bin count past uint8");
  ExpectRejected(base + "bins 2\n2 0.5\n", "truncated bin boundaries");
  ExpectRejected(base + "bins 2\n1 nan\n1 0.25\n", "non-finite boundary");
  ExpectRejected(base + "bins 2\n2 0.5 0.25\n1 0.1\n",
                 "non-increasing boundaries");
  ExpectRejected(base + "bins 2\n1 0.5\n1 0.25\nextra\n",
                 "trailing garbage after bins");
}

TEST(GbdtTest, MinChildWeightLimitsSplits) {
  Dataset data = MakeGaussianDataset(50, 2, 2.0, 97);
  GbdtOptions options = FastOptions();
  options.min_child_weight = 1e6f;  // unreachable
  Gbdt model(options);
  ASSERT_TRUE(model.Fit(data).ok());
  uint64_t splits =
      std::accumulate(model.feature_split_counts().begin(),
                      model.feature_split_counts().end(), 0ull);
  EXPECT_EQ(splits, 0u);
}

}  // namespace
}  // namespace cats::ml
