#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cats {
namespace {

TEST(HistogramTest, BinningBasics) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bin 0
  h.Add(5.5);   // bin 5
  h.Add(9.99);  // bin 9
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(HistogramTest, ExactUpperBoundGoesToLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.Add(1.0);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  Histogram h(0.0, 2.0, 8);
  for (int i = 0; i < 1000; ++i) h.Add(i % 7 * 0.25);
  double integral = 0.0;
  double width = 2.0 / 8;
  for (size_t b = 0; b < h.num_bins(); ++b) integral += h.Density(b) * width;
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(HistogramTest, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 5);
  for (int i = 0; i < 100; ++i) h.Add(i / 100.0);
  double sum = 0.0;
  for (size_t b = 0; b < h.num_bins(); ++b) sum += h.Fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, CdfMonotoneEndsAtOne) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 500; ++i) h.Add((i % 100) / 100.0);
  double prev = 0.0;
  for (size_t b = 0; b < h.num_bins(); ++b) {
    double c = h.CdfAt(b);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(h.CdfAt(h.num_bins() - 1), 1.0, 1e-12);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(h.BinCenter(9), 9.5);
}

TEST(HistogramTest, EmptyDensityZero) {
  Histogram h(0.0, 1.0, 4);
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(h.Density(b), 0.0);
    EXPECT_EQ(h.Fraction(b), 0.0);
    EXPECT_EQ(h.CdfAt(b), 0.0);
  }
}

TEST(HistogramTest, AsciiChartHasOneRowPerBin) {
  Histogram h(0.0, 1.0, 6);
  for (int i = 0; i < 60; ++i) h.Add(i / 60.0);
  std::string chart = h.ToAsciiChart();
  size_t rows = 0;
  for (char c : chart) {
    if (c == '\n') ++rows;
  }
  EXPECT_EQ(rows, 6u);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(HistogramTest, ComparisonChartRendersBothSeries) {
  Histogram a(0.0, 1.0, 4), b(0.0, 1.0, 4);
  a.Add(0.1);
  b.Add(0.9);
  std::string chart = Histogram::ToAsciiComparison(a, b, "fraud", "normal");
  EXPECT_NE(chart.find("fraud"), std::string::npos);
  EXPECT_NE(chart.find("normal"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(HistogramTest, AddAll) {
  Histogram h(0.0, 1.0, 2);
  h.AddAll({0.1, 0.2, 0.8});
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

}  // namespace
}  // namespace cats
