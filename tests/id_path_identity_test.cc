// End-to-end identity of the token-id hot path: the SAME saved model,
// loaded twice — once scoring through the id path (default), once through
// the legacy string path — must produce BIT-IDENTICAL output on a
// hostile-faults store: every detection score, every quarantine entry,
// every counter, both offline (Cats::Detect) and served (ServeLoop).
// This is the toggle-for-one-PR equivalence guarantee: flipping
// FeatureExtractorOptions::use_token_ids is observationally invisible.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "collect/crawler.h"
#include "core/cats.h"
#include "fault/data_fault_plan.h"
#include "platform/api.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace cats::core {
namespace {

using collect::CollectedItem;
using collect::DataStore;

CatsOptions StringPathOptions() {
  CatsOptions options;
  options.detector.extractor.use_token_ids = false;
  return options;
}

/// A store crawled through hostile data faults (garbled text, oversize
/// comments, absurd prices, drops) — the dirtiest input the pipeline
/// accepts, and therefore the strongest equivalence corpus: it exercises
/// the irregular-token intern path, imputation and quarantine.
const DataStore& HostileStore() {
  static const DataStore* store = [] {
    platform::ApiOptions api_options;
    api_options.faults = fault::FaultProfile::None();
    api_options.data_faults = fault::DataFaultProfile::Hostile();
    api_options.seed = 20260809;
    platform::MarketplaceApi api(&cats::TestMarketplace(), api_options);
    collect::FakeClock clock;
    collect::CrawlerOptions options;
    options.requests_per_second = 0.0;
    options.max_retries = 12;
    options.backoff_cap_micros = 500'000;
    collect::Crawler crawler(&api, options, &clock);
    auto* s = new DataStore();
    CATS_CHECK(crawler.Crawl(s).ok());
    return s;
  }();
  return *store;
}

void ExpectBitIdenticalDetections(const std::vector<Detection>& id_path,
                                  const std::vector<Detection>& string_path) {
  ASSERT_EQ(id_path.size(), string_path.size());
  for (size_t i = 0; i < id_path.size(); ++i) {
    EXPECT_EQ(id_path[i].item_id, string_path[i].item_id) << i;
    // EXPECT_EQ on double is exact comparison — bit identity, not epsilon.
    EXPECT_EQ(id_path[i].score, string_path[i].score)
        << "item " << id_path[i].item_id;
    EXPECT_EQ(id_path[i].confidence, string_path[i].confidence) << i;
  }
}

TEST(IdPathIdentityTest, DetectReportsBitIdenticalOnHostileStore) {
  const auto& items = HostileStore().items();
  ASSERT_FALSE(items.empty());

  Cats id_path;  // default options: use_token_ids = true
  ASSERT_TRUE(id_path.LoadModel(cats::TestModelDir()).ok());
  ASSERT_TRUE(id_path.detector().extractor().options().use_token_ids);
  auto id_report = id_path.Detect(items);
  ASSERT_TRUE(id_report.ok()) << id_report.status().ToString();

  Cats string_path(StringPathOptions());
  ASSERT_TRUE(string_path.LoadModel(cats::TestModelDir()).ok());
  ASSERT_FALSE(
      string_path.detector().extractor().options().use_token_ids);
  auto string_report = string_path.Detect(items);
  ASSERT_TRUE(string_report.ok()) << string_report.status().ToString();

  // The hostile store must actually exercise the interesting paths,
  // otherwise this test proves nothing.
  EXPECT_GT(id_report->items_quarantined, 0u);
  EXPECT_GT(id_report->items_degraded, 0u);
  EXPECT_GT(id_report->items_classified, 0u);

  EXPECT_EQ(id_report->items_scanned, string_report->items_scanned);
  EXPECT_EQ(id_report->items_quarantined, string_report->items_quarantined);
  EXPECT_EQ(id_report->items_degraded, string_report->items_degraded);
  EXPECT_EQ(id_report->items_filtered_low_sales,
            string_report->items_filtered_low_sales);
  EXPECT_EQ(id_report->items_filtered_no_signal,
            string_report->items_filtered_no_signal);
  EXPECT_EQ(id_report->items_filtered_no_comments,
            string_report->items_filtered_no_comments);
  EXPECT_EQ(id_report->items_classified, string_report->items_classified);

  ExpectBitIdenticalDetections(id_report->detections,
                               string_report->detections);
  ExpectBitIdenticalDetections(id_report->degraded_detections,
                               string_report->degraded_detections);

  ASSERT_EQ(id_report->quarantine.entries.size(),
            string_report->quarantine.entries.size());
  for (size_t i = 0; i < id_report->quarantine.entries.size(); ++i) {
    EXPECT_EQ(id_report->quarantine.entries[i].item_id,
              string_report->quarantine.entries[i].item_id);
  }
}

TEST(IdPathIdentityTest, CleanStoreDetectAlsoBitIdentical) {
  // The clean store hits different branches (no imputation, richer
  // classified set); equivalence must hold there too.
  const auto& items = cats::TestStore().items();

  Cats id_path;
  ASSERT_TRUE(id_path.LoadModel(cats::TestModelDir()).ok());
  auto id_report = id_path.Detect(items);
  ASSERT_TRUE(id_report.ok());

  Cats string_path(StringPathOptions());
  ASSERT_TRUE(string_path.LoadModel(cats::TestModelDir()).ok());
  auto string_report = string_path.Detect(items);
  ASSERT_TRUE(string_report.ok());

  EXPECT_EQ(id_report->items_classified, string_report->items_classified);
  ExpectBitIdenticalDetections(id_report->detections,
                               string_report->detections);
  ExpectBitIdenticalDetections(id_report->degraded_detections,
                               string_report->degraded_detections);
}

/// Scores every hostile item through a ServeLoop configured with `cats`,
/// returning item_id -> (disposition, score).
std::map<uint64_t, std::pair<std::string, double>> ServeAll(
    CatsOptions cats_options) {
  serve::ServeOptions options;
  options.cats = cats_options;
  serve::ServeLoop loop(options);
  CATS_CHECK(loop.Start(cats::TestModelDir(), cats::TestProbeItems()).ok());
  std::map<uint64_t, std::pair<std::string, double>> scored;
  uint32_t next_id = 1;
  for (const CollectedItem& item : HostileStore().items()) {
    serve::Message response =
        loop.Call(serve::MakeScoreItemRequest(next_id++, item));
    CATS_CHECK(response.type == serve::MessageType::kOk);
    auto disposition = response.payload.GetString("disposition");
    CATS_CHECK(disposition.ok());
    double score = -1.0;
    if (*disposition == "classified") {
      auto s = response.payload.GetDouble("score");
      CATS_CHECK(s.ok());
      score = *s;
    }
    scored.emplace(item.item.item_id, std::make_pair(*disposition, score));
  }
  loop.Stop();
  return scored;
}

TEST(IdPathIdentityTest, ServeLoopScoresBitIdenticalBetweenPaths) {
  const auto id_scores = ServeAll(CatsOptions{});
  const auto string_scores = ServeAll(StringPathOptions());

  ASSERT_EQ(id_scores.size(), string_scores.size());
  size_t classified = 0;
  for (const auto& [item_id, id_result] : id_scores) {
    auto it = string_scores.find(item_id);
    ASSERT_NE(it, string_scores.end()) << "item " << item_id;
    EXPECT_EQ(id_result.first, it->second.first) << "item " << item_id;
    EXPECT_EQ(id_result.second, it->second.second) << "item " << item_id;
    if (id_result.first == "classified") ++classified;
  }
  EXPECT_GT(classified, 0u);
}

}  // namespace
}  // namespace cats::core
