#include "util/json.h"

#include <gtest/gtest.h>

namespace cats {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->bool_value());
  EXPECT_FALSE(JsonValue::Parse("false")->bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.25")->number_value(), 3.25);
  EXPECT_EQ(JsonValue::Parse("-17")->int_value(), -17);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->string_value(), "hi");
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3")->number_value(), 1000.0);
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto r = JsonValue::Parse("  {  \"a\" :  [ 1 , 2 ]  }  ");
  ASSERT_TRUE(r.ok());
  const JsonValue* a = r->Get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 2u);
}

TEST(JsonParseTest, NestedStructure) {
  auto r = JsonValue::Parse(
      R"({"item_id":"545470505476","tags":[1,2,3],"meta":{"ok":true}})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Get("item_id")->string_value(), "545470505476");
  EXPECT_EQ(r->Get("tags")->at(2).int_value(), 3);
  EXPECT_TRUE(r->Get("meta")->Get("ok")->bool_value());
}

TEST(JsonParseTest, EscapesAndUnicode) {
  auto r = JsonValue::Parse(R"("a\"b\\c\nd中")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->string_value(), "a\"b\\c\nd中");
}

TEST(JsonParseTest, Utf8Passthrough) {
  auto r = JsonValue::Parse("\"这个商品很好\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->string_value(), "这个商品很好");
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_EQ(JsonValue::Parse("[]")->size(), 0u);
  EXPECT_TRUE(JsonValue::Parse("{}")->is_object());
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,2").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());  // trailing garbage
  EXPECT_FALSE(JsonValue::Parse("{1:2}").ok());  // non-string key
}

TEST(JsonSerializeTest, RoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("id", JsonValue::String("40805023517"));
  obj.Set("n", JsonValue::Int(100));
  obj.Set("pi", JsonValue::Number(3.5));
  obj.Set("ok", JsonValue::Bool(true));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Null());
  obj.Set("arr", std::move(arr));

  std::string text = obj.Serialize();
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("id")->string_value(), "40805023517");
  EXPECT_EQ(parsed->Get("n")->int_value(), 100);
  EXPECT_DOUBLE_EQ(parsed->Get("pi")->number_value(), 3.5);
  EXPECT_TRUE(parsed->Get("ok")->bool_value());
  EXPECT_EQ(parsed->Get("arr")->size(), 2u);
  EXPECT_TRUE(parsed->Get("arr")->at(1).is_null());
}

TEST(JsonSerializeTest, IntegersStayIntegral) {
  EXPECT_EQ(JsonValue::Int(100).Serialize(), "100");
  EXPECT_EQ(JsonValue::Int(-5).Serialize(), "-5");
  EXPECT_EQ(JsonValue::Number(2.5).Serialize(), "2.5");
}

TEST(JsonSerializeTest, StringEscaping) {
  EXPECT_EQ(JsonValue::String("a\"b").Serialize(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue::String("line\nbreak").Serialize(),
            "\"line\\nbreak\"");
  // Control character as \u escape.
  EXPECT_EQ(JsonValue::String(std::string(1, '\x01')).Serialize(),
            "\"\\u0001\"");
  // UTF-8 passes through unescaped.
  EXPECT_EQ(JsonValue::String("好").Serialize(), "\"好\"");
}

TEST(JsonSerializeTest, EscapeRoundTrip) {
  std::string nasty = "q\"w\\e\nr\tt\rb\bf\f中文，。！";
  auto parsed = JsonValue::Parse(JsonValue::String(nasty).Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), nasty);
}

TEST(JsonObjectTest, SetOverwritesAndPreservesOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", JsonValue::Int(1));
  obj.Set("b", JsonValue::Int(2));
  obj.Set("a", JsonValue::Int(9));
  EXPECT_EQ(obj.Get("a")->int_value(), 9);
  EXPECT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "a");
  EXPECT_EQ(obj.Serialize(), R"({"a":9,"b":2})");
}

TEST(JsonTypedGettersTest, ReportMissingAndWrongType) {
  auto obj = *JsonValue::Parse(R"({"s":"x","n":5})");
  EXPECT_TRUE(obj.GetString("s").ok());
  EXPECT_EQ(obj.GetString("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(obj.GetString("n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(*obj.GetInt("n"), 5);
  EXPECT_EQ(obj.GetInt("s").status().code(), StatusCode::kParseError);
  EXPECT_DOUBLE_EQ(*obj.GetDouble("n"), 5.0);
}

TEST(JsonIntTest, IntegerLiteralsAreExactInt64) {
  // Integer tokens parse into the exact-int representation (no double
  // round trip) and serialize back without a decimal point.
  auto v = *JsonValue::Parse(R"({"id":9007199254740991,"neg":-42})");
  EXPECT_TRUE(v.Get("id")->is_int());
  EXPECT_EQ(v.Get("id")->int_value(), 9007199254740991ll);
  EXPECT_EQ(v.Get("neg")->int_value(), -42);
  EXPECT_EQ(v.Serialize(), R"({"id":9007199254740991,"neg":-42})");
  // Doubles still behave as doubles; Int() constructs exact ints.
  EXPECT_FALSE(JsonValue::Parse("1.5")->is_int());
  EXPECT_TRUE(JsonValue::Int(7).is_number());
  EXPECT_EQ(JsonValue::Int(7).Serialize(), "7");
}

TEST(JsonGetPathTest, WalksNestedObjects) {
  auto v = *JsonValue::Parse(R"({"a":{"b":{"c":3}},"x":1})");
  ASSERT_NE(v.GetPath("a.b"), nullptr);
  ASSERT_NE(v.GetPath("a.b.c"), nullptr);
  EXPECT_EQ(v.GetPath("a.b.c")->int_value(), 3);
  EXPECT_EQ(v.GetPath("x")->int_value(), 1);
  EXPECT_EQ(v.GetPath("a.z"), nullptr);
  EXPECT_EQ(v.GetPath("a.b.c.d"), nullptr);  // non-object hop
  EXPECT_EQ(v.GetPath(""), &v);              // empty path = identity
}

TEST(JsonParseTest, ListingTwoRecord) {
  // The comment record of the paper's Listing 2.
  const char* body = R"({
    "item_id": "545470505476",
    "comment_id": "40805023517",
    "comment_content": "这个商品很好",
    "nickname": "0***莉",
    "userExpValue": "100",
    "client_information": "Android",
    "date": "2017-09-10 12:10:00"})";
  auto r = JsonValue::Parse(body);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Get("userExpValue")->string_value(), "100");
  EXPECT_EQ(r->Get("client_information")->string_value(), "Android");
}

}  // namespace
}  // namespace cats
