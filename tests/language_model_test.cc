#include "platform/language_model.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

#include "platform_test_util.h"
#include "text/punctuation.h"
#include "text/utf8.h"

namespace cats::platform {
namespace {

TEST(LanguageTest, VocabularySizeIncludesHomographs) {
  const SyntheticLanguage& lang = TestLanguage();
  EXPECT_EQ(lang.vocabulary_size(), 1200u + 4u);
}

TEST(LanguageTest, WordsAreUniqueAndCjk) {
  const SyntheticLanguage& lang = TestLanguage();
  std::unordered_set<std::string> seen;
  for (const LanguageWord& w : lang.words()) {
    EXPECT_TRUE(seen.insert(w.text).second) << w.text;
    for (uint32_t cp : text::DecodeString(w.text)) {
      EXPECT_TRUE(text::IsCjk(cp)) << w.text;
    }
    size_t len = text::CodepointCount(w.text);
    EXPECT_GE(len, 1u);
    EXPECT_LE(len, 3u);
  }
}

TEST(LanguageTest, PolarityClassesPopulated) {
  const SyntheticLanguage& lang = TestLanguage();
  size_t pos = 0, neg = 0, homographs = 0;
  for (const LanguageWord& w : lang.words()) {
    if (w.spam_homograph) {
      ++homographs;
      EXPECT_EQ(w.polarity, Polarity::kPositive);
      continue;
    }
    if (w.polarity == Polarity::kPositive) ++pos;
    if (w.polarity == Polarity::kNegative) ++neg;
  }
  EXPECT_EQ(homographs, 4u);
  // ~1/12 each.
  EXPECT_NEAR(static_cast<double>(pos) / 1200.0, 1.0 / 12.0, 0.02);
  EXPECT_NEAR(static_cast<double>(neg) / 1200.0, 1.0 / 12.0, 0.02);
}

TEST(LanguageTest, HomographsDifferFromBaseByOneCodepoint) {
  const SyntheticLanguage& lang = TestLanguage();
  std::vector<std::string> seeds = lang.PositiveSeeds(4);
  size_t matched = 0;
  for (const LanguageWord& w : lang.words()) {
    if (!w.spam_homograph) continue;
    // Each homograph must be one codepoint away from some top positive.
    for (const std::string& seed : seeds) {
      auto a = text::DecodeString(w.text);
      auto b = text::DecodeString(seed);
      if (a.size() != b.size()) continue;
      size_t diff = 0;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) ++diff;
      }
      if (diff == 1) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_EQ(matched, 4u);
}

TEST(LanguageTest, SamplersRespectPolarity) {
  const SyntheticLanguage& lang = TestLanguage();
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(lang.word(lang.SamplePositive(&rng)).polarity,
              Polarity::kPositive);
    EXPECT_EQ(lang.word(lang.SampleNegative(&rng)).polarity,
              Polarity::kNegative);
    EXPECT_EQ(lang.word(lang.SampleNeutral(&rng)).polarity,
              Polarity::kNeutral);
    EXPECT_TRUE(lang.word(lang.SampleHomograph(&rng)).spam_homograph);
  }
}

TEST(LanguageTest, SamplingIsZipfSkewed) {
  const SyntheticLanguage& lang = TestLanguage();
  Rng rng(7);
  std::map<uint32_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[lang.SampleNeutral(&rng)];
  // The most frequent neutral word should dominate a mid-rank word.
  int max_count = 0;
  for (const auto& [id, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 200);  // rank-1 of ~1100 neutral words, zipf 1.05
}

TEST(LanguageTest, SeedsAreHighFrequencyPolarityWords) {
  const SyntheticLanguage& lang = TestLanguage();
  auto pos_seeds = lang.PositiveSeeds(3);
  auto neg_seeds = lang.NegativeSeeds(3);
  ASSERT_EQ(pos_seeds.size(), 3u);
  ASSERT_EQ(neg_seeds.size(), 3u);
  for (const std::string& s : pos_seeds) {
    EXPECT_EQ(lang.PolarityOf(s), Polarity::kPositive) << s;
  }
  for (const std::string& s : neg_seeds) {
    EXPECT_EQ(lang.PolarityOf(s), Polarity::kNegative) << s;
  }
}

TEST(LanguageTest, PolarityOfUnknownIsNeutral) {
  EXPECT_EQ(TestLanguage().PolarityOf("not_a_word"), Polarity::kNeutral);
}

TEST(LanguageTest, SegmentationDictionaryCoversVocabulary) {
  const SyntheticLanguage& lang = TestLanguage();
  text::SegmentationDictionary dict = lang.BuildSegmentationDictionary();
  EXPECT_EQ(dict.size(), lang.vocabulary_size());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(dict.Contains(lang.word(i).text));
  }
}

TEST(LanguageTest, PunctuationSamplerReturnsPunctuation) {
  const SyntheticLanguage& lang = TestLanguage();
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    std::string p = lang.SamplePunctuation(&rng);
    auto cps = text::DecodeString(p);
    ASSERT_EQ(cps.size(), 1u);
    EXPECT_TRUE(text::IsPunctuation(cps[0]));
  }
}

TEST(LanguageTest, DeterministicForSeed) {
  LanguageOptions options;
  options.vocabulary_size = 100;
  options.seed = 31337;
  SyntheticLanguage a(options), b(options);
  for (size_t i = 0; i < a.vocabulary_size(); ++i) {
    EXPECT_EQ(a.word(i).text, b.word(i).text);
    EXPECT_EQ(a.word(i).polarity, b.word(i).polarity);
  }
}

}  // namespace
}  // namespace cats::platform
