#include "nlp/lexicon.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/random.h"

namespace cats::nlp {
namespace {

TEST(LexiconTest, InsertContainsCount) {
  Lexicon lex;
  lex.Insert("好评");
  lex.Insert("很好");
  EXPECT_TRUE(lex.Contains("好评"));
  EXPECT_FALSE(lex.Contains("差评"));
  EXPECT_EQ(lex.size(), 2u);
  EXPECT_EQ(lex.CountIn({"好评", "x", "好评", "很好"}), 3u);
  EXPECT_EQ(lex.CountIn({}), 0u);
}

TEST(LexiconTest, ConstructFromVectorDeduplicates) {
  Lexicon lex({"a", "b", "a"});
  EXPECT_EQ(lex.size(), 2u);
}

TEST(LexiconTest, SortedWordsDeterministic) {
  Lexicon lex({"c", "a", "b"});
  EXPECT_EQ(lex.SortedWords(), (std::vector<std::string>{"a", "b", "c"}));
}

/// Builds an embedding space with a tight positive cluster, a negative
/// cluster, and unrelated noise.
EmbeddingStore ClusteredEmbeddings() {
  EmbeddingStore store(3);
  // Positive cluster around (1, 0, 0).
  store.Add("pos_seed", {1.0f, 0.00f, 0.0f});
  store.Add("pos_a", {1.0f, 0.05f, 0.0f});
  store.Add("pos_b", {1.0f, -0.05f, 0.02f});
  store.Add("pos_c", {0.98f, 0.02f, -0.03f});
  // Negative cluster around (0, 1, 0).
  store.Add("neg_seed", {0.0f, 1.0f, 0.0f});
  store.Add("neg_a", {0.04f, 1.0f, 0.0f});
  // Unrelated direction.
  store.Add("noise_a", {0.0f, 0.0f, 1.0f});
  store.Add("noise_b", {0.1f, 0.1f, 1.0f});
  return store;
}

TEST(ExpandLexiconTest, FindsClusterExcludesNoise) {
  EmbeddingStore store = ClusteredEmbeddings();
  LexiconExpansionOptions options;
  options.k = 3;
  options.min_similarity = 0.9f;
  options.max_words = 10;
  auto lex = ExpandLexicon(store, {"pos_seed"}, options);
  ASSERT_TRUE(lex.ok());
  EXPECT_TRUE(lex->Contains("pos_seed"));
  EXPECT_TRUE(lex->Contains("pos_a"));
  EXPECT_TRUE(lex->Contains("pos_b"));
  EXPECT_TRUE(lex->Contains("pos_c"));
  EXPECT_FALSE(lex->Contains("noise_a"));
  EXPECT_FALSE(lex->Contains("neg_seed"));
}

TEST(ExpandLexiconTest, MaxWordsCapRespected) {
  EmbeddingStore store = ClusteredEmbeddings();
  LexiconExpansionOptions options;
  options.k = 5;
  options.min_similarity = -1.0f;  // accept anything
  options.max_words = 3;
  auto lex = ExpandLexicon(store, {"pos_seed"}, options);
  ASSERT_TRUE(lex.ok());
  EXPECT_LE(lex->size(), 3u);
}

TEST(ExpandLexiconTest, EmptySeedsFails) {
  EmbeddingStore store = ClusteredEmbeddings();
  EXPECT_FALSE(ExpandLexicon(store, {}, LexiconExpansionOptions{}).ok());
}

TEST(ExpandLexiconTest, OovSeedKeptButNotExpanded) {
  EmbeddingStore store = ClusteredEmbeddings();
  LexiconExpansionOptions options;
  auto lex = ExpandLexicon(store, {"not_in_embedding"}, options);
  ASSERT_TRUE(lex.ok());
  EXPECT_TRUE(lex->Contains("not_in_embedding"));
  EXPECT_EQ(lex->size(), 1u);
}

// Chain geometry: seed at 0°, a at 20°, b at 40°. cos(20°)=0.94 passes a
// 0.9 threshold, cos(40°)=0.766 does not — so b is reachable only through
// a, never directly from seed.
void AddChain(EmbeddingStore* store) {
  store->Add("seed", {1.0f, 0.0f});
  store->Add("a", {0.9397f, 0.3420f});
  store->Add("b", {0.7660f, 0.6428f});
}

TEST(ExpandLexiconTest, IterativeBfsReachesTransitiveNeighbors) {
  EmbeddingStore store(2);
  AddChain(&store);
  LexiconExpansionOptions options;
  options.k = 2;
  options.min_similarity = 0.9f;
  options.max_iterations = 4;
  auto lex = ExpandLexicon(store, {"seed"}, options);
  ASSERT_TRUE(lex.ok());
  // seed reaches a directly; a reaches b (cos(a,b)=cos(20°) > 0.9).
  EXPECT_TRUE(lex->Contains("a"));
  EXPECT_TRUE(lex->Contains("b"));
}

TEST(ExpandLexiconTest, ParallelExpansionMatchesSerial) {
  // A vocabulary large enough that the k-NN scans take the pooled path;
  // the expansion must be identical to the serial run word for word.
  EmbeddingStore store(6);
  Rng rng(43);
  std::vector<float> vec(6);
  auto add_cluster = [&](const std::string& prefix, float cx, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      vec[0] = cx + static_cast<float>(rng.Normal(0.0, 0.15));
      for (size_t d = 1; d < vec.size(); ++d) {
        vec[d] = static_cast<float>(rng.Normal(0.0, 0.15));
      }
      store.Add(prefix + std::to_string(i), vec);
    }
  };
  add_cluster("pos", 1.0f, 300);
  add_cluster("other", -1.0f, 300);

  LexiconExpansionOptions serial;
  serial.k = 20;
  serial.min_similarity = 0.8f;
  serial.max_words = 120;
  serial.num_threads = 1;
  LexiconExpansionOptions parallel = serial;
  parallel.num_threads = 4;

  auto a = ExpandLexicon(store, {"pos0", "pos1"}, serial);
  auto b = ExpandLexicon(store, {"pos0", "pos1"}, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->size(), 2u);  // the expansion actually grew
  EXPECT_EQ(a->SortedWords(), b->SortedWords());
}

TEST(ExpandLexiconTest, MaxIterationsLimitsDepth) {
  EmbeddingStore store(2);
  AddChain(&store);
  LexiconExpansionOptions options;
  options.k = 2;
  options.min_similarity = 0.9f;
  options.max_iterations = 1;  // only direct neighbors of seeds
  auto lex = ExpandLexicon(store, {"seed"}, options);
  ASSERT_TRUE(lex.ok());
  EXPECT_TRUE(lex->Contains("a"));
  EXPECT_FALSE(lex->Contains("b"));
}

}  // namespace
}  // namespace cats::nlp
