// Loadgen per-step isolation: the max-inflight high-water mark (and the
// pending-request map behind it) must reset at every step boundary, so a
// high-QPS step can never inflate the gauge a later low-QPS step reports.

#include "serve/loadgen.h"

#include <gtest/gtest.h>

#include "serve/tcp_server.h"
#include "serve_test_util.h"

namespace cats {
namespace {

serve::LoadgenOptions StepDownOptions() {
  serve::LoadgenOptions options;
  // A fast step (many requests in flight) followed by a one-request step:
  // if the per-step state leaked, step 2 would report step 1's mark.
  options.qps_steps = {400.0, 2.0};
  options.step_seconds = 0.5;
  options.swap_model_dir.clear();  // no mid-run swap
  return options;
}

void CheckStepIsolation(const serve::LoadgenReport& report) {
  ASSERT_EQ(report.steps.size(), 2u);
  EXPECT_EQ(report.steps[0].requests, 200u);
  EXPECT_EQ(report.steps[1].requests, 1u);
  // The regression: a single-request step's high-water mark is exactly 1,
  // whatever the previous step peaked at.
  EXPECT_EQ(report.steps[1].max_inflight, 1u);
  EXPECT_GE(report.steps[0].max_inflight, 1u);
  for (const serve::LoadgenStepResult& step : report.steps) {
    EXPECT_EQ(step.ok + step.overloaded + step.errors, step.requests);
  }
}

TEST(LoadgenTest, MaxInflightResetsPerStepInProcess) {
  serve::ServeLoop loop(serve::ServeOptions{});
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());
  auto report =
      serve::RunLoadgen(&loop, TestProbeItems(), StepDownOptions());
  loop.Stop(serve::StopMode::kDrain);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckStepIsolation(*report);
}

TEST(LoadgenTest, MaxInflightResetsPerStepOverTcp) {
  serve::ServeLoop loop(serve::ServeOptions{});
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());
  serve::TcpServerOptions tcp_options;
  tcp_options.port = 0;  // kernel-assigned
  serve::TcpServer tcp(&loop, tcp_options);
  ASSERT_TRUE(tcp.Start().ok());

  serve::LoadgenOptions options = StepDownOptions();
  options.connections = 4;
  auto report = serve::RunLoadgenTcp("127.0.0.1", tcp.port(),
                                     TestProbeItems(), options);
  tcp.Stop();
  loop.Stop(serve::StopMode::kDrain);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckStepIsolation(*report);
}

}  // namespace
}  // namespace cats
