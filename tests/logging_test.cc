#include "util/logging.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cats {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluateExpensiveStreaming) {
  // Streaming into a disabled LogMessage must be cheap and side-effect
  // tolerant: operator<< still runs, but the message is dropped. This test
  // mainly pins the no-crash contract at every level.
  SetLogLevel(LogLevel::kError);
  for (int i = 0; i < 1000; ++i) {
    CATS_LOG(Debug) << "dropped " << i;
    CATS_LOG(Info) << "dropped " << i;
    CATS_LOG(Warning) << "dropped " << i;
  }
  SUCCEED();
}

TEST_F(LoggingTest, EmittingAtAllLevelsIsSafe) {
  SetLogLevel(LogLevel::kDebug);
  CATS_LOG(Debug) << "debug line";
  CATS_LOG(Info) << "info line " << 42;
  CATS_LOG(Warning) << "warning line " << 1.5;
  CATS_LOG(Error) << "error line";
  SUCCEED();
}

TEST_F(LoggingTest, CheckPassesOnTrue) {
  CATS_CHECK(1 + 1 == 2);
  SUCCEED();
}

TEST_F(LoggingTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ CATS_CHECK(false); }, "CHECK failed");
}

TEST_F(LoggingTest, ConcurrentLoggingDoesNotInterleaveCrash) {
  SetLogLevel(LogLevel::kError);  // keep test output quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 25; ++i) {
        CATS_LOG(Error) << "t" << t << " i" << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace cats
