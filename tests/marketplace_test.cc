#include "platform/marketplace.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "platform_test_util.h"
#include "util/stats.h"

namespace cats::platform {
namespace {

TEST(MarketplaceTest, ItemCountsMatchConfig) {
  const Marketplace& m = TestMarketplace();
  size_t fraud = 0, normal = 0;
  for (const Item& item : m.items()) {
    (item.is_fraud ? fraud : normal)++;
  }
  EXPECT_EQ(fraud, 40u);
  EXPECT_EQ(m.NumFraudItems(), 40u);
  // Malicious shops carry a few extra legitimate cover items.
  EXPECT_GE(normal, 300u);
}

TEST(MarketplaceTest, EveryItemBelongsToItsShop) {
  const Marketplace& m = TestMarketplace();
  for (const Item& item : m.items()) {
    ASSERT_LT(item.shop_id, m.shops().size());
    const auto& shop_items = m.ItemsOfShop(item.shop_id);
    EXPECT_NE(std::find(shop_items.begin(), shop_items.end(), item.id),
              shop_items.end());
  }
}

TEST(MarketplaceTest, FraudItemsOnlyInMaliciousShops) {
  const Marketplace& m = TestMarketplace();
  for (const Item& item : m.items()) {
    if (item.is_fraud) {
      EXPECT_TRUE(m.shops()[item.shop_id].malicious);
    }
  }
}

TEST(MarketplaceTest, CommentIndicesConsistent) {
  const Marketplace& m = TestMarketplace();
  size_t total = 0;
  for (const Item& item : m.items()) {
    for (uint32_t ci : m.CommentIndicesOfItem(item.id)) {
      ASSERT_LT(ci, m.comments().size());
      EXPECT_EQ(m.comments()[ci].item_id, item.id);
      ++total;
    }
  }
  EXPECT_EQ(total, m.comments().size());
}

TEST(MarketplaceTest, SalesVolumeAtLeastCommentCount) {
  const Marketplace& m = TestMarketplace();
  for (const Item& item : m.items()) {
    EXPECT_GE(item.sales_volume,
              static_cast<int64_t>(m.CommentIndicesOfItem(item.id).size()));
  }
}

TEST(MarketplaceTest, CampaignCommentsOnFraudItemsByHiredUsers) {
  const Marketplace& m = TestMarketplace();
  size_t campaign_comments = 0;
  for (const Comment& c : m.comments()) {
    if (!c.from_campaign) continue;
    ++campaign_comments;
    EXPECT_TRUE(m.items()[c.item_id].is_fraud);
    EXPECT_TRUE(m.users()[c.user_id].hired);
  }
  EXPECT_GT(campaign_comments, 0u);
}

TEST(MarketplaceTest, OrganicCommentsByBenignUsers) {
  const Marketplace& m = TestMarketplace();
  for (const Comment& c : m.comments()) {
    if (!c.from_campaign) {
      EXPECT_FALSE(m.users()[c.user_id].hired);
    }
  }
}

TEST(MarketplaceTest, EveryFraudItemHasCampaignComments) {
  const Marketplace& m = TestMarketplace();
  std::unordered_set<uint64_t> promoted;
  for (const Comment& c : m.comments()) {
    if (c.from_campaign) promoted.insert(c.item_id);
  }
  for (const Item& item : m.items()) {
    if (item.is_fraud) {
      EXPECT_TRUE(promoted.count(item.id)) << item.id;
    }
  }
}

TEST(MarketplaceTest, DatesWellFormedAndCampaignBursty) {
  const Marketplace& m = TestMarketplace();
  for (const Comment& c : m.comments()) {
    ASSERT_EQ(c.date.size(), 19u) << c.date;
    EXPECT_EQ(c.date[4], '-');
    EXPECT_EQ(c.date[7], '-');
    EXPECT_EQ(c.date[10], ' ');
    EXPECT_EQ(c.date[13], ':');
    int year = std::stoi(c.date.substr(0, 4));
    EXPECT_TRUE(year == 2017 || year == 2018);
  }
  // Campaign comments of one item span at most burst_days distinct dates.
  for (const CampaignPlan& plan : m.campaigns()) {
    for (uint64_t item_id : plan.item_ids) {
      std::set<std::string> days;
      for (uint32_t ci : m.CommentIndicesOfItem(item_id)) {
        const Comment& c = m.comments()[ci];
        if (c.from_campaign) days.insert(c.date.substr(0, 10));
      }
      EXPECT_LE(days.size(), m.config().campaign.burst_days);
    }
  }
}

TEST(MarketplaceTest, CampaignCrewsDrawnFromSharedPool) {
  const Marketplace& m = TestMarketplace();
  ASSERT_GT(m.campaigns().size(), 1u);
  std::unordered_set<uint64_t> all_crew;
  for (const CampaignPlan& plan : m.campaigns()) {
    EXPECT_FALSE(plan.crew.empty());
    for (uint64_t u : plan.crew) {
      EXPECT_TRUE(m.users()[u].hired);
      all_crew.insert(u);
    }
  }
  // The pool is small (60): crews necessarily overlap.
  EXPECT_LE(all_crew.size(), 60u);
}

TEST(MarketplaceTest, FraudQualityLowerOnAverage) {
  const Marketplace& m = TestMarketplace();
  RunningStats fraud_q, normal_q;
  for (const Item& item : m.items()) {
    (item.is_fraud ? fraud_q : normal_q).Add(item.quality);
  }
  EXPECT_LT(fraud_q.mean(), normal_q.mean());
}

TEST(MarketplaceTest, SentimentCorpusBalanced) {
  auto corpus = TestMarketplace().BuildSentimentCorpus(100, 3);
  ASSERT_EQ(corpus.size(), 100u);
  size_t pos = 0;
  for (const auto& [text, positive] : corpus) {
    EXPECT_FALSE(text.empty());
    pos += positive ? 1 : 0;
  }
  EXPECT_EQ(pos, 50u);
}

TEST(MarketplaceTest, GenerationDeterministicForSeed) {
  Marketplace a = Marketplace::Generate(SmallMarketConfig(), &TestLanguage());
  Marketplace b = Marketplace::Generate(SmallMarketConfig(), &TestLanguage());
  ASSERT_EQ(a.comments().size(), b.comments().size());
  for (size_t i = 0; i < a.comments().size(); i += 97) {
    EXPECT_EQ(a.comments()[i].content, b.comments()[i].content);
    EXPECT_EQ(a.comments()[i].user_id, b.comments()[i].user_id);
  }
}

TEST(MarketplaceTest, SomeItemsFailSalesRule) {
  // The low_sales knob must produce rule-filter work.
  const Marketplace& m = TestMarketplace();
  size_t low_sales = 0;
  for (const Item& item : m.items()) {
    if (item.sales_volume < 5) ++low_sales;
  }
  EXPECT_GT(low_sales, 0u);
}

}  // namespace
}  // namespace cats::platform
