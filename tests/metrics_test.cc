#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace cats::ml {
namespace {

TEST(ConfusionMatrixTest, CellsRoute) {
  ConfusionMatrix c;
  c.Add(1, 1);  // tp
  c.Add(1, 0);  // fn
  c.Add(0, 1);  // fp
  c.Add(0, 0);  // tn
  EXPECT_EQ(c.true_positive, 1u);
  EXPECT_EQ(c.false_negative, 1u);
  EXPECT_EQ(c.false_positive, 1u);
  EXPECT_EQ(c.true_negative, 1u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(ComputeMetricsTest, PerfectPrediction) {
  std::vector<int> truth{1, 0, 1, 0};
  ClassificationMetrics m = ComputeMetrics(truth, truth);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
}

TEST(ComputeMetricsTest, KnownMix) {
  // tp=2 fp=1 fn=2 tn=3.
  std::vector<int> truth{1, 1, 1, 1, 0, 0, 0, 0};
  std::vector<int> pred {1, 1, 0, 0, 1, 0, 0, 0};
  ClassificationMetrics m = ComputeMetrics(truth, pred);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_NEAR(m.f1, 2 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-12);
  EXPECT_DOUBLE_EQ(m.accuracy, 5.0 / 8.0);
}

TEST(ComputeMetricsTest, NoPositivePredictionsZeroPrecision) {
  ClassificationMetrics m = ComputeMetrics({1, 1, 0}, {0, 0, 0});
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.f1, 0.0);
}

TEST(ComputeMetricsTest, EmptyInput) {
  ClassificationMetrics m = ComputeMetrics({}, {});
  EXPECT_EQ(m.accuracy, 0.0);
}

TEST(ComputeMetricsFromScoresTest, ThresholdApplies) {
  std::vector<int> truth{1, 1, 0, 0};
  std::vector<double> scores{0.9, 0.4, 0.6, 0.1};
  ClassificationMetrics at_half = ComputeMetricsFromScores(truth, scores, 0.5);
  EXPECT_EQ(at_half.confusion.true_positive, 1u);
  EXPECT_EQ(at_half.confusion.false_positive, 1u);
  ClassificationMetrics at_03 = ComputeMetricsFromScores(truth, scores, 0.3);
  EXPECT_EQ(at_03.confusion.true_positive, 2u);
}

TEST(RocAucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(RocAucTest, ReversedRankingIsZero) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 0}, {0.5, 0.5}), 0.5);  // all tied
}

TEST(RocAucTest, TiesAveraged) {
  // One positive tied with one negative, one clean positive above.
  double auc = RocAuc({1, 1, 0, 0}, {0.9, 0.5, 0.5, 0.1});
  EXPECT_DOUBLE_EQ(auc, 0.875);
}

TEST(RocAucTest, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 1}, {0.5, 0.7}), 0.5);
}

TEST(MetricsToStringTest, ContainsAllFields) {
  ClassificationMetrics m = ComputeMetrics({1, 0}, {1, 0});
  std::string s = m.ToString();
  EXPECT_NE(s.find("precision"), std::string::npos);
  EXPECT_NE(s.find("recall"), std::string::npos);
  EXPECT_NE(s.find("accuracy"), std::string::npos);
}

}  // namespace
}  // namespace cats::ml
