#ifndef CATS_TESTS_ML_TEST_UTIL_H_
#define CATS_TESTS_ML_TEST_UTIL_H_

#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "util/random.h"

namespace cats::ml {

/// Two-Gaussian binary dataset: class 0 around (0,0,...), class 1 around
/// (sep, sep, ...), isotropic unit noise. Linearly separable for sep >~ 4.
inline Dataset MakeGaussianDataset(size_t per_class, size_t dim, double sep,
                                   uint64_t seed) {
  std::vector<std::string> names;
  for (size_t f = 0; f < dim; ++f) names.push_back("f" + std::to_string(f));
  Dataset data(std::move(names));
  Rng rng(seed);
  std::vector<float> row(dim);
  for (size_t i = 0; i < per_class; ++i) {
    for (size_t f = 0; f < dim; ++f) {
      row[f] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    (void)data.AddRow(row, 0);
    for (size_t f = 0; f < dim; ++f) {
      row[f] = static_cast<float>(rng.Normal(sep, 1.0));
    }
    (void)data.AddRow(row, 1);
  }
  return data;
}

/// XOR-style dataset that no linear model can fit: label = (x>0) ^ (y>0).
inline Dataset MakeXorDataset(size_t n, uint64_t seed) {
  Dataset data({"x", "y"});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    float x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
    float y = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
    int label = ((x > 0) ^ (y > 0)) ? 1 : 0;
    (void)data.AddRow({x, y}, label);
  }
  return data;
}

/// Training-set accuracy of a fitted classifier.
inline double TrainAccuracy(const Classifier& model, const Dataset& data) {
  size_t correct = 0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (model.Predict(data.Row(i)) == data.Label(i)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(data.num_rows());
}

}  // namespace cats::ml

#endif  // CATS_TESTS_ML_TEST_UTIL_H_
