#include "ml/mlp.h"

#include <gtest/gtest.h>

#include "ml_test_util.h"

namespace cats::ml {
namespace {

TEST(MlpTest, FitEmptyFails) {
  Mlp model;
  Dataset empty({"x"});
  EXPECT_FALSE(model.Fit(empty).ok());
}

TEST(MlpTest, SeparableDataHighAccuracy) {
  Dataset data = MakeGaussianDataset(300, 3, 4.0, 163);
  Mlp model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(model, data), 0.95);
}

TEST(MlpTest, SolvesXorUnlikeLinearModels) {
  Dataset data = MakeXorDataset(1000, 167);
  MlpOptions options;
  options.hidden_units = 32;
  options.epochs = 200;
  options.learning_rate = 0.08;
  Mlp model(options);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(model, data), 0.9);
}

TEST(MlpTest, ProbaInUnitInterval) {
  Dataset data = MakeGaussianDataset(100, 2, 2.0, 173);
  Mlp model;
  ASSERT_TRUE(model.Fit(data).ok());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    double p = model.PredictProba(data.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MlpTest, DeterministicForSeed) {
  Dataset data = MakeGaussianDataset(100, 2, 3.0, 179);
  Mlp a, b;
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(data.Row(i)), b.PredictProba(data.Row(i)));
  }
}

TEST(MlpTest, DifferentSeedsDifferentNets) {
  Dataset data = MakeGaussianDataset(100, 2, 1.0, 181);
  MlpOptions oa, ob;
  oa.seed = 1;
  ob.seed = 2;
  Mlp a(oa), b(ob);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  bool any_diff = false;
  for (size_t i = 0; i < 20; ++i) {
    if (a.PredictProba(data.Row(i)) != b.PredictProba(data.Row(i))) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(MlpTest, CloneUntrained) {
  Mlp model;
  auto clone = model.CloneUntrained();
  EXPECT_EQ(clone->name(), "Neural Network");
  Dataset data = MakeGaussianDataset(150, 2, 4.0, 191);
  ASSERT_TRUE(clone->Fit(data).ok());
  EXPECT_GT(TrainAccuracy(*clone, data), 0.9);
}

}  // namespace
}  // namespace cats::ml
