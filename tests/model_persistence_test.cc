// Unit tests for the crash-safe persistence building blocks: CRC32, the
// model MANIFEST, and atomic file writes. The full SaveModel/LoadModel
// corruption matrix lives in chaos_detect_test.cc.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/model_manifest.h"
#include "util/crc32.h"
#include "util/csv.h"

namespace cats {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value every CRC-32 implementation must produce.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "incremental checksumming must compose";
  uint32_t crc = Crc32Init();
  for (char c : data) crc = Crc32Update(crc, &c, 1);
  EXPECT_EQ(Crc32Finish(crc), Crc32(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(1024, 'm');
  uint32_t clean = Crc32(data);
  for (size_t pos : {size_t{0}, size_t{511}, size_t{1023}}) {
    std::string flipped = data;
    flipped[pos] ^= 0x01;
    EXPECT_NE(Crc32(flipped), clean) << "bit flip at " << pos;
  }
}

TEST(AtomicWriteTest, WritesContentAndLeavesNoTempFile) {
  auto dir = std::filesystem::temp_directory_path() /
             ("cats_atomic_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::string path = (dir / "out.txt").string();

  ASSERT_TRUE(WriteStringToFileAtomic(path, "first version").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "first version");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Overwrite is also atomic — the old file is replaced, never truncated
  // in place.
  ASSERT_TRUE(WriteStringToFileAtomic(path, "second version").ok());
  content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "second version");
  std::filesystem::remove_all(dir);
}

TEST(AtomicWriteTest, FailureOnBadDirectory) {
  EXPECT_FALSE(
      WriteStringToFileAtomic("/nonexistent_dir_zzz/file.txt", "x").ok());
}

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("cats_manifest_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    ASSERT_TRUE(WriteStringToFileAtomic(dir_ + "/a.model", "alpha bytes").ok());
    ASSERT_TRUE(WriteStringToFileAtomic(dir_ + "/b.model", "beta bytes").ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ManifestTest, BuildRecordsSizeAndCrc) {
  auto manifest = core::BuildManifest(dir_, {"a.model", "b.model"});
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->entries.size(), 2u);
  EXPECT_EQ(manifest->entries[0].file, "a.model");
  EXPECT_EQ(manifest->entries[0].size, 11u);
  EXPECT_EQ(manifest->entries[0].crc32, Crc32("alpha bytes"));
  EXPECT_EQ(manifest->version, core::kModelFormatVersion);
}

TEST_F(ManifestTest, BuildFailsOnMissingFile) {
  EXPECT_FALSE(core::BuildManifest(dir_, {"a.model", "ghost.model"}).ok());
}

TEST_F(ManifestTest, SerializeParseRoundTrip) {
  auto manifest = core::BuildManifest(dir_, {"a.model", "b.model"});
  ASSERT_TRUE(manifest.ok());
  std::string text = manifest->Serialize();
  auto parsed = core::ModelManifest::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, manifest->version);
  ASSERT_EQ(parsed->entries.size(), manifest->entries.size());
  for (size_t i = 0; i < parsed->entries.size(); ++i) {
    EXPECT_EQ(parsed->entries[i].file, manifest->entries[i].file);
    EXPECT_EQ(parsed->entries[i].size, manifest->entries[i].size);
    EXPECT_EQ(parsed->entries[i].crc32, manifest->entries[i].crc32);
  }
  // Serialization is canonical: parse -> serialize is byte-identical.
  EXPECT_EQ(parsed->Serialize(), text);
}

TEST_F(ManifestTest, ParseRejectsMalformedText) {
  auto good = core::BuildManifest(dir_, {"a.model"});
  ASSERT_TRUE(good.ok());
  std::string text = good->Serialize();
  EXPECT_FALSE(core::ModelManifest::Parse("").ok());
  EXPECT_FALSE(core::ModelManifest::Parse("not-a-manifest\n1\n").ok());
  EXPECT_FALSE(core::ModelManifest::Parse(text + "garbage at the end").ok());
  // Truncated: claims one entry, provides none.
  EXPECT_FALSE(core::ModelManifest::Parse("cats-model-manifest-v1\n1\n").ok());
}

TEST_F(ManifestTest, WriteReadVerifyRoundTrip) {
  auto manifest = core::BuildManifest(dir_, {"a.model", "b.model"});
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(core::WriteManifest(dir_, *manifest).ok());
  auto read = core::ReadManifest(dir_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(core::VerifyManifest(dir_, *read).ok());
}

TEST_F(ManifestTest, MissingManifestIsCorruption) {
  auto read = core::ReadManifest(dir_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST_F(ManifestTest, VerifyFlagsTamperedFile) {
  auto manifest = core::BuildManifest(dir_, {"a.model", "b.model"});
  ASSERT_TRUE(manifest.ok());

  // Same-size bit flip: only the CRC can catch it.
  ASSERT_TRUE(WriteStringToFileAtomic(dir_ + "/a.model", "alphA bytes").ok());
  Status st = core::VerifyManifest(dir_, *manifest);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("a.model"), std::string::npos);

  // Truncation: size check catches it first.
  ASSERT_TRUE(WriteStringToFileAtomic(dir_ + "/a.model", "alpha").ok());
  st = core::VerifyManifest(dir_, *manifest);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);

  // Deletion: typed NotFound naming the file.
  std::filesystem::remove(dir_ + "/a.model");
  st = core::VerifyManifest(dir_, *manifest);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_NE(st.message().find("a.model"), std::string::npos);
}

TEST_F(ManifestTest, VerifyFlagsVersionSkew) {
  auto manifest = core::BuildManifest(dir_, {"a.model"});
  ASSERT_TRUE(manifest.ok());
  manifest->version = core::kModelFormatVersion + 1;
  Status st = core::VerifyManifest(dir_, *manifest);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(StatusCorruptionTest, CorruptionIsItsOwnCode) {
  Status st = Status::Corruption("checksum mismatch");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.ToString().find("Corruption"), std::string::npos);
  EXPECT_NE(st.ToString().find("checksum mismatch"), std::string::npos);
}

}  // namespace
}  // namespace cats
