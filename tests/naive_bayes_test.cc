#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml_test_util.h"

namespace cats::ml {
namespace {

TEST(GaussianNbTest, FitEmptyFails) {
  GaussianNaiveBayes model;
  Dataset empty({"x"});
  EXPECT_FALSE(model.Fit(empty).ok());
}

TEST(GaussianNbTest, SingleClassFails) {
  Dataset data({"x"});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(data.AddRow({static_cast<float>(i)}, 1).ok());
  }
  GaussianNaiveBayes model;
  EXPECT_FALSE(model.Fit(data).ok());
}

TEST(GaussianNbTest, SeparableGaussiansNearPerfect) {
  // Gaussian NB is the true model for this data.
  Dataset data = MakeGaussianDataset(500, 3, 5.0, 193);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(model, data), 0.99);
}

TEST(GaussianNbTest, CannotSolveXor) {
  Dataset data = MakeXorDataset(800, 197);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LT(TrainAccuracy(model, data), 0.65);
}

TEST(GaussianNbTest, ProbaCalibratedAtMidpoint) {
  Dataset data = MakeGaussianDataset(2000, 1, 4.0, 199);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(data).ok());
  // Midpoint between the class means should score near 0.5.
  float mid[1] = {2.0f};
  EXPECT_NEAR(model.PredictProba(mid), 0.5, 0.1);
  float clearly_pos[1] = {6.0f};
  EXPECT_GT(model.PredictProba(clearly_pos), 0.95);
  float clearly_neg[1] = {-2.0f};
  EXPECT_LT(model.PredictProba(clearly_neg), 0.05);
}

TEST(GaussianNbTest, PriorReflectsClassImbalance) {
  Dataset data({"x"});
  Rng rng(211);
  for (int i = 0; i < 900; ++i) {
    ASSERT_TRUE(
        data.AddRow({static_cast<float>(rng.Normal(0.0, 1.0))}, 0).ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        data.AddRow({static_cast<float>(rng.Normal(0.0, 1.0))}, 1).ok());
  }
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(data).ok());
  // Identical likelihoods: posterior should be close to the 10% prior.
  float x[1] = {0.0f};
  EXPECT_NEAR(model.PredictProba(x), 0.1, 0.05);
}

TEST(GaussianNbTest, ConstantFeatureNoNan) {
  Dataset data({"c", "v"});
  Rng rng(223);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(data.AddRow({1.0f, static_cast<float>(rng.Normal(
                                       i % 2 ? 3.0 : 0.0, 1.0))},
                            i % 2)
                    .ok());
  }
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(data).ok());
  float row[2] = {1.0f, 1.5f};
  double p = model.PredictProba(row);
  EXPECT_FALSE(std::isnan(p));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(GaussianNbTest, CloneUntrained) {
  GaussianNaiveBayes model;
  auto clone = model.CloneUntrained();
  EXPECT_EQ(clone->name(), "Naive Bayes");
  float row[1] = {0.0f};
  EXPECT_DOUBLE_EQ(clone->PredictProba(row), 0.5);
}

}  // namespace
}  // namespace cats::ml
