#include "text/ngram.h"

#include <gtest/gtest.h>

namespace cats::text {
namespace {

TEST(BigramKeyTest, DistinguishesBoundaries) {
  // ("ab", "c") must differ from ("a", "bc").
  EXPECT_NE(BigramKey("ab", "c"), BigramKey("a", "bc"));
  EXPECT_EQ(BigramKey("x", "y"), BigramKey("x", "y"));
}

TEST(BigramsTest, EnumeratesAdjacentPairs) {
  auto pairs = Bigrams({"a", "b", "c"});
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<std::string, std::string>{"a", "b"}));
  EXPECT_EQ(pairs[1], (std::pair<std::string, std::string>{"b", "c"}));
}

TEST(BigramsTest, ShortSequences) {
  EXPECT_TRUE(Bigrams({}).empty());
  EXPECT_TRUE(Bigrams({"solo"}).empty());
}

TEST(PositiveBigramSetTest, InsertContains) {
  PositiveBigramSet set;
  set.Insert("很", "好");
  EXPECT_TRUE(set.Contains("很", "好"));
  EXPECT_FALSE(set.Contains("好", "很"));  // ordered
  EXPECT_EQ(set.size(), 1u);
}

TEST(PositiveBigramSetTest, CountIn) {
  PositiveBigramSet set;
  set.Insert("a", "b");
  set.Insert("b", "c");
  EXPECT_EQ(set.CountIn({"a", "b", "c", "a", "b"}), 3u);
  EXPECT_EQ(set.CountIn({"x", "y"}), 0u);
  EXPECT_EQ(set.CountIn({"a"}), 0u);
  EXPECT_EQ(set.CountIn({}), 0u);
}

}  // namespace
}  // namespace cats::text
