// Unit tests for the observability substrate (src/obs): exact counter
// summation under ThreadPool concurrency, stable histogram bucketing, and
// JSON export that round-trips through util/json.h.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metric_names.h"
#include "util/thread_pool.h"

namespace cats::obs {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(CounterTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("test.counter"),
            registry.GetCounter("test.counter"));
  EXPECT_NE(registry.GetCounter("test.counter"),
            registry.GetCounter("test.other"));
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  // Hammer one counter from every worker; relaxed atomic adds must still
  // sum exactly (the invariant every pipeline count rests on).
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.concurrent");
  constexpr size_t kTasks = 64;
  constexpr size_t kIncrementsPerTask = 10000;
  ThreadPool pool(8);
  for (size_t t = 0; t < kTasks; ++t) {
    pool.Submit([counter] {
      for (size_t i = 0; i < kIncrementsPerTask; ++i) counter->Increment();
    });
  }
  pool.Wait();
  EXPECT_EQ(counter->value(), kTasks * kIncrementsPerTask);
}

TEST(CounterTest, ParallelForChunkAccumulationSumsExactly) {
  // The pattern the feature extractor uses: chunk-local tallies published
  // with one atomic add per chunk.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.chunked");
  constexpr size_t kN = 100001;
  ThreadPool pool(4);
  pool.ParallelForChunks(kN, [counter](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) ++local;
    counter->Increment(local);
  });
  EXPECT_EQ(counter->value(), kN);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(1.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.5);
  gauge->Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.0);
}

TEST(LatencyHistogramTest, BucketBoundariesAreStable) {
  MetricsRegistry registry;
  LatencyHistogram* hist =
      registry.GetHistogram("test.hist", {10.0, 20.0, 30.0});
  // Bucket i counts values <= bounds[i]; above the last bound -> overflow.
  hist->Observe(5.0);    // bucket 0
  hist->Observe(10.0);   // bucket 0 (inclusive upper bound)
  hist->Observe(10.5);   // bucket 1
  hist->Observe(30.0);   // bucket 2
  hist->Observe(1000.0); // overflow
  EXPECT_EQ(hist->bucket_count(0), 2u);
  EXPECT_EQ(hist->bucket_count(1), 1u);
  EXPECT_EQ(hist->bucket_count(2), 1u);
  EXPECT_EQ(hist->bucket_count(3), 1u);
  EXPECT_EQ(hist->total_count(), 5u);
  EXPECT_DOUBLE_EQ(hist->sum(), 5.0 + 10.0 + 10.5 + 30.0 + 1000.0);
  // Re-registering under the same name keeps the original bounds.
  LatencyHistogram* again = registry.GetHistogram("test.hist", {1.0});
  EXPECT_EQ(again, hist);
  EXPECT_EQ(again->bounds().size(), 3u);
}

TEST(LatencyHistogramTest, UniformBoundsSpanRange) {
  std::vector<double> bounds = LatencyHistogram::UniformBounds(0.0, 1.0, 20);
  ASSERT_EQ(bounds.size(), 20u);
  EXPECT_NEAR(bounds.front(), 0.05, 1e-12);
  EXPECT_NEAR(bounds.back(), 1.0, 1e-12);
}

TEST(LatencyHistogramTest, ConcurrentObservationsAllLand) {
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.GetHistogram("test.conc", {0.5});
  constexpr size_t kN = 50000;
  ThreadPool pool(8);
  pool.ParallelFor(kN, [hist](size_t i) {
    hist->Observe(i % 2 == 0 ? 0.0 : 1.0);
  });
  EXPECT_EQ(hist->total_count(), kN);
  EXPECT_EQ(hist->bucket_count(0) + hist->bucket_count(1), kN);
}

TEST(SnapshotTest, QuantileUpperBound) {
  MetricsRegistry registry;
  LatencyHistogram* hist =
      registry.GetHistogram("test.q", {1.0, 2.0, 3.0, 4.0});
  for (int i = 0; i < 90; ++i) hist->Observe(0.5);  // bucket 0
  for (int i = 0; i < 10; ++i) hist->Observe(3.5);  // bucket 3
  MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* h = snapshot.FindHistogram("test.q");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->QuantileUpperBound(0.50), 1.0);
  EXPECT_DOUBLE_EQ(h->QuantileUpperBound(0.95), 4.0);
  EXPECT_NEAR(h->Mean(), (90 * 0.5 + 10 * 3.5) / 100.0, 1e-12);
}

TEST(SnapshotTest, LookupHelpers) {
  MetricsRegistry registry;
  registry.GetCounter("test.counter")->Increment(7);
  registry.GetGauge("test.gauge")->Set(2.25);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test.counter"), 7u);
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("test.gauge"), 2.25);
  EXPECT_EQ(snapshot.CounterValue("test.absent"), 0u);
  EXPECT_EQ(snapshot.FindHistogram("test.absent"), nullptr);
}

TEST(SnapshotTest, DumpJsonRoundTripsThroughUtilJson) {
  MetricsRegistry registry;
  registry.GetCounter("stage.items_total")->Increment(123);
  registry.GetGauge("stage.throughput")->Set(456.5);
  LatencyHistogram* hist =
      registry.GetHistogram("stage.latency_micros", {100.0, 1000.0});
  hist->Observe(50.0);
  hist->Observe(5000.0);

  Result<JsonValue> parsed = JsonValue::Parse(registry.DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Get("stage.items_total")->int_value(), 123);
  const JsonValue* gauges = parsed->Get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Get("stage.throughput")->number_value(), 456.5);
  const JsonValue* hist_obj =
      parsed->Get("histograms")->Get("stage.latency_micros");
  ASSERT_NE(hist_obj, nullptr);
  EXPECT_EQ(hist_obj->Get("count")->int_value(), 2);
  ASSERT_EQ(hist_obj->Get("counts")->size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(hist_obj->Get("counts")->at(0).int_value(), 1);
  EXPECT_EQ(hist_obj->Get("counts")->at(2).int_value(), 1);
}

TEST(SnapshotTest, DumpTableListsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("aaa.counter")->Increment(5);
  registry.GetGauge("bbb.gauge")->Set(1.0);
  registry.GetHistogram("ccc.hist", {1.0})->Observe(0.5);
  std::string table = registry.DumpTable();
  EXPECT_NE(table.find("aaa.counter"), std::string::npos);
  EXPECT_NE(table.find("bbb.gauge"), std::string::npos);
  EXPECT_NE(table.find("ccc.hist"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
}

TEST(RegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  Gauge* gauge = registry.GetGauge("test.gauge");
  LatencyHistogram* hist = registry.GetHistogram("test.hist", {1.0});
  counter->Increment(9);
  gauge->Set(3.0);
  hist->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(hist->total_count(), 0u);
  EXPECT_DOUBLE_EQ(hist->sum(), 0.0);
  // Handles stay valid and identical after Reset.
  EXPECT_EQ(registry.GetCounter("test.counter"), counter);
  counter->Increment();
  EXPECT_EQ(counter->value(), 1u);
}

TEST(RegistryTest, GlobalIsOneRegistry) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.global_identity");
  Counter* b = MetricsRegistry::Global().GetCounter("test.global_identity");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cats::obs
