#include "analysis/order_aspect.h"

#include <gtest/gtest.h>

#include "analysis/distributions.h"
#include "platform_test_util.h"

namespace cats::analysis {
namespace {

collect::CollectedItem ItemWithClients(
    uint64_t id, std::initializer_list<const char*> clients) {
  collect::CollectedItem item;
  item.item.item_id = id;
  for (const char* client : clients) {
    collect::CommentRecord c;
    c.item_id = id;
    c.client = client;
    item.comments.push_back(std::move(c));
  }
  return item;
}

TEST(OrderAspectTest, CountsByClient) {
  std::vector<collect::CollectedItem> items{
      ItemWithClients(1, {"Web", "Web", "Android", "iPhone", "WeChat",
                          "Telegraph"}),
  };
  ClientDistribution dist = ComputeClientDistribution(items);
  EXPECT_EQ(dist.total, 6u);
  EXPECT_EQ(dist.counts[0], 2u);  // Web
  EXPECT_EQ(dist.counts[1], 1u);  // Android
  EXPECT_EQ(dist.counts[2], 1u);  // iPhone
  EXPECT_EQ(dist.counts[3], 1u);  // WeChat
  EXPECT_EQ(dist.counts[4], 1u);  // Other
  EXPECT_DOUBLE_EQ(dist.Fraction(0), 2.0 / 6.0);
  EXPECT_EQ(dist.ArgMax(), 0u);
}

TEST(OrderAspectTest, EmptySafe) {
  ClientDistribution dist = ComputeClientDistribution({});
  EXPECT_EQ(dist.total, 0u);
  EXPECT_EQ(dist.Fraction(0), 0.0);
}

TEST(OrderAspectTest, DistanceProperties) {
  std::vector<collect::CollectedItem> web_only{
      ItemWithClients(1, {"Web", "Web"})};
  std::vector<collect::CollectedItem> android_only{
      ItemWithClients(2, {"Android", "Android"})};
  ClientDistribution a = ComputeClientDistribution(web_only);
  ClientDistribution b = ComputeClientDistribution(android_only);
  EXPECT_DOUBLE_EQ(ClientDistributionDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(ClientDistributionDistance(a, b), 1.0);  // disjoint
}

TEST(OrderAspectTest, FraudOrdersWebHeavyOnSimulatedPlatform) {
  // Fig 12's claim: fraud orders dominated by web, normal by Android.
  const auto& store = cats::TestStore();
  LabeledSplit split = SplitByLabel(
      store.items(), cats::StoreLabels(cats::TestMarketplace(), store));
  ClientDistribution fraud = ComputeClientDistribution(split.fraud);
  ClientDistribution normal = ComputeClientDistribution(split.normal);
  EXPECT_EQ(ClientDistribution::Labels()[fraud.ArgMax()], "Web");
  EXPECT_EQ(ClientDistribution::Labels()[normal.ArgMax()], "Android");
  // "This client distribution difference is relatively large."
  EXPECT_GT(ClientDistributionDistance(fraud, normal), 0.2);
}

}  // namespace
}  // namespace cats::analysis
