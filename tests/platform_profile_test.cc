// Wire-heterogeneity tests for platform/profile.h: the built-in platforms
// must differ structurally (not just by seed), every encoding must round
// trip through the normalizer, and the canonical profile must stay
// byte-identical to the historical (pre-profile) wire.

#include "platform/profile.h"

#include <gtest/gtest.h>

#include "collect/normalizer.h"
#include "collect/record.h"
#include "platform/api.h"
#include "platform_test_util.h"

namespace cats {
namespace {

using platform::BuiltinPlatform;
using platform::BuiltinPlatformNames;
using platform::PaginationStyle;
using platform::PlatformProfile;
using platform::PlatformSpec;

std::vector<PlatformSpec> AllBuiltins() {
  std::vector<PlatformSpec> specs;
  for (const std::string& name : BuiltinPlatformNames()) {
    auto spec = BuiltinPlatform(name, 0.002);
    CATS_CHECK(spec.ok());
    specs.push_back(*std::move(spec));
  }
  return specs;
}

TEST(PlatformProfileTest, BuiltinsArePairwiseStructurallyDistinct) {
  std::vector<PlatformSpec> specs = AllBuiltins();
  ASSERT_GE(specs.size(), 3u);
  for (size_t a = 0; a < specs.size(); ++a) {
    for (size_t b = a + 1; b < specs.size(); ++b) {
      EXPECT_TRUE(specs[a].profile.StructurallyDistinctFrom(specs[b].profile))
          << specs[a].profile.platform_id << " vs "
          << specs[b].profile.platform_id;
    }
  }
  // All three pagination styles are represented.
  bool page = false, offset = false, cursor = false;
  for (const PlatformSpec& spec : specs) {
    page |= spec.profile.pagination == PaginationStyle::kPageNumber;
    offset |= spec.profile.pagination == PaginationStyle::kOffsetLimit;
    cursor |= spec.profile.pagination == PaginationStyle::kCursorToken;
  }
  EXPECT_TRUE(page);
  EXPECT_TRUE(offset);
  EXPECT_TRUE(cursor);
}

TEST(PlatformProfileTest, CanonicalProfileIsNotDistinctFromDefault) {
  EXPECT_FALSE(PlatformProfile::Canonical().StructurallyDistinctFrom(
      PlatformProfile{}));
}

TEST(PlatformProfileTest, CanonicalWireIsByteIdenticalToHistoricalParser) {
  // A default-options API must serve bodies the pre-profile ParsePage /
  // ParseXRecord functions accept unchanged — the byte-identity contract
  // every pre-federation test and JSONL store depends on.
  platform::ApiOptions options;
  options.faults = fault::FaultProfile::None();
  platform::MarketplaceApi api(&TestMarketplace(), options);
  auto body = api.Get("/shops?page=0");
  ASSERT_TRUE(body.ok());
  auto page = collect::ParsePage(*body);
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->data.empty());
  auto shop = collect::ParseShopRecord(page->data[0]);
  ASSERT_TRUE(shop.ok());

  // And the profile-driven normalizer agrees with the historical parser
  // record for record.
  collect::SchemaNormalizer normalizer(&PlatformProfile::Canonical());
  auto norm_page = normalizer.ParsePage(*body, options.page_size);
  ASSERT_TRUE(norm_page.ok());
  EXPECT_EQ(norm_page->page, page->page);
  EXPECT_EQ(norm_page->total_pages, page->total_pages);
  EXPECT_EQ(norm_page->has_more, page->has_more);
  auto norm_shop = normalizer.NormalizeShop(norm_page->data[0]);
  ASSERT_TRUE(norm_shop.ok());
  EXPECT_EQ(norm_shop->shop_id, shop->shop_id);
  EXPECT_EQ(norm_shop->shop_url, shop->shop_url);
  EXPECT_EQ(norm_shop->shop_name, shop->shop_name);
}

TEST(PlatformProfileTest, PageQueryPerStyle) {
  PlatformProfile p;  // canonical
  EXPECT_EQ(p.PageQuery(3, 50), "?page=3");

  PlatformProfile offset = p;
  offset.pagination = PaginationStyle::kOffsetLimit;
  EXPECT_EQ(offset.PageQuery(3, 50), "?offset=150&limit=50");

  PlatformProfile cursor = p;
  cursor.pagination = PaginationStyle::kCursorToken;
  EXPECT_EQ(cursor.PageQuery(0, 50), "?cursor=");
  EXPECT_EQ(cursor.PageQuery(3, 50), "?cursor=pg-3");
}

TEST(PlatformProfileTest, EncodingsRoundTripOnEveryBuiltin) {
  for (const PlatformSpec& spec : AllBuiltins()) {
    const PlatformProfile& p = spec.profile;
    SCOPED_TRACE(p.platform_id);
    // Ids.
    for (uint64_t id : {0ull, 7ull, 123456789ull}) {
      auto back = p.DecodeId(p.EncodeId(id, p.item_id_prefix),
                             p.item_id_prefix);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, id);
    }
    // Reputation: lossless styles exact; level buckets monotone.
    for (int64_t exp : {int64_t{100}, int64_t{3200}, int64_t{27158720}}) {
      auto back = p.DecodeReputation(p.EncodeReputation(exp));
      ASSERT_TRUE(back.ok());
      if (p.reputation_wire == platform::ReputationWire::kLevelNumber) {
        EXPECT_GT(*back, 0);
        EXPECT_LE(*back, exp);
      } else {
        EXPECT_EQ(*back, exp);
      }
    }
    // Clients: every canonical label maps there and back.
    for (const char* label : {"Web", "Android", "iPhone", "WeChat"}) {
      EXPECT_EQ(p.DecodeClient(p.EncodeClient(label)), label);
    }
    // Dates.
    const std::string iso = "2017-09-14 13:22:05";
    auto date = p.DecodeDate(p.EncodeDate(iso));
    ASSERT_TRUE(date.ok());
    EXPECT_EQ(*date, iso);
  }
}

TEST(PlatformProfileTest, NormalizerParsesEveryPaginationDialect) {
  collect::SchemaNormalizer canonical(&PlatformProfile::Canonical());
  auto page = canonical.ParsePage(
      R"({"page":2,"total_pages":4,"data":[{"x":1}]})", 50);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->page, 2u);
  EXPECT_TRUE(page->has_more);

  PlatformProfile offset_profile;
  offset_profile.pagination = PaginationStyle::kOffsetLimit;
  collect::SchemaNormalizer offset(&offset_profile);
  page = offset.ParsePage(R"({"offset":100,"total":151,"data":[]})", 50);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->page, 2u);
  EXPECT_EQ(page->total_pages, 4u);
  EXPECT_TRUE(page->has_more);
  EXPECT_FALSE(
      offset.ParsePage(R"({"offset":101,"total":151,"data":[]})", 50).ok());

  PlatformProfile cursor_profile;
  cursor_profile.pagination = PaginationStyle::kCursorToken;
  collect::SchemaNormalizer cursor(&cursor_profile);
  page = cursor.ParsePage(
      R"({"cursor":"pg-2","next_cursor":"pg-3","data":[]})", 50);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->page, 2u);
  EXPECT_TRUE(page->has_more);
  page = cursor.ParsePage(R"({"cursor":"pg-5","next_cursor":"","data":[]})",
                          50);
  ASSERT_TRUE(page.ok());
  EXPECT_FALSE(page->has_more);
  EXPECT_FALSE(
      cursor
          .ParsePage(R"({"cursor":"tok!bad","next_cursor":"","data":[]})", 50)
          .ok());
}

TEST(PlatformProfileTest, WrapperEnvelopeIsUnwrapped) {
  PlatformProfile p;
  p.envelope.wrapper = "result";
  p.envelope.status_key = "code";
  p.envelope.key_data = "records";
  collect::SchemaNormalizer normalizer(&p);
  auto page = normalizer.ParsePage(
      R"({"code":0,"result":{"page":0,"total_pages":1,"records":[{"a":1}]}})",
      50);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->data.size(), 1u);
  // Missing wrapper is a parse error, not a silent empty page.
  EXPECT_FALSE(
      normalizer.ParsePage(R"({"page":0,"total_pages":1,"records":[]})", 50)
          .ok());
}

TEST(PlatformProfileTest, BuiltinLookupRejectsUnknownNames) {
  EXPECT_FALSE(BuiltinPlatform("myspace", 1.0).ok());
  for (const std::string& name : BuiltinPlatformNames()) {
    EXPECT_TRUE(BuiltinPlatform(name, 0.01).ok()) << name;
  }
}

}  // namespace
}  // namespace cats
