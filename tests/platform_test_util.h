#ifndef CATS_TESTS_PLATFORM_TEST_UTIL_H_
#define CATS_TESTS_PLATFORM_TEST_UTIL_H_

#include <filesystem>

#include "collect/crawler.h"
#include "collect/store.h"
#include "core/semantic_analyzer.h"
#include "platform/api.h"
#include "platform/marketplace.h"
#include "platform/presets.h"
#include "util/logging.h"

namespace cats {

/// Shared small language (expensive to regenerate per test).
inline const platform::SyntheticLanguage& TestLanguage() {
  static const platform::SyntheticLanguage* language = [] {
    platform::LanguageOptions options;
    options.vocabulary_size = 1200;
    options.homograph_bases = 4;
    options.seed = 777;
    return new platform::SyntheticLanguage(options);
  }();
  return *language;
}

/// A small marketplace config for fast tests.
inline platform::MarketplaceConfig SmallMarketConfig() {
  platform::MarketplaceConfig config;
  config.name = "test-market";
  config.num_normal_items = 300;
  config.num_fraud_items = 40;
  // Sparse enough that organic co-purchase overlap stays rare (the paper's
  // platforms have millions of users); the hired pool stays dense.
  config.population.num_benign_users = 6000;
  config.population.num_hired_users = 60;
  config.seed = 4242;
  return config;
}

/// Shared generated marketplace.
inline const platform::Marketplace& TestMarketplace() {
  static const platform::Marketplace* market = new platform::Marketplace(
      platform::Marketplace::Generate(SmallMarketConfig(), &TestLanguage()));
  return *market;
}

/// Crawls a marketplace into a fresh DataStore (no failure injection).
inline collect::DataStore CrawlAll(const platform::Marketplace& market) {
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  platform::MarketplaceApi api(&market, api_options);
  collect::FakeClock clock;
  collect::Crawler crawler(&api, collect::CrawlerOptions{}, &clock);
  collect::DataStore store;
  Status st = crawler.Crawl(&store);
  CATS_CHECK(st.ok());
  return store;
}

/// Shared crawled store of the shared marketplace.
inline const collect::DataStore& TestStore() {
  static const collect::DataStore* store =
      new collect::DataStore(CrawlAll(TestMarketplace()));
  return *store;
}

/// Shared semantic model built from the shared marketplace's comments.
///
/// Word2vec training is the expensive step and — multi-threaded — not
/// bit-reproducible (Hogwild). gtest runs every case in its own process
/// and would otherwise rebuild a slightly different model each time, so
/// the model is built once (single-threaded, deterministic), cached on
/// disk, and loaded identically by every later test process.
inline const core::SemanticModel& TestSemanticModel() {
  static const core::SemanticModel* model = [] {
    // Cache key = hash of a sample of the marketplace's comments, so any
    // change to generation parameters invalidates the cache automatically.
    uint64_t fingerprint = 1469598103934665603ull;  // FNV-1a
    {
      const auto& comments = TestMarketplace().comments();
      for (size_t i = 0; i < comments.size(); i += 97) {
        for (char c : comments[i].content) {
          fingerprint ^= static_cast<unsigned char>(c);
          fingerprint *= 1099511628211ull;
        }
      }
    }
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() /
         ("cats_test_semantic_" + std::to_string(fingerprint)))
            .string();
    if (std::filesystem::exists(cache_dir + "/sentiment.model")) {
      auto loaded = core::LoadSemanticModel(cache_dir);
      if (loaded.ok()) {
        return new core::SemanticModel(std::move(loaded).value());
      }
    }
    const auto& market = TestMarketplace();
    std::vector<std::string> corpus;
    for (const platform::Comment& c : market.comments()) {
      corpus.push_back(c.content);
    }
    // The marketplace alone yields only ~50k tokens — far below what
    // word2vec needs (the paper trains on 70M comments). Top the corpus up
    // with directly generated comments in the same language.
    {
      platform::CommentGenerator generator(&TestLanguage());
      Rng rng(314159);
      for (int i = 0; i < 16000; ++i) {
        corpus.push_back(generator.GenerateBenign(rng.Beta(4.0, 2.0), &rng));
      }
      for (int i = 0; i < 250; ++i) {
        bool stealth = rng.Bernoulli(0.3);
        auto tmpl = generator.GenerateSpamTemplate(&rng, stealth);
        for (int j = 0; j < 12; ++j) {
          corpus.push_back(
              generator.GenerateSpamFromTemplate(tmpl, &rng, stealth));
        }
      }
    }
    core::SemanticAnalyzerOptions options;
    options.word2vec.epochs = 8;
    options.word2vec.dim = 32;
    options.word2vec.num_threads = 1;  // deterministic cache contents
    // The test language has only ~100 positive words; cap the expansion
    // below that so lexicon purity is even achievable.
    options.expansion.max_words = 80;
    options.expansion.min_similarity = 0.60f;
    core::SemanticAnalyzer analyzer(options);
    auto result = analyzer.Build(
        corpus, TestLanguage().BuildSegmentationDictionary(),
        TestLanguage().PositiveSeeds(3), TestLanguage().NegativeSeeds(3),
        market.BuildSentimentCorpus(2000, 11));
    CATS_CHECK(result.ok());
    auto* built = new core::SemanticModel(std::move(result).value());
    // Cache for the other test processes (atomic-ish: build into a temp
    // dir, then rename into place).
    std::string tmp_dir = cache_dir + ".tmp";
    std::error_code ec;
    std::filesystem::create_directories(tmp_dir, ec);
    if (core::SaveSemanticModel(*built, tmp_dir).ok()) {
      std::filesystem::rename(tmp_dir, cache_dir, ec);
      if (ec) std::filesystem::remove_all(tmp_dir, ec);
    }
    return built;
  }();
  return *model;
}

/// Ground-truth labels aligned with a store's items.
inline std::vector<int> StoreLabels(const platform::Marketplace& market,
                                    const collect::DataStore& store) {
  std::vector<int> labels;
  labels.reserve(store.items().size());
  for (const collect::CollectedItem& ci : store.items()) {
    labels.push_back(market.IsFraudItem(ci.item.item_id) ? 1 : 0);
  }
  return labels;
}

}  // namespace cats

#endif  // CATS_TESTS_PLATFORM_TEST_UTIL_H_
