#include "platform/population.h"

#include <gtest/gtest.h>

#include <map>

#include "util/stats.h"

namespace cats::platform {
namespace {

PopulationOptions SmallOptions() {
  PopulationOptions options;
  options.num_benign_users = 5000;
  options.num_hired_users = 300;
  return options;
}

TEST(PopulationTest, SizesAndPartition) {
  Rng rng(1);
  Population pop(SmallOptions(), &rng);
  EXPECT_EQ(pop.users().size(), 5300u);
  EXPECT_EQ(pop.num_benign(), 5000u);
  EXPECT_EQ(pop.num_hired(), 300u);
  for (size_t i = 0; i < pop.num_benign(); ++i) {
    EXPECT_FALSE(pop.user(i).hired);
  }
  for (size_t i = pop.num_benign(); i < pop.users().size(); ++i) {
    EXPECT_TRUE(pop.user(i).hired);
  }
}

TEST(PopulationTest, IdsAreDense) {
  Rng rng(2);
  Population pop(SmallOptions(), &rng);
  for (size_t i = 0; i < pop.users().size(); ++i) {
    EXPECT_EQ(pop.user(i).id, i);
  }
}

TEST(PopulationTest, ExpValuesWithinPaperBounds) {
  Rng rng(3);
  Population pop(SmallOptions(), &rng);
  for (const User& u : pop.users()) {
    EXPECT_GE(u.exp_value, kMinUserExpValue);
    EXPECT_LE(u.exp_value, kMaxUserExpValue);
  }
}

TEST(PopulationTest, HiredUsersLessReliable) {
  Rng rng(4);
  Population pop(SmallOptions(), &rng);
  RunningStats benign, hired;
  size_t hired_at_min = 0;
  for (const User& u : pop.users()) {
    if (u.hired) {
      hired.Add(static_cast<double>(u.exp_value));
      if (u.exp_value == kMinUserExpValue) ++hired_at_min;
    } else {
      benign.Add(static_cast<double>(u.exp_value));
    }
  }
  EXPECT_LT(hired.mean(), benign.mean());
  // A visible point mass at the minimum (paper: 15% of fraud buyers).
  EXPECT_GT(static_cast<double>(hired_at_min) / 300.0, 0.08);
}

TEST(PopulationTest, OverallLowReliabilityFractionNearPaper) {
  // Paper: ~20% of overall users below 2000.
  Rng rng(5);
  PopulationOptions options;
  options.num_benign_users = 20000;
  options.num_hired_users = 0;
  Population pop(options, &rng);
  std::vector<double> exp_values;
  for (const User& u : pop.users()) {
    exp_values.push_back(static_cast<double>(u.exp_value));
  }
  EXPECT_NEAR(FractionBelow(exp_values, 2000.0), 0.20, 0.06);
}

TEST(PopulationTest, NicknamesAnonymized) {
  Rng rng(6);
  Population pop(SmallOptions(), &rng);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_NE(pop.user(i).nickname.find("***"), std::string::npos);
  }
}

TEST(PopulationTest, WeightedHiredSamplingIsSkewed) {
  Rng rng(7);
  Population pop(SmallOptions(), &rng);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[pop.SampleHiredWeighted(&rng)];
  int max_count = 0;
  for (const auto& [id, c] : counts) {
    EXPECT_GE(id, pop.num_benign());  // only hired users
    max_count = std::max(max_count, c);
  }
  // Heavy-tailed activity: the busiest account works far more than average.
  EXPECT_GT(max_count, 30000 / 300 * 5);
}

TEST(PopulationTest, SampleBenignInRange) {
  Rng rng(8);
  Population pop(SmallOptions(), &rng);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(pop.SampleBenign(&rng), pop.num_benign());
  }
}

TEST(PopulationTest, LowReputationSamplerDrawsFromBottomSlice) {
  Rng rng(10);
  Population pop(SmallOptions(), &rng);
  // Compute the 15th percentile of benign exp values.
  std::vector<double> exp_values;
  for (size_t i = 0; i < pop.num_benign(); ++i) {
    exp_values.push_back(static_cast<double>(pop.user(i).exp_value));
  }
  double p15 = Quantile(exp_values, 0.15);
  for (int i = 0; i < 2000; ++i) {
    uint64_t id = pop.SampleBenignLowReputation(&rng);
    EXPECT_LT(id, pop.num_benign());
    EXPECT_LE(static_cast<double>(pop.user(id).exp_value), p15 + 1.0);
  }
}

TEST(PopulationTest, HiredIdsMatchFlag) {
  Rng rng(9);
  Population pop(SmallOptions(), &rng);
  auto ids = pop.hired_ids();
  EXPECT_EQ(ids.size(), 300u);
  for (uint64_t id : ids) EXPECT_TRUE(pop.user(id).hired);
}

}  // namespace
}  // namespace cats::platform
