#include "platform/presets.h"

#include <gtest/gtest.h>

namespace cats::platform {
namespace {

TEST(PresetsTest, D0RatiosMatchTableFour) {
  MarketplaceConfig c = TaobaoD0Config(1.0);
  EXPECT_EQ(c.num_fraud_items, 14000u);
  EXPECT_EQ(c.num_normal_items, 20000u);
}

TEST(PresetsTest, D1RatiosMatchTableFive) {
  MarketplaceConfig c = TaobaoD1Config(1.0);
  EXPECT_EQ(c.num_fraud_items, 18682u);
  EXPECT_EQ(c.num_normal_items, 1461452u);
}

TEST(PresetsTest, EPlatformMatchesSectionFourA) {
  MarketplaceConfig c = EPlatformConfig(1.0);
  EXPECT_EQ(c.num_fraud_items, 10720u);
  EXPECT_EQ(c.num_normal_items, 4500000u - 10720u);
  EXPECT_EQ(c.population.num_hired_users, 1056u);  // the risky-user core
}

TEST(PresetsTest, FiveKBalanced) {
  MarketplaceConfig c = TaobaoFiveKConfig(1.0);
  EXPECT_EQ(c.num_fraud_items, 5000u);
  EXPECT_EQ(c.num_normal_items, 5000u);
}

TEST(PresetsTest, ScalingPreservesClassRatioApproximately) {
  MarketplaceConfig full = TaobaoD1Config(1.0);
  MarketplaceConfig scaled = TaobaoD1Config(0.05);
  double full_ratio = static_cast<double>(full.num_fraud_items) /
                      static_cast<double>(full.num_normal_items);
  double scaled_ratio = static_cast<double>(scaled.num_fraud_items) /
                        static_cast<double>(scaled.num_normal_items);
  EXPECT_NEAR(scaled_ratio, full_ratio, full_ratio * 0.1);
}

TEST(PresetsTest, TinyScaleHasFloors) {
  MarketplaceConfig c = TaobaoD0Config(0.0001);
  EXPECT_GE(c.num_fraud_items, 60u);
  EXPECT_GE(c.num_normal_items, 100u);
  MarketplaceConfig e = EPlatformConfig(0.0001);
  EXPECT_GE(e.num_fraud_items, 400u);
}

TEST(PresetsTest, DistinctSeedsAcrossPresets) {
  EXPECT_NE(TaobaoD0Config(1.0).seed, TaobaoD1Config(1.0).seed);
  EXPECT_NE(TaobaoD1Config(1.0).seed, EPlatformConfig(1.0).seed);
}

TEST(PresetsTest, ConfigsGenerateSuccessfully) {
  // Smoke: all presets can actually generate at tiny scale.
  SyntheticLanguage language(DefaultLanguageOptions());
  for (MarketplaceConfig config :
       {TaobaoD0Config(0.002), TaobaoD1Config(0.0005), EPlatformConfig(0.0001),
        TaobaoFiveKConfig(0.01)}) {
    config.population.num_benign_users =
        std::min<size_t>(config.population.num_benign_users, 3000);
    Marketplace m = Marketplace::Generate(config, &language);
    EXPECT_GT(m.items().size(), 0u) << config.name;
    EXPECT_GT(m.comments().size(), 0u) << config.name;
    EXPECT_GT(m.NumFraudItems(), 0u) << config.name;
  }
}

}  // namespace
}  // namespace cats::platform
