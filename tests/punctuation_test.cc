#include "text/punctuation.h"

#include <gtest/gtest.h>

#include "text/utf8.h"

namespace cats::text {
namespace {

TEST(PunctuationTest, AsciiMarks) {
  for (char c : std::string("!\"#,.:;?()[]{}@~")) {
    EXPECT_TRUE(IsPunctuation(static_cast<uint32_t>(c))) << c;
  }
  for (char c : std::string("abcXYZ019 ")) {
    EXPECT_FALSE(IsPunctuation(static_cast<uint32_t>(c))) << c;
  }
}

TEST(PunctuationTest, CjkMarks) {
  // ，。！？、：；…～
  for (uint32_t cp : {0xFF0Cu, 0x3002u, 0xFF01u, 0xFF1Fu, 0x3001u, 0xFF1Au,
                      0xFF1Bu, 0x2026u, 0xFF5Eu}) {
    EXPECT_TRUE(IsPunctuation(cp)) << std::hex << cp;
  }
}

TEST(PunctuationTest, IdeographsAreNotPunctuation) {
  EXPECT_FALSE(IsPunctuation(0x4E2D));
  EXPECT_FALSE(IsPunctuation(0x597D));
}

TEST(PunctuationTest, CountPunctuationMixed) {
  EXPECT_EQ(CountPunctuation(""), 0u);
  EXPECT_EQ(CountPunctuation("plain words"), 0u);
  EXPECT_EQ(CountPunctuation("好评！很好，推荐。"), 3u);
  EXPECT_EQ(CountPunctuation("a,b.c!"), 3u);
}

TEST(PunctuationTest, MarkListIsAllPunctuation) {
  for (uint32_t cp : CjkPunctuationMarks()) {
    EXPECT_TRUE(IsPunctuation(cp)) << std::hex << cp;
  }
  EXPECT_GE(CjkPunctuationMarks().size(), 5u);
}

}  // namespace
}  // namespace cats::text
