#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/stats.h"

namespace cats {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformU32RespectsBound) {
  Rng rng(9);
  for (uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformU32(bound), bound);
  }
}

TEST(RngTest, UniformU32CoversAllResidues) {
  Rng rng(11);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU32(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(static_cast<double>(rng.Geometric(0.25)));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);  // mean = 1/p
  EXPECT_GE(stats.min(), 1.0);
}

TEST(RngTest, PoissonMeanMatchesSmallAndLargeLambda) {
  Rng rng(29);
  for (double lambda : {0.5, 3.0, 50.0}) {
    RunningStats stats;
    for (int i = 0; i < 30000; ++i) {
      stats.Add(static_cast<double>(rng.Poisson(lambda)));
    }
    EXPECT_NEAR(stats.mean(), lambda, lambda * 0.05 + 0.05) << lambda;
  }
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(31);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, GammaMeanMatches) {
  Rng rng(37);
  // mean = shape * scale, including shape < 1 branch.
  for (auto [shape, scale] : {std::pair{0.5, 2.0}, {2.0, 3.0}, {9.0, 0.5}}) {
    RunningStats stats;
    for (int i = 0; i < 40000; ++i) stats.Add(rng.Gamma(shape, scale));
    EXPECT_NEAR(stats.mean(), shape * scale, shape * scale * 0.05) << shape;
    EXPECT_GT(stats.min(), 0.0);
  }
}

TEST(RngTest, BetaInUnitIntervalWithRightMean) {
  Rng rng(41);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) {
    double b = rng.Beta(2.0, 6.0);
    EXPECT_GT(b, 0.0);
    EXPECT_LT(b, 1.0);
    stats.Add(b);
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);  // a/(a+b)
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(43);
  std::vector<double> vals;
  for (int i = 0; i < 20000; ++i) vals.push_back(rng.LogNormal(2.0, 0.7));
  EXPECT_NEAR(Quantile(vals, 0.5), std::exp(2.0), std::exp(2.0) * 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng fork = a.Fork(1);
  // The fork must not replay the parent's stream.
  Rng b(5);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (fork.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(53);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.1);
  double sum = 0.0;
  for (uint32_t k = 0; k < 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostLikely) {
  ZipfDistribution zipf(1000, 1.05);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(10));
  EXPECT_GT(zipf.Pmf(10), zipf.Pmf(999));
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfDistribution zipf(50, 1.2);
  Rng rng(59);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (uint32_t k : {0u, 1u, 5u, 20u}) {
    double expected = zipf.Pmf(k);
    double actual = static_cast<double>(counts[k]) / n;
    EXPECT_NEAR(actual, expected, expected * 0.1 + 0.002) << k;
  }
}

TEST(AliasSamplerTest, MatchesWeights) {
  std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  Rng rng(61);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  for (size_t k = 0; k < 4; ++k) {
    double expected = weights[k] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, expected, 0.01) << k;
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({0.0, 1.0, 0.0, 1.0});
  Rng rng(67);
  for (int i = 0; i < 10000; ++i) {
    uint32_t s = sampler.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler sampler({5.0});
  Rng rng(71);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

}  // namespace
}  // namespace cats
