#include "collect/rate_limiter.h"

#include <gtest/gtest.h>

namespace cats::collect {
namespace {

TEST(FakeClockTest, AdvancesInstantly) {
  FakeClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(RateLimiterTest, BurstPassesWithoutThrottle) {
  FakeClock clock;
  RateLimiter limiter(100.0, 10.0, &clock);
  for (int i = 0; i < 10; ++i) limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), 0);
  EXPECT_EQ(limiter.acquired(), 10u);
}

TEST(RateLimiterTest, ThrottlesBeyondBurst) {
  FakeClock clock;
  RateLimiter limiter(100.0, 5.0, &clock);  // 100/s, burst 5
  for (int i = 0; i < 25; ++i) limiter.Acquire();
  // 20 extra tokens at 10ms each = ~200ms of throttling.
  EXPECT_NEAR(static_cast<double>(limiter.throttled_micros()), 200000.0,
              20000.0);
}

TEST(RateLimiterTest, SteadyStateRateEnforced) {
  FakeClock clock;
  RateLimiter limiter(50.0, 1.0, &clock);
  int64_t start = clock.NowMicros();
  for (int i = 0; i < 101; ++i) limiter.Acquire();
  double elapsed_s = static_cast<double>(clock.NowMicros() - start) / 1e6;
  // 100 post-burst tokens at 50/s = ~2 seconds of virtual time.
  EXPECT_NEAR(elapsed_s, 2.0, 0.1);
}

TEST(RateLimiterTest, RefillAfterIdleRestoresBurst) {
  FakeClock clock;
  RateLimiter limiter(100.0, 5.0, &clock);
  for (int i = 0; i < 5; ++i) limiter.Acquire();
  clock.AdvanceMicros(1'000'000);  // long idle: bucket refills to burst
  int64_t throttled_before = limiter.throttled_micros();
  for (int i = 0; i < 5; ++i) limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), throttled_before);
}

TEST(RateLimiterTest, BucketCapsAtBurst) {
  FakeClock clock;
  RateLimiter limiter(100.0, 3.0, &clock);
  clock.AdvanceMicros(60'000'000);  // huge idle: still only 3 tokens
  for (int i = 0; i < 3; ++i) limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), 0);
  limiter.Acquire();
  EXPECT_GT(limiter.throttled_micros(), 0);
}

TEST(SystemClockTest, MonotoneAndSleeps) {
  SystemClock clock;
  int64_t a = clock.NowMicros();
  clock.AdvanceMicros(2000);
  int64_t b = clock.NowMicros();
  EXPECT_GE(b - a, 1500);
}

}  // namespace
}  // namespace cats::collect
