#include "collect/rate_limiter.h"

#include <gtest/gtest.h>

namespace cats::collect {
namespace {

TEST(FakeClockTest, AdvancesInstantly) {
  FakeClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(RateLimiterTest, BurstPassesWithoutThrottle) {
  FakeClock clock;
  RateLimiter limiter(100.0, 10.0, &clock);
  for (int i = 0; i < 10; ++i) limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), 0);
  EXPECT_EQ(limiter.acquired(), 10u);
}

TEST(RateLimiterTest, ThrottlesBeyondBurst) {
  FakeClock clock;
  RateLimiter limiter(100.0, 5.0, &clock);  // 100/s, burst 5
  for (int i = 0; i < 25; ++i) limiter.Acquire();
  // 20 extra tokens at 10ms each = ~200ms of throttling.
  EXPECT_NEAR(static_cast<double>(limiter.throttled_micros()), 200000.0,
              20000.0);
}

TEST(RateLimiterTest, SteadyStateRateEnforced) {
  FakeClock clock;
  RateLimiter limiter(50.0, 1.0, &clock);
  int64_t start = clock.NowMicros();
  for (int i = 0; i < 101; ++i) limiter.Acquire();
  double elapsed_s = static_cast<double>(clock.NowMicros() - start) / 1e6;
  // 100 post-burst tokens at 50/s = ~2 seconds of virtual time.
  EXPECT_NEAR(elapsed_s, 2.0, 0.1);
}

TEST(RateLimiterTest, RefillAfterIdleRestoresBurst) {
  FakeClock clock;
  RateLimiter limiter(100.0, 5.0, &clock);
  for (int i = 0; i < 5; ++i) limiter.Acquire();
  clock.AdvanceMicros(1'000'000);  // long idle: bucket refills to burst
  int64_t throttled_before = limiter.throttled_micros();
  for (int i = 0; i < 5; ++i) limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), throttled_before);
}

TEST(RateLimiterTest, BucketCapsAtBurst) {
  FakeClock clock;
  RateLimiter limiter(100.0, 3.0, &clock);
  clock.AdvanceMicros(60'000'000);  // huge idle: still only 3 tokens
  for (int i = 0; i < 3; ++i) limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), 0);
  limiter.Acquire();
  EXPECT_GT(limiter.throttled_micros(), 0);
}

TEST(RateLimiterTest, ZeroBurstClampsToOne) {
  FakeClock clock;
  RateLimiter limiter(100.0, 0.0, &clock);  // degenerate burst
  limiter.Acquire();                        // the single clamped token
  EXPECT_EQ(limiter.throttled_micros(), 0);
  limiter.Acquire();
  // Exactly one token's worth of wait at 100/s.
  EXPECT_EQ(limiter.throttled_micros(), 10'000);
}

TEST(RateLimiterTest, NegativeBurstClampsToOne) {
  FakeClock clock;
  RateLimiter limiter(100.0, -7.0, &clock);
  limiter.Acquire();
  limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), 10'000);
}

TEST(RateLimiterTest, NonPositiveRateIsUnlimited) {
  FakeClock clock;
  RateLimiter limiter(0.0, 5.0, &clock);
  for (int i = 0; i < 1000; ++i) limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), 0);
  EXPECT_EQ(clock.NowMicros(), 0);
  EXPECT_EQ(limiter.rate_per_second(), 0.0);
  EXPECT_EQ(limiter.acquired(), 1000u);
}

TEST(RateLimiterTest, SetRateMidStreamKeepsAccountingExact) {
  FakeClock clock;
  RateLimiter limiter(100.0, 1.0, &clock);
  limiter.Acquire();  // burst token, free
  limiter.Acquire();  // one token at 100/s
  EXPECT_EQ(limiter.throttled_micros(), 10'000);
  limiter.SetRate(50.0);  // a 429 storm halved the rate
  limiter.Acquire();      // one token at 50/s
  EXPECT_EQ(limiter.throttled_micros(), 10'000 + 20'000);
  EXPECT_EQ(limiter.rate_per_second(), 50.0);
}

TEST(RateLimiterTest, SetRateSettlesAccruedTokensAtOldRate) {
  FakeClock clock;
  RateLimiter limiter(100.0, 1.0, &clock);
  limiter.Acquire();           // bucket empty
  clock.AdvanceMicros(5'000);  // accrues 0.5 token at the old 100/s
  limiter.SetRate(50.0);
  // The missing 0.5 token is paid at the new 50/s: exactly 10ms.
  limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), 10'000);
}

TEST(RateLimiterTest, SetRateToZeroSwitchesToUnlimited) {
  FakeClock clock;
  RateLimiter limiter(100.0, 1.0, &clock);
  limiter.Acquire();
  limiter.Acquire();
  int64_t throttled = limiter.throttled_micros();
  EXPECT_GT(throttled, 0);
  limiter.SetRate(0.0);
  for (int i = 0; i < 100; ++i) limiter.Acquire();
  EXPECT_EQ(limiter.throttled_micros(), throttled);
}

// An injected slow response advances the shared clock between Acquires —
// the limiter must credit that time as refill, to the exact microsecond.
TEST(RateLimiterTest, SlowResponseLatencyCountsAsRefill) {
  FakeClock clock;
  RateLimiter limiter(100.0, 1.0, &clock);
  limiter.Acquire();            // bucket empty
  clock.AdvanceMicros(20'000);  // slow response: 2 tokens of time (caps at 1)
  limiter.Acquire();            // fully refilled: free
  EXPECT_EQ(limiter.throttled_micros(), 0);
  limiter.Acquire();            // bucket empty again: full wait
  EXPECT_EQ(limiter.throttled_micros(), 10'000);
  clock.AdvanceMicros(4'000);   // slow-ish response: 0.4 token
  limiter.Acquire();            // pays only the remaining 0.6 token
  EXPECT_EQ(limiter.throttled_micros(), 10'000 + 6'000);
}

// --- pacing-sleep coalescing -------------------------------------------

TEST(RateLimiterTest, PacingChunkCoalescesSleepsIntoChunks) {
  FakeClock clock;
  // 1000/s (1ms per token), burst 1, 10ms chunks: requests owing <10ms of
  // sleep run on credit; every ~10th request pays one >=10ms sleep.
  RateLimiter limiter(1000.0, 1.0, &clock, 10'000);
  int sleeps = 0;
  for (int i = 0; i < 100; ++i) {
    int64_t before = clock.NowMicros();
    limiter.Acquire();
    int64_t slept = clock.NowMicros() - before;
    if (slept > 0) {
      ++sleeps;
      EXPECT_GE(slept, 10'000);  // never a sub-chunk sleep
    }
  }
  EXPECT_GT(sleeps, 0);
  EXPECT_LE(sleeps, 11);  // ~1 sleep per chunk's worth of requests, not 99
}

TEST(RateLimiterTest, PacingChunkPreservesAverageRate) {
  FakeClock clock;
  RateLimiter coalesced(1000.0, 1.0, &clock, 10'000);
  for (int i = 0; i < 501; ++i) coalesced.Acquire();
  // 500 post-burst tokens at 1000/s = ~500ms regardless of sleep shape.
  EXPECT_NEAR(static_cast<double>(clock.NowMicros()), 500'000.0, 11'000.0);
}

TEST(RateLimiterTest, PacingChunkZeroKeepsPerRequestPacing) {
  FakeClock clock;
  RateLimiter limiter(1000.0, 1.0, &clock, 0);
  limiter.Acquire();  // burst token
  int64_t before = clock.NowMicros();
  limiter.Acquire();
  EXPECT_EQ(clock.NowMicros() - before, 1'000);  // classic: sleeps every time
}

TEST(RateLimiterTest, PacingChunkDebtIsBounded) {
  FakeClock clock;
  RateLimiter limiter(1000.0, 1.0, &clock, 10'000);
  for (int i = 0; i < 1000; ++i) limiter.Acquire();
  // Credit can never exceed one chunk's worth of tokens, so a long idle
  // followed by more traffic still starts from at most `burst` tokens.
  clock.AdvanceMicros(60'000'000);
  int64_t before = clock.NowMicros();
  for (int i = 0; i < 12; ++i) limiter.Acquire();
  // 1 burst token + up to 10 on credit; the 12th forces a sleep.
  EXPECT_GE(clock.NowMicros() - before, 10'000);
}

TEST(SystemClockTest, MonotoneAndSleeps) {
  SystemClock clock;
  int64_t a = clock.NowMicros();
  clock.AdvanceMicros(2000);
  int64_t b = clock.NowMicros();
  EXPECT_GE(b - a, 1500);
}

}  // namespace
}  // namespace cats::collect
