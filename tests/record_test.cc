#include "collect/record.h"

#include <gtest/gtest.h>

namespace cats::collect {
namespace {

TEST(RecordTest, ShopRoundTrip) {
  ShopRecord r;
  r.shop_id = 42;
  r.shop_url = "https://shop42.example";
  r.shop_name = "某某店";
  auto parsed = ParseShopRecord(ShopRecordToJson(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->shop_id, 42u);
  EXPECT_EQ(parsed->shop_url, r.shop_url);
  EXPECT_EQ(parsed->shop_name, r.shop_name);
}

TEST(RecordTest, ItemRoundTrip) {
  ItemRecord r;
  r.item_id = 545470505476ull;
  r.item_name = "扫码枪";
  r.price = 99.5;
  r.sales_volume = 1234;
  r.category = "computer & office";
  auto parsed = ParseItemRecord(ItemRecordToJson(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->item_id, r.item_id);
  EXPECT_DOUBLE_EQ(parsed->price, 99.5);
  EXPECT_EQ(parsed->sales_volume, 1234);
  EXPECT_EQ(parsed->category, r.category);
}

TEST(RecordTest, CommentRoundTrip) {
  CommentRecord r;
  r.item_id = 545470505476ull;
  r.comment_id = 40805023517ull;
  r.content = "这个商品很好";
  r.nickname = "0***莉";
  r.user_exp_value = 100;
  r.client = "Android";
  r.date = "2017-09-10 12:10:00";
  auto parsed = ParseCommentRecord(CommentRecordToJson(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->comment_id, r.comment_id);
  EXPECT_EQ(parsed->content, r.content);
  EXPECT_EQ(parsed->user_exp_value, 100);
  EXPECT_EQ(parsed->client, "Android");
  EXPECT_EQ(parsed->date, r.date);
}

TEST(RecordTest, MissingFieldsRejected) {
  auto obj = *JsonValue::Parse(R"({"shop_id":"1"})");
  EXPECT_FALSE(ParseShopRecord(obj).ok());
  auto item = *JsonValue::Parse(R"({"item_id":"1","item_name":"x"})");
  EXPECT_FALSE(ParseItemRecord(item).ok());
}

TEST(RecordTest, NonNumericIdRejected) {
  auto obj = *JsonValue::Parse(
      R"({"shop_id":"abc","shop_url":"u","shop_name":"n"})");
  EXPECT_FALSE(ParseShopRecord(obj).ok());
  auto empty_id = *JsonValue::Parse(
      R"({"shop_id":"","shop_url":"u","shop_name":"n"})");
  EXPECT_FALSE(ParseShopRecord(empty_id).ok());
}

TEST(RecordTest, ParsePageWellFormed) {
  auto page = ParsePage(R"({"page":2,"total_pages":7,"data":[{"a":1},{"b":2}]})");
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->page, 2u);
  EXPECT_EQ(page->total_pages, 7u);
  EXPECT_EQ(page->data.size(), 2u);
}

TEST(RecordTest, ParsePageErrors) {
  EXPECT_FALSE(ParsePage("not json").ok());
  EXPECT_FALSE(ParsePage("[1,2]").ok());                       // not object
  EXPECT_FALSE(ParsePage(R"({"page":0})").ok());               // no totals
  EXPECT_FALSE(
      ParsePage(R"({"page":0,"total_pages":1,"data":{}})").ok());  // data not array
}

}  // namespace
}  // namespace cats::collect
