#include "core/record_validator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "collect/store.h"

namespace cats::core {
namespace {

using collect::CollectedItem;
using collect::CommentRecord;

/// A perfectly healthy record: positive finite price, orders present, two
/// well-formed comments with distinct ids on the right item.
CollectedItem CleanItem() {
  CollectedItem ci;
  ci.item.item_id = 42;
  ci.item.price = 19.99;
  ci.item.sales_volume = 120;
  CommentRecord a;
  a.item_id = 42;
  a.comment_id = 1;
  a.content = "好评很好商品";
  CommentRecord b;
  b.item_id = 42;
  b.comment_id = 2;
  b.content = "quality ok";
  ci.comments = {a, b};
  return ci;
}

TEST(RecordValidatorTest, CleanItemIsClean) {
  RecordValidator validator;
  RecordValidation v = validator.Validate(CleanItem());
  EXPECT_EQ(v.verdict, RecordVerdict::kClean);
  EXPECT_EQ(v.issues, RecordIssue::kNone);
}

TEST(RecordValidatorTest, MissingCommentsIsDegraded) {
  RecordValidator validator;
  CollectedItem ci = CleanItem();
  ci.comments.clear();
  RecordValidation v = validator.Validate(ci);
  EXPECT_EQ(v.verdict, RecordVerdict::kDegraded);
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kMissingComments));
  EXPECT_FALSE(HasIssue(v.issues, RecordIssue::kMissingOrders));
}

TEST(RecordValidatorTest, NegativeSalesVolumeIsDegradedMissingOrders) {
  RecordValidator validator;
  CollectedItem ci = CleanItem();
  ci.item.sales_volume = -1;  // the "field absent" sentinel
  RecordValidation v = validator.Validate(ci);
  EXPECT_EQ(v.verdict, RecordVerdict::kDegraded);
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kMissingOrders));
}

TEST(RecordValidatorTest, ZeroSalesVolumeIsNotMissing) {
  // Zero orders is a legitimate (sad) value, not an absent field.
  RecordValidator validator;
  CollectedItem ci = CleanItem();
  ci.item.sales_volume = 0;
  EXPECT_EQ(validator.Validate(ci).verdict, RecordVerdict::kClean);
}

TEST(RecordValidatorTest, AbsurdPricesArePoison) {
  RecordValidator validator;
  for (double price : {-5.0, 1e9, std::numeric_limits<double>::infinity(),
                       -std::numeric_limits<double>::infinity(),
                       std::nan("")}) {
    CollectedItem ci = CleanItem();
    ci.item.price = price;
    RecordValidation v = validator.Validate(ci);
    EXPECT_EQ(v.verdict, RecordVerdict::kPoison) << "price=" << price;
    EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kAbsurdPrice));
  }
}

TEST(RecordValidatorTest, FreeItemIsNotAbsurd) {
  RecordValidator validator;
  CollectedItem ci = CleanItem();
  ci.item.price = 0.0;  // promotional freebies exist
  EXPECT_EQ(validator.Validate(ci).verdict, RecordVerdict::kClean);
}

TEST(RecordValidatorTest, InvalidUtf8CommentIsPoison) {
  RecordValidator validator;
  CollectedItem ci = CleanItem();
  ci.comments[1].content = std::string("ok\xFE") + "\x80";
  RecordValidation v = validator.Validate(ci);
  EXPECT_EQ(v.verdict, RecordVerdict::kPoison);
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kCorruptCommentText));
}

TEST(RecordValidatorTest, OversizedCommentIsPoison) {
  RecordValidatorOptions options;
  options.max_comment_bytes = 64;
  RecordValidator validator(options);
  CollectedItem ci = CleanItem();
  ci.comments[0].content = std::string(65, 'a');
  RecordValidation v = validator.Validate(ci);
  EXPECT_EQ(v.verdict, RecordVerdict::kPoison);
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kOversizedComment));
  // An oversized body is not additionally reported as corrupt text even if
  // its bytes happen to be garbage — size is checked first.
  ci.comments[0].content = std::string(65, '\xFE');
  v = validator.Validate(ci);
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kOversizedComment));
  EXPECT_FALSE(HasIssue(v.issues, RecordIssue::kCorruptCommentText));
}

TEST(RecordValidatorTest, DuplicateCommentIdsArePoison) {
  RecordValidator validator;
  CollectedItem ci = CleanItem();
  ci.comments[1].comment_id = ci.comments[0].comment_id;
  RecordValidation v = validator.Validate(ci);
  EXPECT_EQ(v.verdict, RecordVerdict::kPoison);
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kDuplicateCommentIds));
}

TEST(RecordValidatorTest, MismatchedItemIdIsPoison) {
  RecordValidator validator;
  CollectedItem ci = CleanItem();
  ci.comments[1].item_id = 43;  // claims a different item
  RecordValidation v = validator.Validate(ci);
  EXPECT_EQ(v.verdict, RecordVerdict::kPoison);
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kMismatchedItemId));
}

TEST(RecordValidatorTest, PoisonWinsOverDegraded) {
  // A record with both a missing field and poison content must be
  // quarantined, not imputed.
  RecordValidator validator;
  CollectedItem ci = CleanItem();
  ci.item.sales_volume = -1;
  ci.item.price = 1e12;
  RecordValidation v = validator.Validate(ci);
  EXPECT_EQ(v.verdict, RecordVerdict::kPoison);
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kMissingOrders));
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kAbsurdPrice));
}

TEST(RecordValidatorTest, MultipleIssuesAccumulate) {
  RecordValidator validator;
  CollectedItem ci = CleanItem();
  ci.comments[0].content = "\xFF\xFF";
  ci.comments[1].comment_id = ci.comments[0].comment_id;
  RecordValidation v = validator.Validate(ci);
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kCorruptCommentText));
  EXPECT_TRUE(HasIssue(v.issues, RecordIssue::kDuplicateCommentIds));
}

TEST(RecordValidatorTest, OptionsControlThresholds) {
  RecordValidatorOptions options;
  options.max_price = 50.0;
  RecordValidator validator(options);
  CollectedItem ci = CleanItem();
  ci.item.price = 60.0;
  EXPECT_EQ(validator.Validate(ci).verdict, RecordVerdict::kPoison);
  ci.item.price = 50.0;
  EXPECT_EQ(validator.Validate(ci).verdict, RecordVerdict::kClean);
}

TEST(RecordValidatorTest, IssuesToStringNamesEveryBit) {
  EXPECT_EQ(RecordIssuesToString(RecordIssue::kNone), "none");
  EXPECT_EQ(RecordIssuesToString(RecordIssue::kMissingComments),
            "missing_comments");
  std::string combo = RecordIssuesToString(RecordIssue::kAbsurdPrice |
                                           RecordIssue::kDuplicateCommentIds);
  EXPECT_NE(combo.find("absurd_price"), std::string::npos);
  EXPECT_NE(combo.find("duplicate_comment_ids"), std::string::npos);
  EXPECT_NE(combo.find('|'), std::string::npos);
}

TEST(RecordValidatorTest, VerdictNames) {
  EXPECT_EQ(RecordVerdictName(RecordVerdict::kClean), "clean");
  EXPECT_EQ(RecordVerdictName(RecordVerdict::kDegraded), "degraded");
  EXPECT_EQ(RecordVerdictName(RecordVerdict::kPoison), "poison");
}

TEST(QuarantineTest, ContainsFindsEntries) {
  Quarantine q;
  EXPECT_TRUE(q.empty());
  q.entries.push_back({7, RecordIssue::kAbsurdPrice});
  q.entries.push_back({9, RecordIssue::kCorruptCommentText});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.Contains(7));
  EXPECT_TRUE(q.Contains(9));
  EXPECT_FALSE(q.Contains(8));
}

}  // namespace
}  // namespace cats::core
