#include "drift/retrain_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "fault/clock.h"

namespace cats {
namespace {

using drift::DriftStatus;
using drift::RetrainScheduler;
using drift::RetrainSchedulerOptions;

collect::CollectedItem LabeledItem(uint64_t id) {
  collect::CollectedItem item;
  item.item.item_id = id;
  return item;
}

RetrainSchedulerOptions SmallOptions() {
  RetrainSchedulerOptions options;
  options.window_capacity = 32;
  options.min_examples = 8;
  options.cooldown_micros = 1000;
  return options;
}

TEST(RetrainSchedulerTest, StableAndWarningDoNotFire) {
  fault::FakeClock clock;
  int calls = 0;
  RetrainScheduler scheduler(SmallOptions(), &clock,
                             [&](const auto&, const auto&) {
                               ++calls;
                               return Status::OK();
                             });
  for (int i = 0; i < 16; ++i) scheduler.AddLabeled(LabeledItem(i), i % 2);
  EXPECT_FALSE(scheduler.Tick(DriftStatus::kStable).attempted);
  EXPECT_FALSE(scheduler.Tick(DriftStatus::kWarning).attempted);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(scheduler.attempts(), 0u);
}

TEST(RetrainSchedulerTest, DriftedFiresWithWindowCopy) {
  fault::FakeClock clock;
  std::vector<collect::CollectedItem> seen_items;
  std::vector<int> seen_labels;
  RetrainScheduler scheduler(
      SmallOptions(), &clock,
      [&](const std::vector<collect::CollectedItem>& items,
          const std::vector<int>& labels) {
        seen_items = items;
        seen_labels = labels;
        return Status::OK();
      });
  for (int i = 0; i < 10; ++i) scheduler.AddLabeled(LabeledItem(i), i % 2);
  auto outcome = scheduler.Tick(DriftStatus::kDrifted);
  EXPECT_TRUE(outcome.attempted);
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(scheduler.attempts(), 1u);
  EXPECT_EQ(scheduler.successes(), 1u);
  EXPECT_EQ(scheduler.rejections(), 0u);
  ASSERT_EQ(seen_items.size(), 10u);
  ASSERT_EQ(seen_labels.size(), 10u);
  EXPECT_EQ(seen_items.front().item.item_id, 0u);
  EXPECT_EQ(seen_items.back().item.item_id, 9u);
}

TEST(RetrainSchedulerTest, NeedsMinExamples) {
  fault::FakeClock clock;
  int calls = 0;
  RetrainScheduler scheduler(SmallOptions(), &clock,
                             [&](const auto&, const auto&) {
                               ++calls;
                               return Status::OK();
                             });
  for (int i = 0; i < 7; ++i) scheduler.AddLabeled(LabeledItem(i), 0);
  EXPECT_FALSE(scheduler.Tick(DriftStatus::kDrifted).attempted);
  EXPECT_EQ(calls, 0);
  scheduler.AddLabeled(LabeledItem(7), 1);  // reaches min_examples == 8
  EXPECT_TRUE(scheduler.Tick(DriftStatus::kDrifted).attempted);
  EXPECT_EQ(calls, 1);
}

TEST(RetrainSchedulerTest, CooldownSpacesAttempts) {
  fault::FakeClock clock;
  int calls = 0;
  RetrainSchedulerOptions options = SmallOptions();
  RetrainScheduler scheduler(options, &clock,
                             [&](const auto&, const auto&) {
                               ++calls;
                               return Status::OK();
                             });
  for (int i = 0; i < 16; ++i) scheduler.AddLabeled(LabeledItem(i), i % 2);
  EXPECT_TRUE(scheduler.Tick(DriftStatus::kDrifted).attempted);
  // Still drifted one instant later: cooldown suppresses the thrash.
  EXPECT_FALSE(scheduler.Tick(DriftStatus::kDrifted).attempted);
  clock.AdvanceMicros(options.cooldown_micros - 1);
  EXPECT_FALSE(scheduler.Tick(DriftStatus::kDrifted).attempted);
  clock.AdvanceMicros(1);
  EXPECT_TRUE(scheduler.Tick(DriftStatus::kDrifted).attempted);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(scheduler.attempts(), 2u);
}

TEST(RetrainSchedulerTest, RejectedCandidateCountsAndCoolsDown) {
  fault::FakeClock clock;
  RetrainSchedulerOptions options = SmallOptions();
  RetrainScheduler scheduler(
      options, &clock, [&](const auto&, const auto&) {
        return Status::FailedPrecondition("candidate failed the probe");
      });
  for (int i = 0; i < 16; ++i) scheduler.AddLabeled(LabeledItem(i), i % 2);
  auto outcome = scheduler.Tick(DriftStatus::kDrifted);
  EXPECT_TRUE(outcome.attempted);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(scheduler.rejections(), 1u);
  EXPECT_EQ(scheduler.successes(), 0u);
  // A failing retrain must not spin: the cooldown still applies.
  EXPECT_FALSE(scheduler.Tick(DriftStatus::kDrifted).attempted);
  clock.AdvanceMicros(options.cooldown_micros);
  EXPECT_TRUE(scheduler.Tick(DriftStatus::kDrifted).attempted);
  EXPECT_EQ(scheduler.rejections(), 2u);
}

TEST(RetrainSchedulerTest, WarningTriggerIsOptIn) {
  fault::FakeClock clock;
  int calls = 0;
  RetrainSchedulerOptions options = SmallOptions();
  options.retrain_on_warning = true;
  RetrainScheduler scheduler(options, &clock,
                             [&](const auto&, const auto&) {
                               ++calls;
                               return Status::OK();
                             });
  for (int i = 0; i < 16; ++i) scheduler.AddLabeled(LabeledItem(i), i % 2);
  EXPECT_FALSE(scheduler.Tick(DriftStatus::kStable).attempted);
  EXPECT_TRUE(scheduler.Tick(DriftStatus::kWarning).attempted);
  EXPECT_EQ(calls, 1);
}

TEST(RetrainSchedulerTest, WindowEvictsOldestFirst) {
  fault::FakeClock clock;
  std::vector<collect::CollectedItem> seen_items;
  RetrainSchedulerOptions options = SmallOptions();
  options.window_capacity = 8;
  RetrainScheduler scheduler(
      options, &clock,
      [&](const std::vector<collect::CollectedItem>& items,
          const std::vector<int>&) {
        seen_items = items;
        return Status::OK();
      });
  for (int i = 0; i < 20; ++i) scheduler.AddLabeled(LabeledItem(i), i % 2);
  EXPECT_EQ(scheduler.window_size(), 8u);
  ASSERT_TRUE(scheduler.Tick(DriftStatus::kDrifted).attempted);
  ASSERT_EQ(seen_items.size(), 8u);
  // The retained window is the most recent ids 12..19, oldest first.
  EXPECT_EQ(seen_items.front().item.item_id, 12u);
  EXPECT_EQ(seen_items.back().item.item_id, 19u);
}

}  // namespace
}  // namespace cats
