#include "core/rule_filter.h"

#include <gtest/gtest.h>

namespace cats::core {
namespace {

collect::CollectedItem MakeItem(int64_t sales, size_t comments) {
  collect::CollectedItem item;
  item.item.item_id = 1;
  item.item.sales_volume = sales;
  for (size_t i = 0; i < comments; ++i) {
    collect::CommentRecord c;
    c.content = "x";
    item.comments.push_back(c);
  }
  return item;
}

FeatureVector WithSignal(float positives, float ngrams) {
  FeatureVector f{};
  f[static_cast<size_t>(FeatureId::kAveragePositiveNumber)] = positives;
  f[static_cast<size_t>(FeatureId::kAverageNgramNumber)] = ngrams;
  return f;
}

TEST(RuleFilterTest, KeepsQualifyingItem) {
  RuleFilter filter;
  EXPECT_EQ(filter.Evaluate(MakeItem(10, 3), WithSignal(1.0f, 0.0f)),
            FilterReason::kKept);
}

TEST(RuleFilterTest, LowSalesFiltered) {
  RuleFilter filter;  // default min 5 (paper)
  EXPECT_EQ(filter.Evaluate(MakeItem(4, 3), WithSignal(1.0f, 1.0f)),
            FilterReason::kLowSales);
  EXPECT_EQ(filter.Evaluate(MakeItem(5, 3), WithSignal(1.0f, 1.0f)),
            FilterReason::kKept);
}

TEST(RuleFilterTest, NoPositiveSignalFiltered) {
  RuleFilter filter;
  EXPECT_EQ(filter.Evaluate(MakeItem(10, 3), WithSignal(0.0f, 0.0f)),
            FilterReason::kNoPositiveSignal);
  // Either positives or positive n-grams suffice.
  EXPECT_EQ(filter.Evaluate(MakeItem(10, 3), WithSignal(0.0f, 0.5f)),
            FilterReason::kKept);
}

TEST(RuleFilterTest, NoCommentsFiltered) {
  RuleFilter filter;
  EXPECT_EQ(filter.Evaluate(MakeItem(10, 0), WithSignal(1.0f, 1.0f)),
            FilterReason::kNoComments);
}

TEST(RuleFilterTest, SignalRuleCanBeDisabled) {
  RuleFilterOptions options;
  options.require_positive_signal = false;
  RuleFilter filter(options);
  EXPECT_EQ(filter.Evaluate(MakeItem(10, 3), WithSignal(0.0f, 0.0f)),
            FilterReason::kKept);
}

TEST(RuleFilterTest, CustomSalesThreshold) {
  RuleFilterOptions options;
  options.min_sales_volume = 100;
  RuleFilter filter(options);
  EXPECT_EQ(filter.Evaluate(MakeItem(99, 3), WithSignal(1.0f, 1.0f)),
            FilterReason::kLowSales);
}

TEST(RuleFilterTest, FilterIndicesSelectsKeepers) {
  RuleFilter filter;
  std::vector<collect::CollectedItem> items{
      MakeItem(10, 3),  // kept
      MakeItem(2, 3),   // low sales
      MakeItem(10, 3),  // no signal
      MakeItem(10, 0),  // no comments
      MakeItem(50, 1),  // kept
  };
  std::vector<FeatureVector> features{
      WithSignal(1.0f, 0.0f), WithSignal(1.0f, 0.0f), WithSignal(0.0f, 0.0f),
      WithSignal(1.0f, 0.0f), WithSignal(0.0f, 2.0f),
  };
  EXPECT_EQ(filter.FilterIndices(items, features),
            (std::vector<size_t>{0, 4}));
}

}  // namespace
}  // namespace cats::core
