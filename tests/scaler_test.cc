#include "ml/scaler.h"

#include <gtest/gtest.h>

#include "ml_test_util.h"
#include "util/stats.h"

namespace cats::ml {
namespace {

TEST(ScalerTest, FitEmptyFails) {
  StandardScaler scaler;
  Dataset empty({"x"});
  EXPECT_FALSE(scaler.Fit(empty).ok());
  EXPECT_FALSE(scaler.fitted());
}

TEST(ScalerTest, TransformedColumnsAreStandardized) {
  Dataset data = MakeGaussianDataset(500, 3, 5.0, 13);
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(data).ok());
  EXPECT_TRUE(scaler.fitted());
  Dataset scaled = scaler.Transform(data);
  for (size_t f = 0; f < 3; ++f) {
    RunningStats stats;
    for (double v : scaled.Column(f)) stats.Add(v);
    EXPECT_NEAR(stats.mean(), 0.0, 1e-5) << f;
    EXPECT_NEAR(stats.stddev(), 1.0, 1e-4) << f;
  }
}

TEST(ScalerTest, ConstantFeatureSafe) {
  Dataset data({"c", "v"});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        data.AddRow({5.0f, static_cast<float>(i)}, i % 2).ok());
  }
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(data).ok());
  Dataset scaled = scaler.Transform(data);
  // No NaN/inf: constant column maps to 0.
  for (size_t i = 0; i < scaled.num_rows(); ++i) {
    EXPECT_EQ(scaled.Value(i, 0), 0.0f);
  }
}

TEST(ScalerTest, TransformRowMatchesTransform) {
  Dataset data = MakeGaussianDataset(50, 2, 2.0, 17);
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(data).ok());
  Dataset scaled = scaler.Transform(data);
  std::vector<float> row(data.Row(7), data.Row(7) + 2);
  scaler.TransformRow(row.data());
  EXPECT_FLOAT_EQ(row[0], scaled.Value(7, 0));
  EXPECT_FLOAT_EQ(row[1], scaled.Value(7, 1));
}

TEST(ScalerTest, LabelsPreserved) {
  Dataset data = MakeGaussianDataset(20, 2, 2.0, 19);
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(data).ok());
  Dataset scaled = scaler.Transform(data);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(scaled.Label(i), data.Label(i));
  }
}

}  // namespace
}  // namespace cats::ml
