// Differential battery for the token-id hot path: for every corpus string,
// every dictionary and every SegmenterOptions combination, the trie-backed
// IdSegmenter must emit a token sequence whose reconstructed bytes are
// IDENTICAL to the legacy FMM Segmenter's output — token for token, byte
// for byte. Also pins the id-space invariants the downstream id tables
// rely on (per-item id<->bytes bijection, dict ids = sorted index) and the
// CommentStructure fast path against AnalyzeStructure.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "platform_test_util.h"
#include "text/id_segmenter.h"
#include "text/segmenter.h"
#include "text/text_stats.h"
#include "text/token_ids.h"
#include "text/utf8.h"
#include "util/random.h"

namespace cats::text {
namespace {

const SegmenterOptions kAllOptionCombos[] = {
    {.emit_punctuation = false, .emit_oov_chars = true},   // extractor default
    {.emit_punctuation = false, .emit_oov_chars = false},  // word2vec corpus
    {.emit_punctuation = true, .emit_oov_chars = true},
    {.emit_punctuation = true, .emit_oov_chars = false},
};

std::string OptionsLabel(const SegmenterOptions& options) {
  return std::string("punct=") + (options.emit_punctuation ? "1" : "0") +
         " oov=" + (options.emit_oov_chars ? "1" : "0");
}

/// The core differential check: legacy tokens == reconstructed id tokens,
/// plus the per-item bijection (same bytes <=> same id) and structure stats.
/// Segmenters are passed in (not rebuilt per input) so corpora of thousands
/// of strings share one trie build.
void ExpectIdenticalSegmentation(const Segmenter& legacy,
                                 const IdSegmenter& id_segmenter,
                                 const std::string& input) {
  SCOPED_TRACE(OptionsLabel(id_segmenter.options()) + " input_bytes=" +
               std::to_string(input.size()));
  TokenArena arena;

  const std::vector<std::string> expected = legacy.Segment(input);
  CommentStructure structure;
  auto ids = id_segmenter.SegmentToIds(input, &arena, &structure);

  ASSERT_EQ(ids.size(), expected.size());
  std::map<uint32_t, std::string> id_to_bytes;
  std::map<std::string, uint32_t> bytes_to_id;
  for (size_t i = 0; i < ids.size(); ++i) {
    const std::string text = id_segmenter.TokenText(ids[i], arena);
    ASSERT_EQ(text, expected[i]) << "token " << i;
    // Bijection within the item: one id per byte string, one byte string
    // per id. (This is what lets the sentiment/lexicon id tables replace
    // string hashing without changing any count.)
    auto [it1, fresh1] = id_to_bytes.emplace(ids[i], text);
    if (!fresh1) {
      EXPECT_EQ(it1->second, text);
    }
    auto [it2, fresh2] = bytes_to_id.emplace(text, ids[i]);
    if (!fresh2) {
      EXPECT_EQ(it2->second, ids[i]);
    }
    // Dict ids must be the index of the token in the sorted word list.
    if (IsDictId(ids[i])) {
      ASSERT_LT(ids[i], id_segmenter.dict_words().size());
      EXPECT_EQ(id_segmenter.dict_words()[ids[i]], text);
    }
  }

  const CommentStructure reference = AnalyzeStructure(input);
  EXPECT_EQ(structure.codepoint_length, reference.codepoint_length);
  EXPECT_EQ(structure.punctuation_count, reference.punctuation_count);
  EXPECT_EQ(structure.punctuation_ratio, reference.punctuation_ratio);
}

void RunCorpus(const SegmentationDictionary& dict,
               const std::vector<std::string>& corpus) {
  for (const SegmenterOptions& options : kAllOptionCombos) {
    const Segmenter legacy(&dict, options);
    const IdSegmenter id_segmenter(dict, options);
    for (const std::string& input : corpus) {
      ExpectIdenticalSegmentation(legacy, id_segmenter, input);
    }
  }
}

SegmentationDictionary MakeDict(const std::vector<std::string>& words) {
  SegmentationDictionary dict;
  for (const std::string& w : words) dict.AddWord(w);
  return dict;
}

std::string Cjk(std::initializer_list<uint32_t> cps) {
  std::string out;
  for (uint32_t cp : cps) AppendCodepoint(cp, &out);
  return out;
}

TEST(SegmenterDiffTest, OverlappingPrefixChains) {
  // a, ab, abc, abcd — every prefix is itself a word; FMM must take the
  // longest at each position and the trie must agree even when the chain
  // is broken mid-way ("abce": match "abc", then OOV 'e').
  SegmentationDictionary dict =
      MakeDict({"a", "ab", "abc", "abcd", "bcd", "cd", "d"});
  RunCorpus(dict, {
                      "abcd", "abcde", "abce", "aabbccdd", "dcba",
                      "ababab", "abcdabcd", "abcabd", "a", "abcdd",
                  });
  // Same shape in 3-byte CJK: 中 / 中国 / 中国人 chains.
  SegmentationDictionary cjk = MakeDict({
      Cjk({0x4E2D}),                   // 中
      Cjk({0x4E2D, 0x56FD}),           // 中国
      Cjk({0x4E2D, 0x56FD, 0x4EBA}),   // 中国人
      Cjk({0x56FD, 0x4EBA}),           // 国人
      Cjk({0x4EBA}),                   // 人
  });
  RunCorpus(cjk, {
                     Cjk({0x4E2D, 0x56FD, 0x4EBA}),
                     Cjk({0x4E2D, 0x56FD, 0x4EBA, 0x4EBA}),
                     Cjk({0x4E2D, 0x56FD, 0x6C11}),  // dies after 中国
                     Cjk({0x56FD, 0x4EBA, 0x4E2D}),
                     Cjk({0x4E2D, 0x4E2D, 0x4E2D}),
                 });
}

TEST(SegmenterDiffTest, LongestMatchTieBreaking) {
  // Two words of equal codepoint length from the same start ("ab" cannot
  // tie with itself, but byte-length vs codepoint-length ties can: "ab"
  // (2 bytes, 2 cps) vs 中 (3 bytes, 1 cp) from overlapping positions),
  // plus window capping: a long word whose prefix is also a word.
  SegmentationDictionary dict = MakeDict({
      "ab",
      "ab" + Cjk({0x4E2D}),
      Cjk({0x4E2D}) + "ab",
      Cjk({0x4E2D}),
      "abab",
      "ababab",
  });
  RunCorpus(dict, {
                      "ab" + Cjk({0x4E2D}) + "ab",
                      "ababab",
                      "abababab",
                      Cjk({0x4E2D}) + "ababab",
                      "ab" + Cjk({0x4E2D}) + Cjk({0x4E2D}) + "ab",
                  });
}

TEST(SegmenterDiffTest, MixedWidthUtf8Words) {
  // Dictionary mixing 1-byte ASCII, 2-byte Latin, 3-byte CJK and 4-byte
  // emoji codepoints — matches must land on codepoint boundaries even
  // though the trie walks bytes.
  SegmentationDictionary dict = MakeDict({
      "ok",
      Cjk({0xE9}) + "t" + Cjk({0xE9}),          // été (2-byte é)
      Cjk({0x4E2D, 0x6587}),                    // 中文
      Cjk({0x1F600}),                           // 😀
      Cjk({0x1F600, 0x1F601}),                  // 😀😁
      "a" + Cjk({0x4E2D}) + Cjk({0x1F600}),     // a中😀
  });
  RunCorpus(dict, {
                      "ok" + Cjk({0xE9}) + "t" + Cjk({0xE9}) +
                          Cjk({0x4E2D, 0x6587}),
                      Cjk({0x1F600, 0x1F601, 0x1F600}),
                      "a" + Cjk({0x4E2D}) + Cjk({0x1F600}) + "ok",
                      Cjk({0x1F600}) + "x" + Cjk({0x1F601}),
                      Cjk({0x6587, 0x4E2D}),  // reversed: both OOV
                  });
}

TEST(SegmenterDiffTest, OovRunsAndEmptyInputs) {
  SegmentationDictionary dict = MakeDict({Cjk({0x4E2D, 0x56FD})});
  RunCorpus(dict, {
                      "",
                      " ",
                      " \t\n\r ",
                      Cjk({0x3000, 0x3000}),  // ideographic spaces only
                      "zzzzzz",               // pure ASCII OOV run
                      Cjk({0x9999, 0x8888, 0x7777}),  // pure CJK OOV run
                      "   " + Cjk({0x4E2D, 0x56FD}) + "   ",
                      Cjk({0x4E2D}) + " " + Cjk({0x56FD}),  // split by space
                      "!?。，" + Cjk({0x4E2D, 0x56FD}) + "。。。",
                  });
}

TEST(SegmenterDiffTest, MalformedBytesAgreeAndInternCorrectly) {
  SegmentationDictionary dict = MakeDict({"ab", Cjk({0x4E2D, 0x56FD})});
  const std::string truncated_3byte("\xE4\xB8", 2);
  const std::string stray_continuation("\x80", 1);
  const std::string overlong_slash("\xC0\xAF", 2);
  const std::string surrogate("\xED\xA0\x80", 3);   // U+D800 raw
  const std::string beyond_max("\xF4\x90\x80\x80", 4);
  const std::string canonical_fffd = EncodeCodepoint(kReplacementChar);
  RunCorpus(dict, {
                      truncated_3byte,
                      stray_continuation + stray_continuation,
                      "ab" + truncated_3byte,
                      overlong_slash + "ab" + overlong_slash,
                      surrogate + Cjk({0x4E2D, 0x56FD}) + surrogate,
                      beyond_max,
                      canonical_fffd + stray_continuation + canonical_fffd,
                      std::string("\xFF\xFE", 2) + "ab",
                      Cjk({0x4E2D}) + std::string("\xE4", 1),  // cut mid-word
                  });

  // Two distinct malformed slices that both decode to U+FFFD must get
  // DIFFERENT ids (their bytes differ), while the canonical U+FFFD gets
  // the codepoint id — otherwise reconstruction could not be byte-exact.
  SegmenterOptions options;  // defaults: oov on
  IdSegmenter id_segmenter(dict, options);
  TokenArena arena;
  const std::string input =
      stray_continuation + canonical_fffd + overlong_slash +
      stray_continuation;
  auto ids = id_segmenter.SegmentToIds(input, &arena);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_TRUE(IsIrregularId(ids[0]));
  EXPECT_EQ(ids[1], IdOfCodepoint(kReplacementChar));
  EXPECT_TRUE(IsIrregularId(ids[2]));
  EXPECT_NE(ids[0], ids[2]);
  EXPECT_EQ(ids[3], ids[0]);  // same bytes, same arena-local id
  EXPECT_EQ(arena.num_irregular(), 2u);
}

TEST(SegmenterDiffTest, FullSimulatorVocabularySelfSegmentation) {
  // Every dictionary word, segmented alone and in pairs, under all option
  // combos. The pairs catch cross-word boundary effects (a word whose
  // suffix plus the next word's prefix forms a third word).
  const SegmentationDictionary dict =
      cats::TestLanguage().BuildSegmentationDictionary();
  std::vector<std::string> corpus(dict.words().begin(), dict.words().end());
  Rng rng(0x5E6);
  const std::vector<std::string> words = corpus;
  for (int i = 0; i < 400; ++i) {
    const std::string& a =
        words[rng.UniformU32(static_cast<uint32_t>(words.size()))];
    const std::string& b =
        words[rng.UniformU32(static_cast<uint32_t>(words.size()))];
    corpus.push_back(a + b);
  }
  RunCorpus(dict, corpus);
}

TEST(SegmenterDiffTest, RealGeneratedCommentsAllIdentical) {
  // The strongest end-of-pipe corpus: every comment the shared test store
  // crawled (spam and benign, with punctuation and homographs), under all
  // four option combos.
  const SegmentationDictionary dict =
      cats::TestLanguage().BuildSegmentationDictionary();
  std::vector<std::string> corpus;
  for (const auto& item : cats::TestStore().items()) {
    for (const auto& comment : item.comments) {
      corpus.push_back(comment.content);
    }
  }
  ASSERT_GT(corpus.size(), 100u);
  RunCorpus(dict, corpus);
}

TEST(SegmenterDiffTest, ArenaSpansStayContiguousAcrossComments) {
  // Multi-comment accumulation: spans recorded per comment must tile the
  // flat column exactly, in order, with no gaps — the property the
  // extractor's single-scan accumulation rests on.
  const SegmentationDictionary dict =
      cats::TestLanguage().BuildSegmentationDictionary();
  IdSegmenter id_segmenter(dict, SegmenterOptions{});
  Segmenter legacy(&dict, SegmenterOptions{});
  TokenArena arena;
  std::vector<TokenSpan> spans;
  std::vector<std::string> comments;
  for (const auto& item : cats::TestStore().items()) {
    if (item.comments.size() < 3) continue;
    for (const auto& comment : item.comments) {
      comments.push_back(comment.content);
    }
    break;
  }
  ASSERT_GE(comments.size(), 3u);
  for (const std::string& comment : comments) {
    const size_t begin = arena.BeginComment();
    id_segmenter.SegmentToIds(comment, &arena);
    spans.push_back(arena.EndComment(begin));
  }
  size_t expected_offset = 0;
  for (size_t i = 0; i < comments.size(); ++i) {
    EXPECT_EQ(spans[i].offset, expected_offset);
    expected_offset += spans[i].length;
    const std::vector<std::string> expected = legacy.Segment(comments[i]);
    auto ids = arena.SpanOf(spans[i]);
    ASSERT_EQ(ids.size(), expected.size());
    for (size_t t = 0; t < ids.size(); ++t) {
      EXPECT_EQ(id_segmenter.TokenText(ids[t], arena), expected[t]);
    }
  }
  EXPECT_EQ(expected_offset, arena.ids().size());
}

}  // namespace
}  // namespace cats::text
