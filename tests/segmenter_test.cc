#include "text/segmenter.h"

#include <gtest/gtest.h>

namespace cats::text {
namespace {

SegmentationDictionary MakeDict(std::initializer_list<const char*> words) {
  SegmentationDictionary dict;
  for (const char* w : words) dict.AddWord(w);
  return dict;
}

TEST(DictionaryTest, TracksMaxWordLength) {
  SegmentationDictionary dict;
  EXPECT_EQ(dict.max_word_codepoints(), 0u);
  dict.AddWord("好");
  EXPECT_EQ(dict.max_word_codepoints(), 1u);
  dict.AddWord("好评如潮");
  EXPECT_EQ(dict.max_word_codepoints(), 4u);
  dict.AddWord("中文");
  EXPECT_EQ(dict.max_word_codepoints(), 4u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, IgnoresEmptyAndDeduplicates) {
  SegmentationDictionary dict;
  dict.AddWord("");
  dict.AddWord("好");
  dict.AddWord("好");
  EXPECT_EQ(dict.size(), 1u);
}

TEST(SegmenterTest, ForwardMaximumMatchingPrefersLongest) {
  // "中国人" with dict {中, 中国, 中国人} -> one token "中国人".
  SegmentationDictionary dict = MakeDict({"中", "中国", "中国人"});
  Segmenter seg(&dict);
  EXPECT_EQ(seg.Segment("中国人"),
            (std::vector<std::string>{"中国人"}));
}

TEST(SegmenterTest, GreedyFmmSemantics) {
  // FMM takes 中国 then 人民 — the canonical greedy behaviour.
  SegmentationDictionary dict = MakeDict({"中国", "人民", "国人"});
  Segmenter seg(&dict);
  EXPECT_EQ(seg.Segment("中国人民"),
            (std::vector<std::string>{"中国", "人民"}));
}

TEST(SegmenterTest, OovFallsBackToSingleChars) {
  SegmentationDictionary dict = MakeDict({"好评"});
  Segmenter seg(&dict);
  EXPECT_EQ(seg.Segment("好评差评"),
            (std::vector<std::string>{"好评", "差", "评"}));
}

TEST(SegmenterTest, OovDroppedWhenDisabled) {
  SegmentationDictionary dict = MakeDict({"好评"});
  SegmenterOptions options;
  options.emit_oov_chars = false;
  Segmenter seg(&dict, options);
  EXPECT_EQ(seg.Segment("好评差"), (std::vector<std::string>{"好评"}));
}

TEST(SegmenterTest, PunctuationSkippedByDefault) {
  SegmentationDictionary dict = MakeDict({"很好", "商品"});
  Segmenter seg(&dict);
  EXPECT_EQ(seg.Segment("商品，很好！"),
            (std::vector<std::string>{"商品", "很好"}));
}

TEST(SegmenterTest, PunctuationEmittedWhenEnabled) {
  SegmentationDictionary dict = MakeDict({"很好"});
  SegmenterOptions options;
  options.emit_punctuation = true;
  Segmenter seg(&dict, options);
  EXPECT_EQ(seg.Segment("很好！"),
            (std::vector<std::string>{"很好", "！"}));
}

TEST(SegmenterTest, WhitespaceAlwaysSkipped) {
  SegmentationDictionary dict = MakeDict({"ab", "cd"});
  Segmenter seg(&dict);
  EXPECT_EQ(seg.Segment("ab cd\t ab\ncd"),
            (std::vector<std::string>{"ab", "cd", "ab", "cd"}));
}

TEST(SegmenterTest, EmptyInput) {
  SegmentationDictionary dict = MakeDict({"x"});
  Segmenter seg(&dict);
  EXPECT_TRUE(seg.Segment("").empty());
}

TEST(SegmenterTest, EmptyDictionarySingleCharFallback) {
  SegmentationDictionary dict;
  Segmenter seg(&dict);
  EXPECT_EQ(seg.Segment("中文"), (std::vector<std::string>{"中", "文"}));
}

TEST(SegmenterTest, MatchAtEndOfString) {
  SegmentationDictionary dict = MakeDict({"结尾", "词"});
  Segmenter seg(&dict);
  EXPECT_EQ(seg.Segment("x结尾"), (std::vector<std::string>{"x", "结尾"}));
}

TEST(SegmenterTest, SegmentationIsLosslessOverDictionaryText) {
  // Property: segmenting a concatenation of dictionary words and removing
  // nothing reconstructs the input (no punctuation involved).
  SegmentationDictionary dict = MakeDict({"好评", "商品", "很", "推荐"});
  Segmenter seg(&dict);
  std::string input = "好评商品很推荐好评";
  std::string reconstructed;
  for (const std::string& t : seg.Segment(input)) reconstructed += t;
  EXPECT_EQ(reconstructed, input);
}

using SegmenterParamTest = ::testing::TestWithParam<const char*>;

TEST_P(SegmenterParamTest, ConcatenationOfTokensPreservesNonSkippedBytes) {
  // Property across inputs: every emitted token is a substring of the
  // input and tokens appear in order.
  SegmentationDictionary dict =
      MakeDict({"好评", "差评", "商品", "不错", "很好", "推荐", "质量"});
  Segmenter seg(&dict);
  std::string input = GetParam();
  size_t cursor = 0;
  for (const std::string& token : seg.Segment(input)) {
    size_t pos = input.find(token, cursor);
    ASSERT_NE(pos, std::string::npos) << token;
    cursor = pos + token.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, SegmenterParamTest,
    ::testing::Values("好评商品不错", "质量很好，推荐！", "差评差评差评",
                      "abc好评xyz", "，，，", "好评 很好\t推荐"));

}  // namespace
}  // namespace cats::text
