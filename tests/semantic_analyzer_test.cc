#include "core/semantic_analyzer.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "platform_test_util.h"

namespace cats::core {
namespace {

TEST(SemanticAnalyzerTest, EmptyCorpusFails) {
  SemanticAnalyzer analyzer;
  auto r = analyzer.Build({}, text::SegmentationDictionary(), {"好"}, {"差"},
                          {{"好", true}, {"差", false}});
  EXPECT_FALSE(r.ok());
}

TEST(SemanticAnalyzerTest, MissingSeedsFail) {
  SemanticAnalyzer analyzer;
  auto r = analyzer.Build({"好评"}, text::SegmentationDictionary(), {}, {"差"},
                          {{"好", true}, {"差", false}});
  EXPECT_FALSE(r.ok());
}

TEST(SemanticAnalyzerTest, BuildsFullModelFromPlatformCorpus) {
  // The shared TestSemanticModel is built through SemanticAnalyzer.
  const SemanticModel& model = cats::TestSemanticModel();
  EXPECT_GT(model.dictionary.size(), 1000u);
  EXPECT_GE(model.positive.size(), 3u);
  EXPECT_GE(model.negative.size(), 3u);
  EXPECT_TRUE(model.sentiment.trained());
}

TEST(SemanticAnalyzerTest, ExpandedLexiconsMostlyCorrectPolarity) {
  const SemanticModel& model = cats::TestSemanticModel();
  const auto& lang = cats::TestLanguage();
  size_t pos_correct = 0, pos_total = 0;
  for (const std::string& w : model.positive.SortedWords()) {
    ++pos_total;
    if (lang.PolarityOf(w) == platform::Polarity::kPositive) ++pos_correct;
  }
  // word2vec expansion at unit-test corpus scale (~50k tokens) is noisy
  // but must be far better than the ~8% base rate of positive vocabulary;
  // bench-scale corpora reach much higher purity (see EXPERIMENTS.md).
  EXPECT_GT(static_cast<double>(pos_correct) / pos_total, 0.25);

  size_t neg_correct = 0, neg_total = 0;
  for (const std::string& w : model.negative.SortedWords()) {
    ++neg_total;
    if (lang.PolarityOf(w) == platform::Polarity::kNegative) ++neg_correct;
  }
  EXPECT_GT(static_cast<double>(neg_correct) / neg_total, 0.25);
}

TEST(SemanticAnalyzerTest, DiscoversHomographs) {
  // The Table-I phenomenon: codepoint-swapped spam aliases of positive
  // seeds end up in the positive lexicon because they share contexts.
  const SemanticModel& model = cats::TestSemanticModel();
  const auto& lang = cats::TestLanguage();
  size_t found = 0, total = 0;
  for (const auto& w : lang.words()) {
    if (!w.spam_homograph) continue;
    ++total;
    if (model.positive.Contains(w.text)) ++found;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(found, 0u) << "no homograph discovered by lexicon expansion";
}

TEST(SemanticAnalyzerTest, SentimentModelSeparatesPolarity) {
  const SemanticModel& model = cats::TestSemanticModel();
  const auto& lang = cats::TestLanguage();
  std::vector<std::string> pos_doc, neg_doc;
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    pos_doc.push_back(lang.word(lang.SamplePositive(&rng)).text);
    neg_doc.push_back(lang.word(lang.SampleNegative(&rng)).text);
  }
  EXPECT_GT(model.sentiment.Score(pos_doc), 0.6);
  EXPECT_LT(model.sentiment.Score(neg_doc), 0.4);
}

TEST(SemanticAnalyzerTest, SegmentHelperUsesDictionary) {
  const SemanticModel& model = cats::TestSemanticModel();
  const auto& lang = cats::TestLanguage();
  std::string text = lang.word(0).text + lang.word(1).text;
  auto tokens = model.Segment(text);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], lang.word(0).text);
}

TEST(SemanticAnalyzerTest, SemanticModelPersistenceRoundTrip) {
  auto dir = std::filesystem::temp_directory_path() /
             ("cats_semmodel_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  const SemanticModel& original = cats::TestSemanticModel();
  ASSERT_TRUE(SaveSemanticModel(original, dir.string()).ok());
  auto loaded = LoadSemanticModel(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->dictionary.size(), original.dictionary.size());
  EXPECT_EQ(loaded->positive.SortedWords(), original.positive.SortedWords());
  EXPECT_EQ(loaded->negative.SortedWords(), original.negative.SortedWords());
  // Sentiment scores identical on sampled documents.
  const auto& lang = cats::TestLanguage();
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::vector<std::string> doc;
    for (int k = 0; k < 8; ++k) {
      doc.push_back(lang.word(lang.SampleAny(&rng)).text);
    }
    EXPECT_NEAR(loaded->sentiment.Score(doc), original.sentiment.Score(doc),
                1e-12);
  }
  std::filesystem::remove_all(dir);
}

TEST(SemanticAnalyzerTest, LoadFromMissingDirFails) {
  EXPECT_FALSE(LoadSemanticModel("/nonexistent_dir_zzz").ok());
}

TEST(SemanticAnalyzerTest, MultithreadedWord2VecStillLearnsStructure) {
  // Hogwild training is not bit-reproducible but must still produce a
  // usable embedding (the paper's TensorFlow training is parallel too).
  const auto& market = cats::TestMarketplace();
  std::vector<std::string> corpus;
  for (const platform::Comment& c : market.comments()) {
    corpus.push_back(c.content);
  }
  core::SemanticAnalyzerOptions options;
  options.word2vec.epochs = 3;
  options.word2vec.dim = 32;
  options.word2vec.num_threads = 4;
  SemanticAnalyzer analyzer(options);
  auto model = analyzer.Build(
      corpus, cats::TestLanguage().BuildSegmentationDictionary(),
      cats::TestLanguage().PositiveSeeds(3),
      cats::TestLanguage().NegativeSeeds(3),
      market.BuildSentimentCorpus(1000, 5));
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->positive.size(), 3u);
  EXPECT_GE(model->negative.size(), 3u);
}

TEST(SemanticAnalyzerTest, ParallelSegmentationMatchesSerialBuild) {
  // Build's segmentation fan-out preserves output order, so with word2vec
  // itself pinned to one thread the whole model is identical for any
  // analyzer worker count.
  const auto& market = cats::TestMarketplace();
  std::vector<std::string> corpus;
  for (const platform::Comment& c : market.comments()) {
    corpus.push_back(c.content);
  }
  core::SemanticAnalyzerOptions options;
  options.word2vec.epochs = 2;
  options.word2vec.dim = 16;
  options.word2vec.num_threads = 1;  // Hogwild off: embedding deterministic
  options.num_threads = 1;
  SemanticAnalyzer serial(options);
  options.num_threads = 4;
  SemanticAnalyzer parallel(options);

  auto sentiment_corpus = market.BuildSentimentCorpus(600, 7);
  auto dictionary = cats::TestLanguage().BuildSegmentationDictionary();
  auto a = serial.Build(corpus, dictionary,
                        cats::TestLanguage().PositiveSeeds(3),
                        cats::TestLanguage().NegativeSeeds(3),
                        sentiment_corpus);
  auto b = parallel.Build(corpus, dictionary,
                          cats::TestLanguage().PositiveSeeds(3),
                          cats::TestLanguage().NegativeSeeds(3),
                          sentiment_corpus);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_EQ(a->positive.SortedWords(), b->positive.SortedWords());
  EXPECT_EQ(a->negative.SortedWords(), b->negative.SortedWords());
  const auto& lang = cats::TestLanguage();
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> doc;
    for (int k = 0; k < 8; ++k) {
      doc.push_back(lang.word(lang.SampleAny(&rng)).text);
    }
    EXPECT_NEAR(a->sentiment.Score(doc), b->sentiment.Score(doc), 1e-12);
  }
}

}  // namespace
}  // namespace cats::core
