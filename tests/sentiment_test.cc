#include "nlp/sentiment.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/csv.h"

namespace cats::nlp {
namespace {

std::vector<SentimentExample> ToyCorpus() {
  std::vector<SentimentExample> examples;
  auto add = [&examples](std::vector<std::string> tokens, bool positive) {
    examples.push_back(SentimentExample{std::move(tokens), positive});
  };
  for (int i = 0; i < 20; ++i) {
    add({"good", "great", "item"}, true);
    add({"nice", "good", "quality"}, true);
    add({"bad", "terrible", "item"}, false);
    add({"awful", "bad", "quality"}, false);
  }
  return examples;
}

TEST(SentimentTest, UntrainedReturnsPrior) {
  SentimentModel model;
  EXPECT_DOUBLE_EQ(model.Score({"anything"}), 0.5);
  EXPECT_FALSE(model.trained());
}

TEST(SentimentTest, TrainRequiresBothClasses) {
  SentimentModel model;
  std::vector<SentimentExample> only_pos{{{"good"}, true}};
  EXPECT_FALSE(model.Train(only_pos).ok());
}

TEST(SentimentTest, PolarityOrdering) {
  SentimentModel model;
  ASSERT_TRUE(model.Train(ToyCorpus()).ok());
  double positive = model.Score({"good", "great"});
  double negative = model.Score({"bad", "terrible"});
  double mixed = model.Score({"good", "bad"});
  EXPECT_GT(positive, 0.8);
  EXPECT_LT(negative, 0.2);
  EXPECT_GT(positive, mixed);
  EXPECT_GT(mixed, negative);
  EXPECT_NEAR(mixed, 0.5, 0.15);
}

TEST(SentimentTest, ScoreInUnitInterval) {
  SentimentModel model;
  ASSERT_TRUE(model.Train(ToyCorpus()).ok());
  for (const auto& tokens :
       std::vector<std::vector<std::string>>{{"good"},
                                             {"bad"},
                                             {"item"},
                                             {"unknown_word"},
                                             {"good", "good", "good"}}) {
    double s = model.Score(tokens);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(SentimentTest, EmptyTokensReturnsPrior) {
  SentimentModel model;
  ASSERT_TRUE(model.Train(ToyCorpus()).ok());
  EXPECT_DOUBLE_EQ(model.Score({}), 0.5);
}

TEST(SentimentTest, UnknownWordsNearNeutral) {
  SentimentModel model;
  ASSERT_TRUE(model.Train(ToyCorpus()).ok());
  EXPECT_NEAR(model.Score({"zzz", "qqq"}), 0.5, 0.1);
}

TEST(SentimentTest, NeutralWordNearZeroLogOdds) {
  SentimentModel model;
  ASSERT_TRUE(model.Train(ToyCorpus()).ok());
  EXPECT_GT(model.WordLogOdds("good"), 0.5);
  EXPECT_LT(model.WordLogOdds("bad"), -0.5);
  EXPECT_NEAR(model.WordLogOdds("item"), 0.0, 0.2);
}

TEST(SentimentTest, LengthNormalizationKeepsLongDocsGraded) {
  SentimentOptions raw_options;
  raw_options.length_normalize = false;
  SentimentModel raw(raw_options);
  SentimentModel normalized;  // default normalizes
  ASSERT_TRUE(raw.Train(ToyCorpus()).ok());
  ASSERT_TRUE(normalized.Train(ToyCorpus()).ok());

  // A long, mostly-positive document: the raw model saturates harder than
  // the normalized one.
  std::vector<std::string> long_doc;
  for (int i = 0; i < 30; ++i) long_doc.push_back("good");
  long_doc.push_back("bad");
  double raw_score = raw.Score(long_doc);
  double norm_score = normalized.Score(long_doc);
  EXPECT_GT(raw_score, norm_score);
  EXPECT_GT(norm_score, 0.5);
}

TEST(SentimentTest, ScoreRawSaturatesOnLongDocs) {
  SentimentModel model;  // defaults length-normalize Score()
  ASSERT_TRUE(model.Train(ToyCorpus()).ok());
  std::vector<std::string> long_pos(40, "good");
  std::vector<std::string> long_neg(40, "bad");
  EXPECT_GT(model.ScoreRaw(long_pos), 0.999);
  EXPECT_LT(model.ScoreRaw(long_neg), 0.001);
  // The normalized score stays graded.
  EXPECT_LT(model.Score(long_pos), model.ScoreRaw(long_pos) + 1e-12);
  // Raw and normalized agree on the side of 0.5.
  EXPECT_GT(model.Score(long_pos), 0.5);
  EXPECT_LT(model.Score(long_neg), 0.5);
}

TEST(SentimentTest, ScoreRawEqualsScoreWhenNormalizationOff) {
  SentimentOptions options;
  options.length_normalize = false;
  SentimentModel model(options);
  ASSERT_TRUE(model.Train(ToyCorpus()).ok());
  std::vector<std::string> doc{"good", "item", "bad", "good"};
  EXPECT_DOUBLE_EQ(model.Score(doc), model.ScoreRaw(doc));
}

TEST(SentimentTest, PriorShiftsScores) {
  SentimentOptions options;
  options.prior_positive = 0.9;
  SentimentModel model(options);
  ASSERT_TRUE(model.Train(ToyCorpus()).ok());
  EXPECT_GT(model.Score({}), 0.5);
}

TEST(SentimentTest, SaveLoadRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "cats_sent_test.model")
          .string();
  SentimentModel model;
  ASSERT_TRUE(model.Train(ToyCorpus()).ok());
  ASSERT_TRUE(model.Save(path).ok());

  auto loaded = SentimentModel::Load(path);
  ASSERT_TRUE(loaded.ok());
  for (const auto& tokens : std::vector<std::vector<std::string>>{
           {"good", "great"}, {"bad"}, {"item", "quality"}}) {
    EXPECT_NEAR(loaded->Score(tokens), model.Score(tokens), 1e-9);
  }
  std::filesystem::remove(path);
}

class SentimentCorruptFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("cats_sent_corrupt_" + std::to_string(::getpid()) + ".model"))
                .string();
    SentimentModel model;
    ASSERT_TRUE(model.Train(ToyCorpus()).ok());
    ASSERT_TRUE(model.Save(path_).ok());
    auto content = ReadFileToString(path_);
    ASSERT_TRUE(content.ok());
    clean_ = *content;
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void ExpectRejected(const std::string& content, const char* why) {
    ASSERT_TRUE(WriteStringToFile(path_, content).ok());
    auto loaded = SentimentModel::Load(path_);
    ASSERT_FALSE(loaded.ok()) << why;
    EXPECT_NE(loaded.status().message().find(path_), std::string::npos)
        << why << ": error must name the file: "
        << loaded.status().ToString();
  }

  std::string path_;
  std::string clean_;
};

TEST_F(SentimentCorruptFileTest, TruncationsAreRejected) {
  for (size_t keep : {clean_.size() / 4, clean_.size() / 2,
                      3 * clean_.size() / 4}) {
    ExpectRejected(clean_.substr(0, keep), "truncated");
  }
}

TEST_F(SentimentCorruptFileTest, TrailingGarbageIsRejected) {
  ExpectRejected(clean_ + "stray 1 2\n", "trailing garbage");
}

TEST_F(SentimentCorruptFileTest, FlippedMagicIsRejected) {
  std::string flipped = clean_;
  flipped[0] ^= 0x01;
  ExpectRejected(flipped, "bit-flipped magic");
}

TEST_F(SentimentCorruptFileTest, ImplausibleOptionsAreRejected) {
  ExpectRejected("cats-sentiment-v1\n0 0.5 1\n1 1 0\n", "zero smoothing");
  ExpectRejected("cats-sentiment-v1\n1 1.5 1\n1 1 0\n", "prior past 1");
  ExpectRejected("cats-sentiment-v1\nnan 0.5 1\n1 1 0\n", "nan smoothing");
}

TEST_F(SentimentCorruptFileTest, InflatedVocabCountIsRejected) {
  // A flipped digit in the vocab count claims more words than the file
  // holds — must read as truncation, not silently under-fill.
  size_t header_end = clean_.find('\n', clean_.find('\n') + 1);
  ASSERT_NE(header_end, std::string::npos);
  size_t counts_end = clean_.find('\n', header_end + 1);
  ASSERT_NE(counts_end, std::string::npos);
  std::string counts_line =
      clean_.substr(header_end + 1, counts_end - header_end - 1);
  std::string inflated = clean_;
  inflated.replace(header_end + 1, counts_line.size(), counts_line + "9");
  ExpectRejected(inflated, "inflated vocab count");
}

TEST(SentimentTest, SavedBytesAreCanonical) {
  // unordered_map iteration order is not stable across processes; the
  // sorted save must produce identical bytes for identically trained
  // models (the model MANIFEST's bit-identical round-trip rests on this).
  std::string a = (std::filesystem::temp_directory_path() /
                   ("cats_sent_canon_a_" + std::to_string(::getpid())))
                      .string();
  std::string b = (std::filesystem::temp_directory_path() /
                   ("cats_sent_canon_b_" + std::to_string(::getpid())))
                      .string();
  SentimentModel first;
  ASSERT_TRUE(first.Train(ToyCorpus()).ok());
  ASSERT_TRUE(first.Save(a).ok());
  auto loaded = SentimentModel::Load(a);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->Save(b).ok());
  auto bytes_a = ReadFileToString(a);
  auto bytes_b = ReadFileToString(b);
  ASSERT_TRUE(bytes_a.ok() && bytes_b.ok());
  EXPECT_EQ(*bytes_a, *bytes_b);
  std::filesystem::remove(a);
  std::filesystem::remove(b);
}

TEST(SentimentTest, SaveUntrainedFails) {
  SentimentModel model;
  EXPECT_FALSE(model.Save("/tmp/should_not_exist.model").ok());
}

TEST(SentimentTest, LoadMissingFails) {
  EXPECT_FALSE(SentimentModel::Load("/nonexistent/sent.model").ok());
}

}  // namespace
}  // namespace cats::nlp
