// Chaos battery for the serving plane: crawl a store through hostile
// transport AND data faults, then push every dirty item through a ServeLoop
// squeezed down to a capacity-1 admission queue from several client threads
// at once, retrying typed overloads, with control requests interleaved.
// Under a deadlock watchdog the books must balance exactly — every Submit
// answered exactly once, ServeStats invariants hold to the unit — and the
// served quarantine must equal the API's ground-truth poison set id for id.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "collect/crawler.h"
#include "fault/data_fault_plan.h"
#include "fault/fault_plan.h"
#include "platform_test_util.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace cats::serve {
namespace {

using collect::CollectedItem;

/// Aborts loudly if the serving loop wedges instead of hanging the suite.
template <typename Fn>
auto RunWithWatchdog(Fn&& fn) {
  auto future = std::async(std::launch::async, std::forward<Fn>(fn));
  if (future.wait_for(std::chrono::seconds(120)) !=
      std::future_status::ready) {
    std::fprintf(stderr,
                 "serve_chaos_test: serving loop deadlocked (no result "
                 "within 120s watchdog)\n");
    std::fflush(stderr);
    std::abort();
  }
  return future.get();
}

/// A store crawled through hostile transport + data faults: dropped fields,
/// absurd prices, garbled text — the dirtiest input the repo can produce.
struct HostileStore {
  collect::DataStore store;
  std::set<uint64_t> poisoned;
};

HostileStore CrawlHostileStore(uint64_t seed) {
  const platform::Marketplace& market = TestMarketplace();
  collect::FakeClock clock;
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::Hostile();
  api_options.data_faults = fault::DataFaultProfile::Hostile();
  api_options.seed = seed;
  api_options.clock = &clock;
  platform::MarketplaceApi api(&market, api_options);

  collect::CrawlerOptions options;
  options.requests_per_second = 0.0;
  options.max_retries = 12;
  options.backoff_cap_micros = 500'000;
  collect::Crawler crawler(&api, options, &clock);

  HostileStore hostile;
  CATS_CHECK(crawler.Crawl(&hostile.store).ok());
  hostile.poisoned.insert(api.data_poisoned_items().begin(),
                          api.data_poisoned_items().end());
  return hostile;
}

TEST(ServeChaosTest, DirtyStoreThroughCapacityOneQueueBalancesExactly) {
  HostileStore hostile = CrawlHostileStore(31337);
  const std::vector<CollectedItem>& items = hostile.store.items();
  ASSERT_FALSE(items.empty());

  ServeOptions options;
  options.queue_capacity = 1;  // maximum admission pressure
  options.num_workers = 3;
  options.max_batch_requests = 1;
  ServeLoop loop(options);
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());

  // Shared tally, written only under `mu` from response callbacks.
  std::mutex mu;
  std::map<uint64_t, std::string> dispositions;
  std::atomic<uint64_t> score_ok{0};
  std::atomic<uint64_t> score_errors{0};
  std::atomic<uint64_t> overloads_retried{0};
  std::atomic<uint64_t> control_ok{0};

  const int kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<uint32_t> next_id{1};
  std::atomic<size_t> next_item{0};
  auto run_clients = [&] {
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = next_item.fetch_add(1); i < items.size();
             i = next_item.fetch_add(1)) {
          const CollectedItem& item = items[i];
          // Retry typed overloads until the capacity-1 queue admits us —
          // exactly what a well-behaved client of this protocol does.
          for (;;) {
            Message response =
                loop.Call(MakeScoreItemRequest(next_id.fetch_add(1), item));
            if (response.type == MessageType::kOverloaded) {
              overloads_retried.fetch_add(1);
              std::this_thread::sleep_for(std::chrono::microseconds(200));
              continue;
            }
            if (response.type == MessageType::kOk) {
              score_ok.fetch_add(1);
              std::lock_guard<std::mutex> lock(mu);
              dispositions[item.item.item_id] =
                  *response.payload.GetString("disposition");
            } else {
              score_errors.fetch_add(1);
            }
            break;
          }
          // Interleave control traffic through the same hot queue.
          if (i % 7 == static_cast<size_t>(c % 7)) {
            for (;;) {
              Message health =
                  loop.Call(MakeHealthRequest(next_id.fetch_add(1)));
              if (health.type == MessageType::kOverloaded) {
                overloads_retried.fetch_add(1);
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                continue;
              }
              if (health.type == MessageType::kOk) control_ok.fetch_add(1);
              break;
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    return true;
  };
  ASSERT_TRUE(RunWithWatchdog(run_clients));
  loop.Stop(StopMode::kDrain);

  // Hostility changes pacing, never results: every item scored OK.
  EXPECT_EQ(score_errors.load(), 0u);
  EXPECT_EQ(score_ok.load(), items.size());
  EXPECT_GT(control_ok.load(), 0u);

  // The books balance to the unit across every admission outcome.
  const ServeStats& stats = loop.stats();
  EXPECT_EQ(stats.received.load(), stats.accepted.load() +
                                       stats.overload_rejected.load() +
                                       stats.rejected.load());
  EXPECT_EQ(stats.accepted.load(),
            stats.ok.load() + stats.errors.load() + stats.shed.load());
  EXPECT_EQ(stats.overload_rejected.load(), overloads_retried.load());
  EXPECT_EQ(stats.rejected.load(), 0u);
  EXPECT_EQ(stats.shed.load(), 0u);
  EXPECT_EQ(stats.ok.load(), score_ok.load() + control_ok.load());

  // Data poisoning is caught at the door: the served quarantine equals the
  // API's ground-truth poison set exactly, id for id.
  std::set<uint64_t> served_quarantined;
  for (const auto& [item_id, disposition] : dispositions) {
    if (disposition == "quarantined") served_quarantined.insert(item_id);
  }
  EXPECT_EQ(served_quarantined, hostile.poisoned);
}

TEST(ServeChaosTest, SameDirtyStoreServedTwiceGivesIdenticalDispositions) {
  // Serving is deterministic per item even when admission interleaving is
  // not: two passes over the same dirty store agree disposition for
  // disposition and score for score.
  HostileStore hostile = CrawlHostileStore(4242);
  const std::vector<CollectedItem>& items = hostile.store.items();
  ASSERT_FALSE(items.empty());

  ServeOptions options;
  options.queue_capacity = 2;
  options.num_workers = 2;
  ServeLoop loop(options);
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());

  auto serve_pass = [&](uint32_t id_base) {
    std::map<uint64_t, std::pair<std::string, double>> results;
    uint32_t id = id_base;
    for (const CollectedItem& item : items) {
      for (;;) {
        Message response = loop.Call(MakeScoreItemRequest(id++, item));
        if (response.type == MessageType::kOverloaded) continue;
        CATS_CHECK(response.type == MessageType::kOk);
        double score = 0.0;
        if (response.payload.Has("score")) {
          score = *response.payload.GetDouble("score");
        }
        results[item.item.item_id] = {
            *response.payload.GetString("disposition"), score};
        break;
      }
    }
    return results;
  };
  auto first = RunWithWatchdog([&] { return serve_pass(1); });
  auto second = RunWithWatchdog([&] { return serve_pass(1000000); });
  loop.Stop();

  ASSERT_EQ(first.size(), second.size());
  for (const auto& [item_id, outcome] : first) {
    auto it = second.find(item_id);
    ASSERT_NE(it, second.end()) << "item " << item_id;
    EXPECT_EQ(it->second.first, outcome.first) << "item " << item_id;
    EXPECT_DOUBLE_EQ(it->second.second, outcome.second)
        << "item " << item_id;
  }
}

}  // namespace
}  // namespace cats::serve
