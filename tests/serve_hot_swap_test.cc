// Model hot-swap edge cases: a manifest-corrupt candidate is rejected with
// a typed error while the old model keeps serving, swaps commit atomically
// under concurrent scoring load with zero failed requests, and successive
// swaps land strictly ordered generations.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_gateway.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace cats::serve {
namespace {

namespace fs = std::filesystem;

/// Copies the shared test model into a fresh dir the test may mutilate.
std::string CopyModelDir(const std::string& suffix) {
  const fs::path src = TestModelDir();
  const fs::path dst =
      fs::temp_directory_path() /
      ("cats_serve_swap_" + suffix + "_" + std::to_string(::getpid()));
  fs::remove_all(dst);
  fs::create_directories(dst);
  for (const fs::directory_entry& entry : fs::directory_iterator(src)) {
    fs::copy_file(entry.path(), dst / entry.path().filename());
  }
  return dst.string();
}

/// Flips one byte in the middle of `file` inside `dir` — the classic
/// bit-rot the manifest CRC exists to catch.
void FlipByte(const std::string& dir, const std::string& file) {
  const std::string path = dir + "/" + file;
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  ASSERT_GT(size, 0);
  const std::streamoff target = size / 2;
  f.seekg(target);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(target);
  f.write(&byte, 1);
}

TEST(ServeHotSwapTest, CorruptCandidateIsRejectedAndOldModelKeepsServing) {
  ServeLoop loop((ServeOptions()));
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());

  const std::string corrupt_dir = CopyModelDir("corrupt");
  FlipByte(corrupt_dir, "gbdt.model");

  Message response = loop.Call(MakeSwapModelRequest(1, corrupt_dir));
  ASSERT_EQ(response.type, MessageType::kError);
  const Status status = StatusFromErrorPayload(response.payload);
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();

  // Still serving generation 1, and still scoring.
  EXPECT_EQ(loop.model_generation(), 1u);
  Message health = loop.Call(MakeHealthRequest(2));
  ASSERT_EQ(health.type, MessageType::kOk);
  EXPECT_EQ(*health.payload.GetInt("model_generation"), 1);
  Message scored =
      loop.Call(MakeScoreItemRequest(3, TestStore().items().front()));
  EXPECT_EQ(scored.type, MessageType::kOk);

  loop.Stop();
  fs::remove_all(corrupt_dir);
}

TEST(ServeHotSwapTest, MissingCandidateDirIsTypedErrorNotFatal) {
  ServeLoop loop((ServeOptions()));
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());
  Message response =
      loop.Call(MakeSwapModelRequest(1, "/nonexistent/model/dir"));
  ASSERT_EQ(response.type, MessageType::kError);
  EXPECT_EQ(loop.model_generation(), 1u);
  loop.Stop();
}

TEST(ServeHotSwapTest, SwapUnderConcurrentLoadLosesNoRequests) {
  ServeOptions options;
  options.num_workers = 3;
  ServeLoop loop(options);
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());

  const auto& items = TestStore().items();
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<bool> stop{false};

  // Scoring threads hammer Call while the main thread swaps repeatedly.
  std::vector<std::thread> scorers;
  std::atomic<uint32_t> next_id{1000};
  for (int t = 0; t < 3; ++t) {
    scorers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        Message response = loop.Call(MakeScoreItemRequest(
            next_id.fetch_add(1), items[i % items.size()]));
        if (response.type == MessageType::kOk) {
          ok.fetch_add(1);
        } else if (response.type != MessageType::kOverloaded) {
          failed.fetch_add(1);
        }
        i += 3;
      }
    });
  }

  const std::string swap_dir = CopyModelDir("live");
  uint64_t last_generation = 1;
  for (int s = 0; s < 4; ++s) {
    Message response = loop.Call(
        MakeSwapModelRequest(static_cast<uint32_t>(100 + s),
                             s % 2 == 0 ? swap_dir : TestModelDir()));
    ASSERT_EQ(response.type, MessageType::kOk)
        << StatusFromErrorPayload(response.payload).ToString();
    const uint64_t generation =
        static_cast<uint64_t>(*response.payload.GetInt("model_generation"));
    EXPECT_EQ(generation, last_generation + 1);
    last_generation = generation;
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : scorers) t.join();
  loop.Stop();

  // The acceptance bar: swapping under live traffic fails zero requests.
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(loop.model_generation(), 5u);
  fs::remove_all(swap_dir);
}

TEST(ServeHotSwapTest, DoubleSwapOrdersGenerationsStrictly) {
  ServeLoop loop((ServeOptions()));
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());
  Message first = loop.Call(MakeSwapModelRequest(1, TestModelDir()));
  Message second = loop.Call(MakeSwapModelRequest(2, TestModelDir()));
  ASSERT_EQ(first.type, MessageType::kOk);
  ASSERT_EQ(second.type, MessageType::kOk);
  EXPECT_EQ(*first.payload.GetInt("model_generation"), 2);
  EXPECT_EQ(*second.payload.GetInt("model_generation"), 3);
  EXPECT_EQ(loop.model_generation(), 3u);

  // Scores after the double swap carry the final generation.
  Message scored =
      loop.Call(MakeScoreItemRequest(3, TestStore().items().front()));
  ASSERT_EQ(scored.type, MessageType::kOk);
  EXPECT_EQ(*scored.payload.GetInt("model_generation"), 3);
  loop.Stop();
}

TEST(ServeHotSwapTest, GatewayRejectsCorruptCandidateWithoutTouchingState) {
  // Direct gateway test below the ServeLoop: a rejected candidate leaves
  // generation AND the acquired snapshot exactly as they were.
  ModelGateway gateway(TestProbeItems());
  ASSERT_TRUE(gateway.LoadInitial(TestModelDir()).ok());
  EXPECT_EQ(gateway.generation(), 1u);

  const std::string corrupt_dir = CopyModelDir("probe");
  FlipByte(corrupt_dir, "sentiment.model");
  auto outcome = gateway.Swap(corrupt_dir);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(gateway.generation(), 1u);
  EXPECT_EQ(gateway.Acquire()->generation, 1u);
  fs::remove_all(corrupt_dir);
}

}  // namespace
}  // namespace cats::serve
