// ServeLoop behavior: served scores are result-identical to the offline
// Detect path over the same items, comment deltas rescore the merged item,
// control requests answer inline, admission control returns the typed
// overload response instead of queueing unboundedly, and the request
// accounting balances exactly across every outcome.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/cats.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace cats::serve {
namespace {

using collect::CollectedItem;

/// One started loop per fixture, default options.
class ServeLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    loop_ = std::make_unique<ServeLoop>(ServeOptions{});
    ASSERT_TRUE(loop_->Start(TestModelDir(), TestProbeItems()).ok());
  }

  std::unique_ptr<ServeLoop> loop_;
  uint32_t next_id_ = 1;
};

TEST_F(ServeLoopTest, ScoresMatchOfflineDetectOverSameItems) {
  const auto& items = TestStore().items();

  // Ground truth: the same model loaded the same way, run offline.
  core::Cats offline;
  ASSERT_TRUE(offline.LoadModel(TestModelDir()).ok());
  auto report = offline.Detect(items);
  ASSERT_TRUE(report.ok());
  std::map<uint64_t, double> expected_flagged;
  for (const core::Detection& d : report->detections) {
    expected_flagged[d.item_id] = d.score;
  }
  for (const core::Detection& d : report->degraded_detections) {
    expected_flagged[d.item_id] = d.score;
  }
  std::set<uint64_t> expected_quarantined;
  for (const core::QuarantineEntry& e : report->quarantine.entries) {
    expected_quarantined.insert(e.item_id);
  }

  std::map<uint64_t, double> served_flagged;
  std::set<uint64_t> served_quarantined;
  size_t classified = 0;
  for (const CollectedItem& item : items) {
    Message response =
        loop_->Call(MakeScoreItemRequest(next_id_++, item));
    ASSERT_EQ(response.type, MessageType::kOk)
        << StatusFromErrorPayload(response.payload).ToString();
    auto disposition = response.payload.GetString("disposition");
    ASSERT_TRUE(disposition.ok());
    auto generation = response.payload.GetInt("model_generation");
    ASSERT_TRUE(generation.ok());
    EXPECT_EQ(*generation, 1);
    if (*disposition == "quarantined") {
      served_quarantined.insert(item.item.item_id);
      EXPECT_TRUE(response.payload.Has("issues"));
    } else if (*disposition == "classified") {
      ++classified;
      auto score = response.payload.GetDouble("score");
      ASSERT_TRUE(score.ok());
      EXPECT_GE(*score, 0.0);
      EXPECT_LE(*score, 1.0);
      auto flagged = response.payload.Get("flagged");
      ASSERT_NE(flagged, nullptr);
      if (flagged->bool_value()) {
        served_flagged[item.item.item_id] = *score;
      }
    }
  }

  EXPECT_EQ(classified, report->items_classified);
  EXPECT_EQ(served_quarantined, expected_quarantined);
  ASSERT_EQ(served_flagged.size(), expected_flagged.size());
  for (const auto& [item_id, score] : expected_flagged) {
    auto it = served_flagged.find(item_id);
    ASSERT_NE(it, served_flagged.end()) << "item " << item_id;
    EXPECT_DOUBLE_EQ(it->second, score) << "item " << item_id;
  }
}

TEST_F(ServeLoopTest, CommentDeltaRescoresTheMergedItem) {
  // Pick an item with comments so it classifies.
  const CollectedItem* base = nullptr;
  for (const CollectedItem& item : TestStore().items()) {
    if (item.comments.size() >= 4) {
      base = &item;
      break;
    }
  }
  ASSERT_NE(base, nullptr);

  // Serve the item with half its comments, then deliver the rest as a
  // delta; the delta's score must equal a fresh full score of the whole.
  CollectedItem half = *base;
  half.comments.resize(base->comments.size() / 2);
  std::vector<collect::CommentRecord> rest(
      base->comments.begin() +
          static_cast<ptrdiff_t>(half.comments.size()),
      base->comments.end());

  Message first = loop_->Call(MakeScoreItemRequest(next_id_++, half));
  ASSERT_EQ(first.type, MessageType::kOk);
  Message delta = loop_->Call(MakeScoreCommentDeltaRequest(
      next_id_++, base->item.item_id, rest));
  ASSERT_EQ(delta.type, MessageType::kOk);
  Message full = loop_->Call(MakeScoreItemRequest(next_id_++, *base));
  ASSERT_EQ(full.type, MessageType::kOk);

  auto delta_disposition = delta.payload.GetString("disposition");
  auto full_disposition = full.payload.GetString("disposition");
  ASSERT_TRUE(delta_disposition.ok());
  ASSERT_TRUE(full_disposition.ok());
  EXPECT_EQ(*delta_disposition, *full_disposition);
  if (*full_disposition == "classified") {
    auto delta_score = delta.payload.GetDouble("score");
    auto full_score = full.payload.GetDouble("score");
    ASSERT_TRUE(delta_score.ok());
    ASSERT_TRUE(full_score.ok());
    EXPECT_DOUBLE_EQ(*delta_score, *full_score);
  }

  // Redelivering the same delta is a no-op (comment_id dedup): the score
  // must not move.
  Message redelivered = loop_->Call(MakeScoreCommentDeltaRequest(
      next_id_++, base->item.item_id, rest));
  ASSERT_EQ(redelivered.type, MessageType::kOk);
  if (*full_disposition == "classified") {
    EXPECT_DOUBLE_EQ(*redelivered.payload.GetDouble("score"),
                     *full.payload.GetDouble("score"));
  }
}

TEST_F(ServeLoopTest, CommentDeltaForUnknownItemIsTypedNotFound) {
  Message response = loop_->Call(
      MakeScoreCommentDeltaRequest(next_id_++, 999999999, {}));
  ASSERT_EQ(response.type, MessageType::kError);
  EXPECT_EQ(StatusFromErrorPayload(response.payload).code(),
            StatusCode::kNotFound);
}

TEST_F(ServeLoopTest, HealthReportsModelAndQueueState) {
  Message response = loop_->Call(MakeHealthRequest(next_id_++));
  ASSERT_EQ(response.type, MessageType::kOk);
  EXPECT_EQ(*response.payload.GetString("status"), "serving");
  EXPECT_EQ(*response.payload.GetInt("model_generation"), 1);
  EXPECT_EQ(*response.payload.GetString("model_dir"), TestModelDir());
  EXPECT_EQ(*response.payload.GetInt("queue_capacity"),
            static_cast<int64_t>(loop_->options().queue_capacity));
  EXPECT_EQ(*response.payload.GetInt("probe_items"),
            static_cast<int64_t>(TestProbeItems().size()));
}

TEST_F(ServeLoopTest, MetricsReturnsRegistrySnapshot) {
  // Score once so serve.* counters exist and move.
  Message scored = loop_->Call(
      MakeScoreItemRequest(next_id_++, TestStore().items().front()));
  ASSERT_EQ(scored.type, MessageType::kOk);
  Message response = loop_->Call(MakeMetricsRequest(next_id_++));
  ASSERT_EQ(response.type, MessageType::kOk);
  const JsonValue* counters = response.payload.Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_TRUE(counters->Has("serve.requests_received_total"));
  const JsonValue* gauges = response.payload.Get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_TRUE(gauges->Has("serve.slo.p50_micros"));
  EXPECT_TRUE(gauges->Has("serve.slo.p99_micros"));
}

TEST_F(ServeLoopTest, RejectsNonRequestOpcodesBeforeTheQueue) {
  Message bogus;
  bogus.type = MessageType::kOk;  // a response opcode is not submittable
  bogus.request_id = next_id_++;
  Message response = loop_->Call(std::move(bogus));
  ASSERT_EQ(response.type, MessageType::kError);
  EXPECT_EQ(StatusFromErrorPayload(response.payload).code(),
            StatusCode::kInvalidArgument);
  EXPECT_GE(loop_->stats().rejected.load(), 1u);
}

TEST(ServeLoopOverloadTest, FullQueueGetsTypedOverloadResponse) {
  ServeOptions options;
  options.queue_capacity = 1;
  options.num_workers = 1;
  options.retry_after_millis = 31;
  ServeLoop loop(options);
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());

  // Occupy the single worker with a swap (load + probe takes milliseconds),
  // then flood the capacity-1 queue; an overload response must surface.
  loop.Submit(MakeSwapModelRequest(1, TestModelDir()), [](Message) {});
  bool saw_overload = false;
  uint32_t retry_hint = 0;
  const auto& items = TestStore().items();
  for (uint32_t i = 0; i < 10000 && !saw_overload; ++i) {
    loop.Submit(MakeScoreItemRequest(2 + i, items[i % items.size()]),
                [&](Message response) {
                  if (response.type == MessageType::kOverloaded) {
                    saw_overload = true;  // inline callback, same thread
                    retry_hint = static_cast<uint32_t>(
                        *response.payload.GetInt("retry_after_millis"));
                  }
                });
  }
  EXPECT_TRUE(saw_overload);
  EXPECT_EQ(retry_hint, 31u);
  EXPECT_GE(loop.stats().overload_rejected.load(), 1u);

  loop.Stop(StopMode::kDrain);
  const ServeStats& stats = loop.stats();
  EXPECT_EQ(stats.received.load(), stats.accepted.load() +
                                       stats.overload_rejected.load() +
                                       stats.rejected.load());
  EXPECT_EQ(stats.accepted.load(),
            stats.ok.load() + stats.errors.load() + stats.shed.load());
}

TEST(ServeLoopShutdownTest, StopShedAnswersBacklogWithUnavailable) {
  ServeOptions options;
  options.num_workers = 1;
  ServeLoop loop(options);
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());

  // A swap occupies the worker while score requests pile up behind it. It
  // may itself still be queued at Stop time, in which case it too is shed.
  std::atomic<uint64_t> swap_shed{0};
  loop.Submit(MakeSwapModelRequest(1, TestModelDir()),
              [&](Message response) {
                if (response.type == MessageType::kError) {
                  swap_shed.fetch_add(1);
                }
              });
  std::atomic<uint64_t> unavailable{0};
  std::atomic<uint64_t> responses{0};
  const auto& items = TestStore().items();
  const uint32_t submitted = 64;
  for (uint32_t i = 0; i < submitted; ++i) {
    loop.Submit(MakeScoreItemRequest(2 + i, items[i % items.size()]),
                [&](Message response) {
                  responses.fetch_add(1);
                  if (response.type == MessageType::kError &&
                      StatusFromErrorPayload(response.payload).code() ==
                          StatusCode::kUnavailable) {
                    unavailable.fetch_add(1);
                  }
                });
  }
  loop.Stop(StopMode::kShed);

  // Every submitted request got exactly one answer, and everything that
  // was still queued at Stop time was shed with the typed Unavailable.
  const ServeStats& stats = loop.stats();
  EXPECT_EQ(stats.received.load(), submitted + 1u);
  EXPECT_EQ(stats.received.load(), stats.accepted.load() +
                                       stats.overload_rejected.load() +
                                       stats.rejected.load());
  EXPECT_EQ(stats.accepted.load(),
            stats.ok.load() + stats.errors.load() + stats.shed.load());
  EXPECT_EQ(stats.shed.load(), unavailable.load() + swap_shed.load());
  // Every submitted request (all but the callback-less swap) answered
  // exactly once — ok, typed shed, or typed overload, never silence.
  EXPECT_EQ(responses.load(), submitted);

  // After Stop, submissions are refused inline with a typed error.
  Message late = loop.Call(MakeHealthRequest(99999));
  ASSERT_EQ(late.type, MessageType::kError);
  EXPECT_EQ(StatusFromErrorPayload(late.payload).code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace cats::serve
