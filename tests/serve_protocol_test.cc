// The serving wire format: frame round-trips through arbitrary chunking,
// typed rejection of every malformed-header class, and — because the
// protocol is a documented public surface — byte-for-byte parity between
// src/serve/protocol.h and the frame table committed in docs/SERVING.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace cats::serve {
namespace {

Message SampleRequest() {
  Message m;
  m.type = MessageType::kScoreItem;
  m.request_id = 0xdeadbeef;
  m.payload = JsonValue::Object();
  m.payload.Set("item_id", JsonValue::Int(42));
  return m;
}

TEST(ServeProtocolTest, RoundTripsEveryMessageType) {
  for (MessageType type :
       {MessageType::kScoreItem, MessageType::kScoreCommentDelta,
        MessageType::kHealth, MessageType::kMetrics, MessageType::kSwapModel,
        MessageType::kOk, MessageType::kError, MessageType::kOverloaded}) {
    Message in;
    in.type = type;
    in.request_id = 7;
    in.payload = JsonValue::Object();
    in.payload.Set("k", JsonValue::String("v"));

    FrameReader reader;
    reader.Feed(EncodeFrame(in));
    auto out = reader.Next();
    ASSERT_TRUE(out.ok()) << MessageTypeName(type);
    EXPECT_EQ(out->type, type);
    EXPECT_EQ(out->request_id, 7u);
    ASSERT_NE(out->payload.Get("k"), nullptr);
    EXPECT_EQ(out->payload.Get("k")->string_value(), "v");
    EXPECT_EQ(reader.buffered_bytes(), 0u);
  }
}

TEST(ServeProtocolTest, DecodesByteAtATime) {
  const std::string frame = EncodeFrame(SampleRequest());
  FrameReader reader;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.Feed(std::string_view(&frame[i], 1));
    auto message = reader.Next();
    ASSERT_FALSE(message.ok());
    EXPECT_EQ(message.status().code(), StatusCode::kNotFound)
        << "byte " << i << ": needing more bytes is NotFound, not an error";
  }
  reader.Feed(std::string_view(&frame[frame.size() - 1], 1));
  auto message = reader.Next();
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(message->request_id, 0xdeadbeefu);
}

TEST(ServeProtocolTest, DecodesPipelinedFramesFromOneBuffer) {
  Message a = SampleRequest();
  a.request_id = 1;
  Message b = SampleRequest();
  b.request_id = 2;
  FrameReader reader;
  reader.Feed(EncodeFrame(a) + EncodeFrame(b));
  auto first = reader.Next();
  auto second = reader.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->request_id, 1u);
  EXPECT_EQ(second->request_id, 2u);
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kNotFound);
}

// Compaction is amortized, not per-frame: a pipelined blob of 10k frames
// decodes with O(bytes / kCompactThresholdBytes) buffer moves, never O(N).
// A per-frame erase would turn this decode quadratic — the regression this
// test pins down.
TEST(ServeProtocolTest, TenThousandPipelinedFramesCompactAmortized) {
  constexpr uint32_t kFrames = 10'000;
  std::string blob;
  for (uint32_t i = 0; i < kFrames; ++i) {
    Message m = SampleRequest();
    m.request_id = i;
    blob += EncodeFrame(m);
  }

  FrameReader reader;
  reader.Feed(blob);
  for (uint32_t i = 0; i < kFrames; ++i) {
    auto message = reader.Next();
    ASSERT_TRUE(message.ok()) << "frame " << i;
    EXPECT_EQ(message->request_id, i);
  }
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reader.buffered_bytes(), 0u);

  // The whole blob may cost at most one compaction per threshold's worth
  // of consumed bytes (plus the final free clear, which is not counted).
  const uint64_t max_compactions =
      blob.size() / FrameReader::kCompactThresholdBytes + 1;
  EXPECT_LE(reader.compactions(), max_compactions)
      << "compaction ran per-frame instead of amortized";
}

// The same blob trickled in irregular chunks: decoded messages and the
// compaction bound are identical to the single-Feed case.
TEST(ServeProtocolTest, ChunkedPipelinedBlobKeepsAmortizedCompaction) {
  constexpr uint32_t kFrames = 2'000;
  std::string blob;
  for (uint32_t i = 0; i < kFrames; ++i) {
    Message m = SampleRequest();
    m.request_id = i;
    blob += EncodeFrame(m);
  }

  FrameReader reader;
  uint32_t decoded = 0;
  size_t offset = 0;
  size_t chunk = 1;
  while (offset < blob.size()) {
    const size_t take = std::min(chunk, blob.size() - offset);
    reader.Feed(std::string_view(blob.data() + offset, take));
    offset += take;
    chunk = chunk * 3 + 1;  // irregular, growing chunk sizes
    while (true) {
      auto message = reader.Next();
      if (!message.ok()) {
        ASSERT_EQ(message.status().code(), StatusCode::kNotFound);
        break;
      }
      EXPECT_EQ(message->request_id, decoded);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, kFrames);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
  EXPECT_LE(reader.compactions(),
            blob.size() / FrameReader::kCompactThresholdBytes + 1);
}

TEST(ServeProtocolTest, RejectsBadMagic) {
  std::string frame = EncodeFrame(SampleRequest());
  frame[0] = 'X';
  FrameReader reader;
  reader.Feed(frame);
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kParseError);
}

TEST(ServeProtocolTest, RejectsVersionSkew) {
  std::string frame = EncodeFrame(SampleRequest());
  frame[4] = static_cast<char>(kProtocolVersion + 1);
  FrameReader reader;
  reader.Feed(frame);
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServeProtocolTest, RejectsUnknownOpcode) {
  std::string frame = EncodeFrame(SampleRequest());
  frame[5] = 0x7f;
  FrameReader reader;
  reader.Feed(frame);
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kParseError);
}

TEST(ServeProtocolTest, RejectsNonzeroReservedFlags) {
  std::string frame = EncodeFrame(SampleRequest());
  frame[6] = 0x01;
  FrameReader reader;
  reader.Feed(frame);
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kParseError);
}

TEST(ServeProtocolTest, RejectsOversizedPayloadBeforeBuffering) {
  std::string frame = EncodeFrame(SampleRequest());
  // payload_len = 0xffffffff: must be refused from the header alone, long
  // before 4 GiB of payload could arrive.
  frame[12] = frame[13] = frame[14] = frame[15] = static_cast<char>(0xff);
  FrameReader reader;
  reader.Feed(frame);
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kOutOfRange);
}

TEST(ServeProtocolTest, RejectsGarbageJsonPayload) {
  Message m = SampleRequest();
  std::string frame = EncodeFrame(m);
  // Corrupt the first payload byte; length and header stay consistent.
  frame[kFrameHeaderBytes] = '!';
  FrameReader reader;
  reader.Feed(frame);
  EXPECT_EQ(reader.Next().status().code(), StatusCode::kParseError);
}

TEST(ServeProtocolTest, ErrorResponseRoundTripsStatus) {
  const Status original = Status::Corruption("crc mismatch in gbdt.model");
  Message m = ErrorResponse(9, original);
  EXPECT_EQ(m.type, MessageType::kError);
  Status restored = StatusFromErrorPayload(m.payload);
  EXPECT_EQ(restored.code(), StatusCode::kCorruption);
  EXPECT_EQ(restored.message(), original.message());
}

TEST(ServeProtocolTest, OverloadedResponseCarriesRetryHint) {
  Message m = OverloadedResponse(3, 25);
  EXPECT_EQ(m.type, MessageType::kOverloaded);
  auto hint = m.payload.GetInt("retry_after_millis");
  ASSERT_TRUE(hint.ok());
  EXPECT_EQ(*hint, 25);
}

// ---------------------------------------------------------------------------
// Doc parity: docs/SERVING.md's frame table IS the wire format. Parse the
// markdown table rows ("| offset | size | field | ... |") back into
// FrameField entries and require an exact match against FrameLayout() —
// the doc cannot drift from the implementation without failing here.

struct DocField {
  size_t offset = 0;
  size_t size = 0;
  std::string name;
};

std::vector<DocField> ParseDocFrameTable(const std::string& markdown) {
  std::vector<DocField> fields;
  std::istringstream lines(markdown);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    // Tokenize "| a | b | c |" into cells.
    std::vector<std::string> cells;
    size_t start = 1;
    while (start < line.size()) {
      size_t end = line.find('|', start);
      if (end == std::string::npos) break;
      std::string cell = line.substr(start, end - start);
      // Trim.
      const char* ws = " \t";
      size_t a = cell.find_first_not_of(ws);
      size_t b = cell.find_last_not_of(ws);
      cells.push_back(a == std::string::npos
                          ? std::string()
                          : cell.substr(a, b - a + 1));
      start = end + 1;
    }
    if (cells.size() < 3) continue;
    // Data rows start with a numeric offset; header and |---| rows don't.
    if (cells[0].empty() ||
        cells[0].find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    // The payload row's size is symbolic ("N"); it is not a header field.
    if (cells[1].find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    DocField field;
    field.offset = static_cast<size_t>(std::stoul(cells[0]));
    field.size = static_cast<size_t>(std::stoul(cells[1]));
    field.name = cells[2].substr(0, cells[2].find(' '));
    fields.push_back(field);
  }
  return fields;
}

TEST(ServeProtocolTest, FrameTableInServingDocMatchesImplementation) {
  const std::string doc_path =
      std::string(CATS_TEST_REPO_ROOT) + "/docs/SERVING.md";
  std::ifstream in(doc_path);
  ASSERT_TRUE(in.good()) << "cannot open " << doc_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string markdown = buffer.str();

  std::vector<DocField> documented = ParseDocFrameTable(markdown);
  std::vector<FrameField> implemented = FrameLayout();
  ASSERT_EQ(documented.size(), implemented.size())
      << "docs/SERVING.md documents a different number of header fields "
         "than protocol.h implements";
  for (size_t i = 0; i < implemented.size(); ++i) {
    EXPECT_EQ(documented[i].name, implemented[i].name) << "field " << i;
    EXPECT_EQ(documented[i].offset, implemented[i].offset)
        << "offset of " << implemented[i].name;
    EXPECT_EQ(documented[i].size, implemented[i].size)
        << "size of " << implemented[i].name;
  }

  // The scalar facts of the format must appear too.
  EXPECT_NE(markdown.find("16-byte header"), std::string::npos);
  EXPECT_NE(markdown.find("little-endian"), std::string::npos);
  EXPECT_NE(markdown.find("'C' 'A' 'T' 'S'"), std::string::npos);
}

TEST(ServeProtocolTest, FrameLayoutCoversTheHeaderExactly) {
  size_t covered = 0;
  for (const FrameField& field : FrameLayout()) {
    EXPECT_EQ(field.offset, covered) << field.name;
    covered += field.size;
  }
  EXPECT_EQ(covered, kFrameHeaderBytes);
}

}  // namespace
}  // namespace cats::serve
