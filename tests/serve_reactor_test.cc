// The epoll reactor transport under hostile I/O: byte-at-a-time trickled
// frames, mid-frame disconnects, a client that never reads (write-side
// backpressure and send-deadline eviction), slow-client recv-deadline
// eviction, a 256-connection pipelining soak, the legacy
// thread-per-connection transport behind the same facade, and the
// two-phase drain shutdown with exact serve.tcp.* accounting.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/tcp_server.h"
#include "serve_test_util.h"

namespace cats::serve {
namespace {

uint64_t CounterValue(std::string_view name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

/// Runs `fn` under a deadlock watchdog: if the reactor wedges (a lost
/// eventfd wakeup would hang forever), abort with a diagnostic instead of
/// eating the whole ctest timeout.
template <typename Fn>
auto RunWithWatchdog(Fn&& fn) {
  auto future = std::async(std::launch::async, std::forward<Fn>(fn));
  if (future.wait_for(std::chrono::seconds(120)) !=
      std::future_status::ready) {
    std::fprintf(stderr,
                 "serve_reactor_test: transport deadlocked (no result "
                 "within 120s watchdog)\n");
    std::fflush(stderr);
    std::abort();
  }
  return future.get();
}

class ServeReactorTest : public ::testing::Test {
 protected:
  void StartServer(TcpServerOptions options,
                   ServeOptions serve_options = ServeOptions{}) {
    options.transport = TcpTransport::kReactor;
    loop_ = std::make_unique<ServeLoop>(serve_options);
    ASSERT_TRUE(loop_->Start(TestModelDir(), TestProbeItems()).ok());
    server_ = std::make_unique<TcpServer>(loop_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0) << "ephemeral port was not resolved";
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (loop_ != nullptr) loop_->Stop();
  }

  std::unique_ptr<ServeLoop> loop_;
  std::unique_ptr<TcpServer> server_;
};

// A frame delivered one byte per send() must decode exactly once: the
// reader accumulates partial headers and partial payloads across arbitrary
// read boundaries.
TEST_F(ServeReactorTest, OneByteTrickledFrameDecodesOnce) {
  StartServer(TcpServerOptions{});
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  const std::string frame = EncodeFrame(MakeHealthRequest(42));
  for (char byte : frame) {
    ASSERT_TRUE(client.SendRaw(std::string(1, byte)).ok());
    // A tiny stagger so the bytes arrive as separate readiness events at
    // least some of the time (TCP_NODELAY keeps them unmerged in practice).
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto response = client.ReadMessage();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, MessageType::kOk);
  EXPECT_EQ(response->request_id, 42u);
}

// A client that dies mid-frame (header promises more payload than ever
// arrives) must not wound the server or leak the connection slot.
TEST_F(ServeReactorTest, MidFrameDisconnectClosesCleanly) {
  StartServer(TcpServerOptions{});
  obs::Gauge* active = obs::MetricsRegistry::Global().GetGauge(
      obs::kServeTcpConnectionsActive);
  {
    FrameClient doomed;
    ASSERT_TRUE(doomed.Connect("127.0.0.1", server_->port()).ok());
    std::string frame = EncodeFrame(MakeHealthRequest(7));
    frame.resize(frame.size() / 2);  // half a frame, then hang up
    ASSERT_TRUE(doomed.SendRaw(frame).ok());
  }
  // The reactor reaps the connection on the hangup readiness event.
  for (int i = 0; i < 200 && active->value() > 0.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(active->value(), 0.0) << "connection slot leaked";

  FrameClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server_->port()).ok());
  auto health = healthy.Call(MakeHealthRequest(1));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->type, MessageType::kOk);
}

// Write-side backpressure: a client with a tiny receive buffer floods
// requests and never reads. The server's responses back up in the
// per-connection outbox (never blocking the event loop — a second
// connection keeps serving throughout), and the send deadline eventually
// evicts the stalled connection.
TEST_F(ServeReactorTest, BackpressuredClientIsEvictedOthersKeepServing) {
  TcpServerOptions options;
  options.send_timeout_millis = 300;
  // A queue deep enough that the flood below is *accepted* — the point is
  // to back up full-size responses on the write side, not to exercise
  // admission shedding (whose replies are tiny).
  ServeOptions serve_options;
  serve_options.queue_capacity = 8192;
  StartServer(options, serve_options);

  const uint64_t timeouts_before = CounterValue(obs::kServeTcpTimeoutsTotal);

  // Size the flood from a real metrics response: enough of them to
  // overwhelm the client's shrunken receive window plus every in-kernel
  // buffer, guaranteeing the server hits EAGAIN and outbox territory.
  size_t response_bytes = 0;
  {
    FrameClient probe;
    ASSERT_TRUE(probe.Connect("127.0.0.1", server_->port()).ok());
    auto metrics_response = probe.Call(MakeMetricsRequest(1));
    ASSERT_TRUE(metrics_response.ok());
    response_bytes = metrics_response->payload.Serialize().size();
  }
  ASSERT_GT(response_bytes, 0u);
  const int flood = static_cast<int>(
      std::max<size_t>(200, (4u << 20) / response_bytes));

  // Raw socket so SO_RCVBUF shrinks before connect (the window the peer
  // advertises is fixed at handshake time).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  const std::string frame = EncodeFrame(MakeMetricsRequest(1));
  for (int i = 0; i < flood; ++i) {
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    // Light pacing keeps the flood inside the (deepened) admission queue.
    if (i % 64 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // While that connection is wedged, a well-behaved one is unaffected.
  FrameClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server_->port()).ok());
  auto health = RunWithWatchdog([&] { return healthy.Call(MakeHealthRequest(9)); });
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->type, MessageType::kOk);

  // The send deadline fires on the stalled connection and evicts it.
  bool evicted = false;
  for (int i = 0; i < 400 && !evicted; ++i) {
    evicted = CounterValue(obs::kServeTcpTimeoutsTotal) > timeouts_before;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(evicted) << "send deadline never evicted the stalled client";
  EXPECT_GT(CounterValue(obs::kServeTcpWritevPartialsTotal), 0u);
  ::close(fd);
}

// Recv-deadline eviction on the reactor with more than one shard: an idle
// connection is swept by the poll timer, counted, and the server keeps
// serving.
TEST_F(ServeReactorTest, SlowClientEvictedAcrossShards) {
  TcpServerOptions options;
  options.recv_timeout_millis = 100;
  options.num_shards = 2;
  StartServer(options);

  const uint64_t timeouts_before = CounterValue(obs::kServeTcpTimeoutsTotal);
  FrameClient stalled;
  ASSERT_TRUE(stalled.Connect("127.0.0.1", server_->port()).ok());
  auto response = RunWithWatchdog([&] { return stalled.ReadMessage(); });
  EXPECT_FALSE(response.ok());
  EXPECT_GT(CounterValue(obs::kServeTcpTimeoutsTotal), timeouts_before);

  FrameClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server_->port()).ok());
  auto health = healthy.Call(MakeHealthRequest(1));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->type, MessageType::kOk);
}

// The headline scale test: 256 concurrent connections, each pipelining a
// burst of requests before reading anything. Every request_id must come
// back exactly once, on the connection that sent it.
TEST_F(ServeReactorTest, PipeliningSoakAcross256Connections) {
  constexpr size_t kConnections = 256;
  constexpr uint32_t kPerConnection = 8;
  TcpServerOptions options;
  options.max_connections = kConnections + 8;
  // Deep queue: the soak asserts every burst request is answered kOk, so
  // the whole 256 x 8 burst must fit in admission.
  ServeOptions serve_options;
  serve_options.queue_capacity = kConnections * kPerConnection + 64;
  StartServer(options, serve_options);

  const bool all_matched = RunWithWatchdog([&] {
    std::vector<std::unique_ptr<FrameClient>> clients;
    clients.reserve(kConnections);
    for (size_t c = 0; c < kConnections; ++c) {
      auto client = std::make_unique<FrameClient>();
      if (!client->Connect("127.0.0.1", server_->port()).ok()) return false;
      clients.push_back(std::move(client));
    }
    // Burst phase: every connection fires its whole pipeline first.
    for (size_t c = 0; c < kConnections; ++c) {
      for (uint32_t i = 0; i < kPerConnection; ++i) {
        const uint32_t id = static_cast<uint32_t>(c) * 1000 + i;
        if (!clients[c]->SendRaw(EncodeFrame(MakeHealthRequest(id))).ok()) {
          return false;
        }
      }
    }
    // Collect phase: each connection sees exactly its own ids.
    for (size_t c = 0; c < kConnections; ++c) {
      std::vector<uint32_t> answered;
      for (uint32_t i = 0; i < kPerConnection; ++i) {
        auto response = clients[c]->ReadMessage();
        if (!response.ok() || response->type != MessageType::kOk) {
          return false;
        }
        answered.push_back(response->request_id);
      }
      std::sort(answered.begin(), answered.end());
      for (uint32_t i = 0; i < kPerConnection; ++i) {
        if (answered[i] != static_cast<uint32_t>(c) * 1000 + i) return false;
      }
    }
    return true;
  });
  EXPECT_TRUE(all_matched);
}

// The same facade must still run the legacy thread-per-connection engine
// when asked — that is what the bench A/Bs against.
TEST_F(ServeReactorTest, LegacyTransportStillRoundTrips) {
  TcpServerOptions options;
  options.transport = TcpTransport::kThreadPerConnection;
  loop_ = std::make_unique<ServeLoop>(ServeOptions{});
  ASSERT_TRUE(loop_->Start(TestModelDir(), TestProbeItems()).ok());
  server_ = std::make_unique<TcpServer>(loop_.get(), options);
  ASSERT_TRUE(server_->Start().ok());

  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto response = client.Call(MakeHealthRequest(3));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->type, MessageType::kOk);
  EXPECT_EQ(response->request_id, 3u);
}

// Two-phase drain: requests already admitted when Stop() begins still get
// their responses flushed before the socket closes, and the serve.tcp.*
// counters account for every frame exactly.
TEST_F(ServeReactorTest, StopDrainsPendingResponsesExactly) {
  TcpServerOptions options;
  options.drain_deadline_millis = 5'000;
  StartServer(options);

  const uint64_t frames_before = CounterValue(obs::kServeTcpFramesReadTotal);
  const uint64_t received_before =
      loop_->stats().received.load(std::memory_order_relaxed);

  constexpr uint32_t kRequests = 24;
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (uint32_t i = 1; i <= kRequests; ++i) {
    ASSERT_TRUE(client.SendRaw(EncodeFrame(MakeHealthRequest(i))).ok());
  }
  // Wait until the loop has *admitted* every frame — from here on, drain
  // semantics (not reads) are what deliver the responses.
  for (int i = 0; i < 1000; ++i) {
    const uint64_t received =
        loop_->stats().received.load(std::memory_order_relaxed);
    if (received - received_before >= kRequests) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(loop_->stats().received.load(std::memory_order_relaxed) -
                received_before,
            kRequests);

  RunWithWatchdog([&] {
    server_->Stop();
    return true;
  });

  // Exact read-side accounting: the transport decoded each frame once.
  EXPECT_EQ(CounterValue(obs::kServeTcpFramesReadTotal) - frames_before,
            kRequests);

  // Every admitted request's response was flushed before close: all
  // kRequests ids arrive, then EOF.
  std::vector<uint32_t> answered;
  for (uint32_t i = 0; i < kRequests; ++i) {
    auto response = client.ReadMessage();
    ASSERT_TRUE(response.ok())
        << "drain lost a response after " << answered.size() << " of "
        << kRequests << ": " << response.status().ToString();
    EXPECT_EQ(response->type, MessageType::kOk);
    answered.push_back(response->request_id);
  }
  auto eof = client.ReadMessage();
  EXPECT_FALSE(eof.ok()) << "connection should be closed after the drain";
  std::sort(answered.begin(), answered.end());
  for (uint32_t i = 1; i <= kRequests; ++i) {
    EXPECT_EQ(answered[i - 1], i);
  }

  // And the gauge is back to zero: no connection slot survived the drain.
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetGauge(obs::kServeTcpConnectionsActive)
                ->value(),
            0.0);
}

}  // namespace
}  // namespace cats::serve
