#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "serve/model_gateway.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace cats {
namespace {

// Two writers hammer ModelGateway::Swap concurrently while readers score on
// acquired snapshots. The gateway's contract: swaps serialize, every
// committed swap lands a distinct monotonically increasing generation, and
// no in-flight reader ever observes a broken deployment.
TEST(SwapRaceTest, ConcurrentSwapsLandDistinctGenerations) {
  serve::ModelGateway gateway(TestProbeItems());
  ASSERT_TRUE(gateway.LoadInitial(TestModelDir()).ok());
  ASSERT_EQ(gateway.generation(), 1u);

  constexpr int kSwapsPerThread = 8;
  std::vector<uint64_t> generations[2];
  std::atomic<int> failures{0};
  std::atomic<bool> stop_readers{false};

  // Readers: continuously acquire and touch the snapshot. A swap must never
  // yield a null or half-built deployment.
  std::thread reader([&] {
    while (!stop_readers.load(std::memory_order_acquire)) {
      auto snapshot = gateway.Acquire();
      if (snapshot == nullptr || !snapshot->detector().trained() ||
          snapshot->generation == 0) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::thread> swappers;
  for (int t = 0; t < 2; ++t) {
    swappers.emplace_back([&, t] {
      for (int i = 0; i < kSwapsPerThread; ++i) {
        auto outcome = gateway.Swap(TestModelDir());
        if (!outcome.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        generations[t].push_back(outcome->generation);
      }
    });
  }
  for (std::thread& t : swappers) t.join();
  stop_readers.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  // Each thread saw strictly increasing generations...
  for (int t = 0; t < 2; ++t) {
    ASSERT_EQ(generations[t].size(),
              static_cast<size_t>(kSwapsPerThread));
    EXPECT_TRUE(std::is_sorted(generations[t].begin(),
                               generations[t].end()));
  }
  // ...and across both threads every committed swap won a distinct slot:
  // exactly generations 2 .. 2*kSwapsPerThread + 1, no gaps, no ties.
  std::set<uint64_t> all(generations[0].begin(), generations[0].end());
  all.insert(generations[1].begin(), generations[1].end());
  ASSERT_EQ(all.size(), static_cast<size_t>(2 * kSwapsPerThread));
  EXPECT_EQ(*all.begin(), 2u);
  EXPECT_EQ(*all.rbegin(),
            static_cast<uint64_t>(2 * kSwapsPerThread + 1));
  EXPECT_EQ(gateway.generation(),
            static_cast<uint64_t>(2 * kSwapsPerThread + 1));
}

// The same race through the full serve loop: swap requests and score
// requests interleave on the worker pool. Every request must complete
// successfully — a swap mid-batch may never fail or drop an in-flight
// score — and the loop's accounting must balance exactly.
TEST(SwapRaceTest, SwapUnderTrafficLosesNoRequests) {
  serve::ServeOptions options;
  options.queue_capacity = 256;
  options.num_workers = 3;
  serve::ServeLoop loop(options);
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());

  const std::vector<collect::CollectedItem> items = TestStore().items();
  ASSERT_FALSE(items.empty());

  constexpr int kScoresPerThread = 60;
  constexpr int kSwapsPerThread = 4;
  std::atomic<int> bad_responses{0};

  std::vector<std::thread> threads;
  // Two swap threads, two score threads.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSwapsPerThread; ++i) {
        serve::Message response = loop.Call(serve::MakeSwapModelRequest(
            static_cast<uint32_t>(9000 + t * 100 + i), TestModelDir()));
        if (response.type != serve::MessageType::kOk) {
          bad_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<uint64_t> seen_generations[2];
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kScoresPerThread; ++i) {
        const auto& item = items[(t * kScoresPerThread + i) % items.size()];
        serve::Message response = loop.Call(serve::MakeScoreItemRequest(
            static_cast<uint32_t>(t * 1000 + i), item));
        if (response.type != serve::MessageType::kOk) {
          bad_responses.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        auto generation = response.payload.GetInt("model_generation");
        if (generation.ok()) {
          seen_generations[t].push_back(
              static_cast<uint64_t>(*generation));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  loop.Stop();

  EXPECT_EQ(bad_responses.load(), 0);
  // A sequential caller can never see the generation move backwards.
  for (int t = 0; t < 2; ++t) {
    EXPECT_TRUE(std::is_sorted(seen_generations[t].begin(),
                               seen_generations[t].end()));
  }
  EXPECT_EQ(loop.model_generation(),
            static_cast<uint64_t>(2 * kSwapsPerThread + 1));

  // Exact accounting: nothing rejected, nothing shed, nothing errored.
  const serve::ServeStats& stats = loop.stats();
  const uint64_t expected =
      2 * kScoresPerThread + 2 * kSwapsPerThread;
  EXPECT_EQ(stats.received.load(), expected);
  EXPECT_EQ(stats.accepted.load(), expected);
  EXPECT_EQ(stats.overload_rejected.load(), 0u);
  EXPECT_EQ(stats.rejected.load(), 0u);
  EXPECT_EQ(stats.ok.load(), expected);
  EXPECT_EQ(stats.errors.load(), 0u);
  EXPECT_EQ(stats.shed.load(), 0u);
}

}  // namespace
}  // namespace cats
