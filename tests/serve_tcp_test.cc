// The socket skin end to end: a real loopback TCP server on an ephemeral
// port, driven by FrameClient. Health/score/metrics/swap round-trip over
// the wire, pipelined requests match responses by request_id, a garbage
// frame gets the connection closed (and counted) without wounding the
// server, and fresh connections keep working afterwards. Labeled
// serve_smoke so CI can gate serving health cheaply.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/tcp_server.h"
#include "serve_test_util.h"

namespace cats::serve {
namespace {

class ServeTcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    loop_ = std::make_unique<ServeLoop>(ServeOptions{});
    ASSERT_TRUE(loop_->Start(TestModelDir(), TestProbeItems()).ok());
    server_ = std::make_unique<TcpServer>(loop_.get(), TcpServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0) << "ephemeral port was not resolved";
  }

  void TearDown() override {
    server_->Stop();
    loop_->Stop();
  }

  std::unique_ptr<ServeLoop> loop_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(ServeTcpTest, HealthRoundTripsOverTheWire) {
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto response = client.Call(MakeHealthRequest(7));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, MessageType::kOk);
  EXPECT_EQ(response->request_id, 7u);
  EXPECT_EQ(*response->payload.GetString("status"), "serving");
  EXPECT_EQ(*response->payload.GetInt("model_generation"), 1);
}

TEST_F(ServeTcpTest, ScoreAndSwapOverTheWire) {
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  auto scored =
      client.Call(MakeScoreItemRequest(1, TestStore().items().front()));
  ASSERT_TRUE(scored.ok());
  ASSERT_EQ(scored->type, MessageType::kOk)
      << StatusFromErrorPayload(scored->payload).ToString();
  EXPECT_EQ(*scored->payload.GetInt("model_generation"), 1);
  EXPECT_TRUE(scored->payload.Has("disposition"));

  auto swapped = client.Call(MakeSwapModelRequest(2, TestModelDir()));
  ASSERT_TRUE(swapped.ok());
  ASSERT_EQ(swapped->type, MessageType::kOk);
  EXPECT_EQ(*swapped->payload.GetInt("model_generation"), 2);

  auto rescored =
      client.Call(MakeScoreItemRequest(3, TestStore().items().front()));
  ASSERT_TRUE(rescored.ok());
  ASSERT_EQ(rescored->type, MessageType::kOk);
  EXPECT_EQ(*rescored->payload.GetInt("model_generation"), 2);
}

TEST_F(ServeTcpTest, PipelinedRequestsMatchResponsesByRequestId) {
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  // Fire several frames before reading anything, then collect responses in
  // whatever order they land; every request_id must be answered once.
  const std::vector<uint32_t> ids = {11, 22, 33, 44};
  for (uint32_t id : ids) {
    ASSERT_TRUE(client.SendRaw(EncodeFrame(MakeHealthRequest(id))).ok());
  }
  std::vector<uint32_t> answered;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto response = client.ReadMessage();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->type, MessageType::kOk);
    answered.push_back(response->request_id);
  }
  std::sort(answered.begin(), answered.end());
  EXPECT_EQ(answered, ids);
}

TEST_F(ServeTcpTest, GarbageFrameClosesOnlyThatConnection) {
  const uint64_t errors_before =
      obs::MetricsRegistry::Global()
          .GetCounter(obs::kServeTcpFrameErrorsTotal)
          ->value();

  FrameClient bad;
  ASSERT_TRUE(bad.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(bad.SendRaw("XXXXGARBAGE-NOT-A-FRAME-AT-ALL").ok());
  // The server closes the stream on the framing error; the read fails.
  auto response = bad.ReadMessage();
  EXPECT_FALSE(response.ok());
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter(obs::kServeTcpFrameErrorsTotal)
                ->value(),
            errors_before);

  // The server itself is unwounded: a fresh connection serves normally.
  FrameClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", server_->port()).ok());
  auto health = good.Call(MakeHealthRequest(1));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->type, MessageType::kOk);
}

TEST_F(ServeTcpTest, StopUnblocksAndRefusesNewConnections) {
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const uint16_t port = server_->port();
  server_->Stop();

  // The open connection is shut down; reads fail rather than hang.
  auto response = client.ReadMessage();
  EXPECT_FALSE(response.ok());

  // And nobody is listening anymore.
  FrameClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port).ok());
}

}  // namespace
}  // namespace cats::serve
