// The socket skin end to end: a real loopback TCP server on an ephemeral
// port, driven by FrameClient. Health/score/metrics/swap round-trip over
// the wire, pipelined requests match responses by request_id, a garbage
// frame gets the connection closed (and counted) without wounding the
// server, and fresh connections keep working afterwards. Labeled
// serve_smoke so CI can gate serving health cheaply.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/tcp_server.h"
#include "serve_test_util.h"

namespace cats::serve {
namespace {

class ServeTcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    loop_ = std::make_unique<ServeLoop>(ServeOptions{});
    ASSERT_TRUE(loop_->Start(TestModelDir(), TestProbeItems()).ok());
    server_ = std::make_unique<TcpServer>(loop_.get(), TcpServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0) << "ephemeral port was not resolved";
  }

  void TearDown() override {
    server_->Stop();
    loop_->Stop();
  }

  std::unique_ptr<ServeLoop> loop_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(ServeTcpTest, HealthRoundTripsOverTheWire) {
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto response = client.Call(MakeHealthRequest(7));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, MessageType::kOk);
  EXPECT_EQ(response->request_id, 7u);
  EXPECT_EQ(*response->payload.GetString("status"), "serving");
  EXPECT_EQ(*response->payload.GetInt("model_generation"), 1);
}

TEST_F(ServeTcpTest, ScoreAndSwapOverTheWire) {
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  auto scored =
      client.Call(MakeScoreItemRequest(1, TestStore().items().front()));
  ASSERT_TRUE(scored.ok());
  ASSERT_EQ(scored->type, MessageType::kOk)
      << StatusFromErrorPayload(scored->payload).ToString();
  EXPECT_EQ(*scored->payload.GetInt("model_generation"), 1);
  EXPECT_TRUE(scored->payload.Has("disposition"));

  auto swapped = client.Call(MakeSwapModelRequest(2, TestModelDir()));
  ASSERT_TRUE(swapped.ok());
  ASSERT_EQ(swapped->type, MessageType::kOk);
  EXPECT_EQ(*swapped->payload.GetInt("model_generation"), 2);

  auto rescored =
      client.Call(MakeScoreItemRequest(3, TestStore().items().front()));
  ASSERT_TRUE(rescored.ok());
  ASSERT_EQ(rescored->type, MessageType::kOk);
  EXPECT_EQ(*rescored->payload.GetInt("model_generation"), 2);
}

TEST_F(ServeTcpTest, PipelinedRequestsMatchResponsesByRequestId) {
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  // Fire several frames before reading anything, then collect responses in
  // whatever order they land; every request_id must be answered once.
  const std::vector<uint32_t> ids = {11, 22, 33, 44};
  for (uint32_t id : ids) {
    ASSERT_TRUE(client.SendRaw(EncodeFrame(MakeHealthRequest(id))).ok());
  }
  std::vector<uint32_t> answered;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto response = client.ReadMessage();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->type, MessageType::kOk);
    answered.push_back(response->request_id);
  }
  std::sort(answered.begin(), answered.end());
  EXPECT_EQ(answered, ids);
}

TEST_F(ServeTcpTest, GarbageFrameClosesOnlyThatConnection) {
  const uint64_t errors_before =
      obs::MetricsRegistry::Global()
          .GetCounter(obs::kServeTcpFrameErrorsTotal)
          ->value();

  FrameClient bad;
  ASSERT_TRUE(bad.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(bad.SendRaw("XXXXGARBAGE-NOT-A-FRAME-AT-ALL").ok());
  // The server closes the stream on the framing error; the read fails.
  auto response = bad.ReadMessage();
  EXPECT_FALSE(response.ok());
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter(obs::kServeTcpFrameErrorsTotal)
                ->value(),
            errors_before);

  // The server itself is unwounded: a fresh connection serves normally.
  FrameClient good;
  ASSERT_TRUE(good.Connect("127.0.0.1", server_->port()).ok());
  auto health = good.Call(MakeHealthRequest(1));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->type, MessageType::kOk);
}

// A client that connects and then sends nothing must not pin its
// connection thread forever: the recv deadline fires, the connection is
// closed and counted, and the server keeps serving fresh connections.
TEST(ServeTcpGuardTest, SlowClientConnectionTimesOut) {
  ServeLoop loop{ServeOptions{}};
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());
  TcpServerOptions options;
  options.recv_timeout_millis = 100;
  TcpServer server(&loop, options);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t timeouts_before = obs::MetricsRegistry::Global()
                                       .GetCounter(obs::kServeTcpTimeoutsTotal)
                                       ->value();
  FrameClient stalled;
  ASSERT_TRUE(stalled.Connect("127.0.0.1", server.port()).ok());
  // Send nothing. The server's SO_RCVTIMEO expires and closes the stream;
  // the blocked read observes the shutdown instead of hanging.
  auto response = stalled.ReadMessage();
  EXPECT_FALSE(response.ok());
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter(obs::kServeTcpTimeoutsTotal)
                ->value(),
            timeouts_before);

  // The guard reclaims the thread without wounding the server.
  FrameClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server.port()).ok());
  auto health = healthy.Call(MakeHealthRequest(1));
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->type, MessageType::kOk);

  server.Stop();
  loop.Stop();
}

// Connections past the max_connections cap are closed at accept instead of
// spawning an unbounded thread herd, and the slot frees once an admitted
// connection hangs up.
TEST(ServeTcpGuardTest, ConnectionCapRejectsExtras) {
  ServeLoop loop{ServeOptions{}};
  ASSERT_TRUE(loop.Start(TestModelDir(), TestProbeItems()).ok());
  TcpServerOptions options;
  options.max_connections = 1;
  TcpServer server(&loop, options);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t rejected_before =
      obs::MetricsRegistry::Global()
          .GetCounter(obs::kServeTcpConnRejectedTotal)
          ->value();
  {
    FrameClient admitted;
    ASSERT_TRUE(admitted.Connect("127.0.0.1", server.port()).ok());
    auto health = admitted.Call(MakeHealthRequest(1));
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health->type, MessageType::kOk);

    // The cap is full: the next connection is accepted at the TCP level
    // (listen backlog) but closed immediately by the guard.
    FrameClient excess;
    ASSERT_TRUE(excess.Connect("127.0.0.1", server.port()).ok());
    auto refused = excess.Call(MakeHealthRequest(2));
    EXPECT_FALSE(refused.ok());
    EXPECT_GT(obs::MetricsRegistry::Global()
                  .GetCounter(obs::kServeTcpConnRejectedTotal)
                  ->value(),
              rejected_before);
  }
  // `admitted` hung up; its slot frees as soon as the connection thread
  // unwinds. A retry loop absorbs that teardown race.
  bool served = false;
  for (int attempt = 0; attempt < 50 && !served; ++attempt) {
    FrameClient next;
    if (!next.Connect("127.0.0.1", server.port()).ok()) break;
    auto health = next.Call(MakeHealthRequest(3));
    served = health.ok() && health->type == MessageType::kOk;
    if (!served) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(served) << "cap slot never freed after the client hung up";

  server.Stop();
  loop.Stop();
}

TEST_F(ServeTcpTest, StopUnblocksAndRefusesNewConnections) {
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const uint16_t port = server_->port();
  server_->Stop();

  // The open connection is shut down; reads fail rather than hang.
  auto response = client.ReadMessage();
  EXPECT_FALSE(response.ok());

  // And nobody is listening anymore.
  FrameClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", port).ok());
}

}  // namespace
}  // namespace cats::serve
