#ifndef CATS_TESTS_SERVE_TEST_UTIL_H_
#define CATS_TESTS_SERVE_TEST_UTIL_H_

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/cats.h"
#include "platform_test_util.h"

namespace cats {

/// A deployable model dir trained on the shared test store, built once per
/// process (SaveModel goes through the manifest CRC path the serving plane
/// loads with). Unlike the semantic-model cache this is rebuilt per run —
/// training the Gbdt on the small store is cheap.
inline const std::string& TestModelDir() {
  static const std::string* dir = [] {
    core::Cats cats_system;
    cats_system.SetSemanticModel(TestSemanticModel());
    const collect::DataStore& store = TestStore();
    CATS_CHECK(cats_system
                   .TrainDetector(store.items(),
                                  StoreLabels(TestMarketplace(), store))
                   .ok());
    auto path = std::filesystem::temp_directory_path() /
                ("cats_serve_test_model_" +
                 std::to_string(static_cast<unsigned long>(::getpid())));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    CATS_CHECK(cats_system.SaveModel(path.string()).ok());
    return new std::string(path.string());
  }();
  return *dir;
}

/// Held-out probe rows for swap validation: a slice of the shared store.
inline std::vector<collect::CollectedItem> TestProbeItems(size_t n = 16) {
  std::vector<collect::CollectedItem> probe = TestStore().items();
  if (probe.size() > n) probe.resize(n);
  return probe;
}

}  // namespace cats

#endif  // CATS_TESTS_SERVE_TEST_UTIL_H_
