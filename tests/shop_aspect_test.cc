#include "analysis/shop_aspect.h"

#include <gtest/gtest.h>

#include "platform_test_util.h"

namespace cats::analysis {
namespace {

/// Builds a small store by hand: 2 shops, shop 0 with 3 items, shop 1
/// with 2 items.
collect::DataStore HandStore() {
  collect::DataStore store;
  for (uint64_t s = 0; s < 2; ++s) {
    collect::ShopRecord shop;
    shop.shop_id = s;
    shop.shop_name = "shop" + std::to_string(s);
    shop.shop_url = "u";
    store.AddShop(std::move(shop));
  }
  auto add_item = [&store](uint64_t id, uint64_t shop) {
    collect::ItemRecord item;
    item.item_id = id;
    item.shop_id = shop;
    item.item_name = "i";
    item.price = 1.0;
    item.sales_volume = 10;
    item.category = "food & grocery";
    store.AddItem(std::move(item));
  };
  add_item(10, 0);
  add_item(11, 0);
  add_item(12, 0);
  add_item(20, 1);
  add_item(21, 1);
  return store;
}

core::DetectionReport Report(std::initializer_list<uint64_t> flagged) {
  core::DetectionReport report;
  double score = 0.9;
  for (uint64_t id : flagged) {
    report.detections.push_back(core::Detection{id, score});
    score -= 0.05;
  }
  return report;
}

TEST(ShopAspectTest, RollsUpFlagsByShop) {
  collect::DataStore store = HandStore();
  auto shops = AnalyzeShops(store, Report({10, 11, 20}));
  ASSERT_EQ(shops.size(), 2u);
  // Shop 0 has more flags -> first.
  EXPECT_EQ(shops[0].shop_id, 0u);
  EXPECT_EQ(shops[0].items, 3u);
  EXPECT_EQ(shops[0].flagged, 2u);
  EXPECT_NEAR(shops[0].flagged_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(shops[0].max_score, 0.9, 1e-12);
  EXPECT_EQ(shops[1].shop_id, 1u);
  EXPECT_EQ(shops[1].flagged, 1u);
}

TEST(ShopAspectTest, EmptyReportAllClean) {
  collect::DataStore store = HandStore();
  auto shops = AnalyzeShops(store, Report({}));
  for (const ShopReport& shop : shops) {
    EXPECT_EQ(shop.flagged, 0u);
    EXPECT_EQ(shop.flagged_fraction, 0.0);
  }
  EXPECT_TRUE(SuspectedMerchants(shops, ShopAspectOptions{}).empty());
}

TEST(ShopAspectTest, ThresholdsSelectMerchants) {
  collect::DataStore store = HandStore();
  auto shops = AnalyzeShops(store, Report({10, 11, 20}));
  ShopAspectOptions options;
  options.min_flagged_items = 2;
  options.min_flagged_fraction = 0.6;
  auto merchants = SuspectedMerchants(shops, options);
  // Shop 0: 2 flags (>=2). Shop 1: 1 flag, fraction 0.5 < 0.6 -> excluded.
  ASSERT_EQ(merchants.size(), 1u);
  EXPECT_EQ(merchants[0].shop_id, 0u);

  options.min_flagged_fraction = 0.4;
  merchants = SuspectedMerchants(shops, options);
  EXPECT_EQ(merchants.size(), 2u);  // shop 1 now passes via fraction
}

TEST(ShopAspectTest, RecoversMaliciousShopsOnSimulatedPlatform) {
  // End-to-end: detect on the shared fixture, roll up to shops, compare
  // against the simulator's hidden malicious flags.
  const auto& market = cats::TestMarketplace();
  const auto& store = cats::TestStore();
  core::Detector detector(&cats::TestSemanticModel());
  ASSERT_TRUE(
      detector.Train(store.items(), cats::StoreLabels(market, store)).ok());
  auto report = detector.Detect(store.items());
  ASSERT_TRUE(report.ok());

  auto shops = AnalyzeShops(store, *report);
  ShopAspectOptions options;
  auto merchants = SuspectedMerchants(shops, options);
  ASSERT_FALSE(merchants.empty());

  size_t truly_malicious = 0;
  for (const ShopReport& m : merchants) {
    if (market.shops()[m.shop_id].malicious) ++truly_malicious;
  }
  double precision =
      static_cast<double>(truly_malicious) / merchants.size();
  EXPECT_GT(precision, 0.8);

  // And most malicious shops are caught.
  size_t total_malicious = 0;
  for (const auto& shop : market.shops()) {
    total_malicious += shop.malicious ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(truly_malicious) / total_malicious, 0.6);
}

TEST(ShopAspectTest, ItemsCountConsistent) {
  const auto& store = cats::TestStore();
  core::DetectionReport empty;
  auto shops = AnalyzeShops(store, empty);
  size_t total_items = 0;
  for (const ShopReport& shop : shops) total_items += shop.items;
  EXPECT_EQ(total_items, store.items().size());
}

}  // namespace
}  // namespace cats::analysis
