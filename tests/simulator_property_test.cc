// Property sweeps over the marketplace simulator: structural invariants
// that must hold for ANY configuration (varying fraud mix, spam volume,
// campaign style), parameterized across a config family.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "platform_test_util.h"

namespace cats::platform {
namespace {

struct SimCase {
  const char* name;
  size_t normal_items;
  size_t fraud_items;
  double spam_mean;
  double stealth_prob;
  uint64_t seed;
};

class SimulatorPropertyTest : public ::testing::TestWithParam<SimCase> {
 protected:
  static Marketplace Make(const SimCase& params) {
    MarketplaceConfig config;
    config.name = params.name;
    config.num_normal_items = params.normal_items;
    config.num_fraud_items = params.fraud_items;
    config.campaign.mean_spam_comments_per_item = params.spam_mean;
    config.campaign.stealth_campaign_prob = params.stealth_prob;
    config.population.num_benign_users = 2000;
    config.population.num_hired_users = 50;
    config.seed = params.seed;
    return Marketplace::Generate(config, &cats::TestLanguage());
  }
};

TEST_P(SimulatorPropertyTest, FraudCountMatchesConfig) {
  Marketplace m = Make(GetParam());
  size_t fraud = 0;
  for (const Item& item : m.items()) fraud += item.is_fraud ? 1 : 0;
  EXPECT_EQ(fraud, GetParam().fraud_items);
  EXPECT_EQ(m.NumFraudItems(), GetParam().fraud_items);
}

TEST_P(SimulatorPropertyTest, ReferentialIntegrity) {
  Marketplace m = Make(GetParam());
  for (const Comment& c : m.comments()) {
    ASSERT_LT(c.item_id, m.items().size());
    ASSERT_LT(c.user_id, m.users().size());
  }
  size_t indexed = 0;
  for (const Item& item : m.items()) {
    ASSERT_LT(item.shop_id, m.shops().size());
    for (uint32_t ci : m.CommentIndicesOfItem(item.id)) {
      ASSERT_LT(ci, m.comments().size());
      EXPECT_EQ(m.comments()[ci].item_id, item.id);
      ++indexed;
    }
  }
  EXPECT_EQ(indexed, m.comments().size());
}

TEST_P(SimulatorPropertyTest, GroundTruthConsistent) {
  Marketplace m = Make(GetParam());
  // Campaign comments only on fraud items, from hired users; fraud items
  // only in malicious shops; every fraud item promoted by some campaign.
  std::unordered_set<uint64_t> promoted;
  for (const Comment& c : m.comments()) {
    if (c.from_campaign) {
      EXPECT_TRUE(m.items()[c.item_id].is_fraud);
      EXPECT_TRUE(m.users()[c.user_id].hired);
      promoted.insert(c.item_id);
    } else {
      EXPECT_FALSE(m.users()[c.user_id].hired);
    }
  }
  for (const Item& item : m.items()) {
    if (item.is_fraud) {
      EXPECT_TRUE(m.shops()[item.shop_id].malicious) << item.id;
      EXPECT_TRUE(promoted.count(item.id)) << item.id;
    }
  }
}

TEST_P(SimulatorPropertyTest, SalesNeverBelowComments) {
  Marketplace m = Make(GetParam());
  for (const Item& item : m.items()) {
    EXPECT_GE(item.sales_volume,
              static_cast<int64_t>(m.CommentIndicesOfItem(item.id).size()));
  }
}

TEST_P(SimulatorPropertyTest, IdsDenseAndUnique) {
  Marketplace m = Make(GetParam());
  for (size_t i = 0; i < m.items().size(); ++i) {
    EXPECT_EQ(m.items()[i].id, i);
  }
  for (size_t i = 0; i < m.comments().size(); ++i) {
    EXPECT_EQ(m.comments()[i].id, i);
  }
  for (size_t i = 0; i < m.shops().size(); ++i) {
    EXPECT_EQ(m.shops()[i].id, i);
  }
}

TEST_P(SimulatorPropertyTest, StealthFlagMatchesConfigExtremes) {
  Marketplace m = Make(GetParam());
  size_t stealth = 0;
  for (const CampaignPlan& plan : m.campaigns()) stealth += plan.stealth;
  if (GetParam().stealth_prob == 0.0) {
    EXPECT_EQ(stealth, 0u);
  } else if (GetParam().stealth_prob == 1.0) {
    EXPECT_EQ(stealth, m.campaigns().size());
  }
}

TEST_P(SimulatorPropertyTest, CrawlRecoversEverything) {
  Marketplace m = Make(GetParam());
  collect::DataStore store = cats::CrawlAll(m);
  EXPECT_EQ(store.shops().size(), m.shops().size());
  EXPECT_EQ(store.items().size(), m.items().size());
  EXPECT_EQ(store.num_comments(), m.comments().size());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimulatorPropertyTest,
    ::testing::Values(
        SimCase{"tiny", 50, 5, 8.0, 0.3, 101},
        SimCase{"fraud_heavy", 60, 60, 12.0, 0.3, 102},
        SimCase{"spam_light", 120, 15, 2.0, 0.3, 103},
        SimCase{"all_stealth", 100, 20, 10.0, 1.0, 104},
        SimCase{"no_stealth", 100, 20, 10.0, 0.0, 105},
        SimCase{"single_fraud", 80, 1, 10.0, 0.5, 106}),
    [](const ::testing::TestParamInfo<SimCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace cats::platform
