#include "ml/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ml_test_util.h"

namespace cats::ml {
namespace {

TEST(StratifiedSplitTest, PartitionsAllRows) {
  Dataset data = MakeGaussianDataset(50, 2, 3.0, 1);
  Rng rng(2);
  TrainTestIndices split = StratifiedSplit(data, 0.2, &rng);
  EXPECT_EQ(split.train.size() + split.test.size(), data.num_rows());
  std::set<size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), data.num_rows());  // disjoint cover
}

TEST(StratifiedSplitTest, PreservesClassRatio) {
  Dataset data = MakeGaussianDataset(100, 2, 3.0, 3);
  Rng rng(4);
  TrainTestIndices split = StratifiedSplit(data, 0.25, &rng);
  size_t test_pos = 0;
  for (size_t i : split.test) test_pos += data.Label(i);
  // 50% positives overall -> test should hold 50% +- rounding.
  EXPECT_NEAR(static_cast<double>(test_pos) / split.test.size(), 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(split.test.size()) / data.num_rows(), 0.25,
              0.02);
}

TEST(StratifiedKFoldTest, FoldsPartitionData) {
  Dataset data = MakeGaussianDataset(40, 2, 3.0, 5);
  Rng rng(6);
  auto folds = StratifiedKFold(data, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(data.num_rows(), 0);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), data.num_rows());
    for (size_t i : fold.test) ++seen[i];
    // train and test disjoint within a fold.
    std::set<size_t> train_set(fold.train.begin(), fold.train.end());
    for (size_t i : fold.test) EXPECT_EQ(train_set.count(i), 0u);
  }
  // Every row appears in exactly one test fold.
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(StratifiedKFoldTest, FoldSizesBalanced) {
  Dataset data = MakeGaussianDataset(51, 2, 3.0, 7);  // 102 rows
  Rng rng(8);
  auto folds = StratifiedKFold(data, 5, &rng);
  size_t min_size = data.num_rows(), max_size = 0;
  for (const auto& fold : folds) {
    min_size = std::min(min_size, fold.test.size());
    max_size = std::max(max_size, fold.test.size());
  }
  EXPECT_LE(max_size - min_size, 2u);
}

TEST(StratifiedKFoldTest, EachFoldStratified) {
  Dataset data = MakeGaussianDataset(100, 2, 3.0, 9);
  Rng rng(10);
  auto folds = StratifiedKFold(data, 4, &rng);
  for (const auto& fold : folds) {
    size_t pos = 0;
    for (size_t i : fold.test) pos += data.Label(i);
    EXPECT_NEAR(static_cast<double>(pos) / fold.test.size(), 0.5, 0.05);
  }
}

TEST(StratifiedKFoldTest, DifferentSeedsDifferentShuffles) {
  Dataset data = MakeGaussianDataset(50, 2, 3.0, 11);
  Rng rng_a(1), rng_b(2);
  auto fa = StratifiedKFold(data, 5, &rng_a);
  auto fb = StratifiedKFold(data, 5, &rng_b);
  EXPECT_NE(fa[0].test, fb[0].test);
}

TEST(StratifiedKFoldTest, DeterministicForSeed) {
  Dataset data = MakeGaussianDataset(50, 2, 3.0, 11);
  Rng rng_a(42), rng_b(42);
  auto fa = StratifiedKFold(data, 5, &rng_a);
  auto fb = StratifiedKFold(data, 5, &rng_b);
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(fa[k].test, fb[k].test);
    EXPECT_EQ(fa[k].train, fb[k].train);
  }
}

}  // namespace
}  // namespace cats::ml
