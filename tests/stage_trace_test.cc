// Unit tests for the RAII stage tracer (src/obs/stage_trace.h): nested
// scopes must produce the right parent/child tree, item attribution, and
// JSON export.

#include "obs/stage_trace.h"

#include <gtest/gtest.h>

#include <thread>

#include "obs/metrics.h"

namespace cats::obs {
namespace {

TEST(StageTraceTest, NestedScopesBuildParentChildTree) {
  PipelineTrace trace;
  {
    StageTrace detect(&trace, "detect");
    {
      StageTrace extract(&trace, "extract");
      extract.AddItems(100);
    }
    {
      StageTrace classify(&trace, "classify");
      {
        StageTrace score(&trace, "score");
        score.AddItems(60);
      }
      classify.AddItems(60);
    }
    detect.AddItems(100);
  }

  ASSERT_EQ(trace.root().children.size(), 1u);
  const TraceNode* detect = trace.root().FindChild("detect");
  ASSERT_NE(detect, nullptr);
  EXPECT_EQ(detect->items, 100u);
  ASSERT_EQ(detect->children.size(), 2u);

  const TraceNode* extract = detect->FindChild("extract");
  ASSERT_NE(extract, nullptr);
  EXPECT_EQ(extract->items, 100u);
  EXPECT_TRUE(extract->children.empty());

  const TraceNode* classify = detect->FindChild("classify");
  ASSERT_NE(classify, nullptr);
  EXPECT_EQ(classify->items, 60u);
  const TraceNode* score = classify->FindChild("score");
  ASSERT_NE(score, nullptr);
  EXPECT_EQ(score->items, 60u);

  EXPECT_EQ(detect->FindChild("score"), nullptr);  // grandchild, not child
}

TEST(StageTraceTest, SequentialScopesBecomeSiblings) {
  PipelineTrace trace;
  { StageTrace a(&trace, "a"); }
  { StageTrace b(&trace, "b"); }
  { StageTrace c(&trace, "c"); }
  ASSERT_EQ(trace.root().children.size(), 3u);
  EXPECT_EQ(trace.root().children[0].name, "a");
  EXPECT_EQ(trace.root().children[1].name, "b");
  EXPECT_EQ(trace.root().children[2].name, "c");
}

TEST(StageTraceTest, WallTimeCoversNestedWork) {
  PipelineTrace trace;
  {
    StageTrace outer(&trace, "outer");
    {
      StageTrace inner(&trace, "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const TraceNode* outer = trace.root().FindChild("outer");
  ASSERT_NE(outer, nullptr);
  const TraceNode* inner = outer->FindChild("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(inner->wall_micros, 2000);
  EXPECT_GE(outer->wall_micros, inner->wall_micros);
}

TEST(StageTraceTest, MirrorsLatencyIntoHistogram) {
  MetricsRegistry registry;
  LatencyHistogram* hist =
      registry.GetHistogram("test.stage_latency", {1e9});
  PipelineTrace trace;
  { StageTrace stage(&trace, "timed", hist); }
  { StageTrace stage(&trace, "timed", hist); }
  EXPECT_EQ(hist->total_count(), 2u);
}

TEST(StageTraceTest, CopyAndMoveKeepTheTree) {
  PipelineTrace trace;
  {
    StageTrace stage(&trace, "stage");
    stage.AddItems(7);
  }
  PipelineTrace copy = trace;
  ASSERT_NE(copy.root().FindChild("stage"), nullptr);
  EXPECT_EQ(copy.root().FindChild("stage")->items, 7u);

  PipelineTrace moved = std::move(copy);
  ASSERT_NE(moved.root().FindChild("stage"), nullptr);
  EXPECT_EQ(moved.root().FindChild("stage")->items, 7u);
  // A moved-to/copied trace accepts new stages at the root.
  { StageTrace more(&moved, "more"); }
  EXPECT_NE(moved.root().FindChild("more"), nullptr);
}

TEST(StageTraceTest, ToJsonMatchesTree) {
  PipelineTrace trace;
  {
    StageTrace outer(&trace, "outer");
    outer.AddItems(3);
    { StageTrace inner(&trace, "inner"); }
  }
  JsonValue json = trace.ToJson();
  EXPECT_EQ(json.Get("name")->string_value(), "pipeline");
  const JsonValue* children = json.Get("children");
  ASSERT_EQ(children->size(), 1u);
  const JsonValue& outer = children->at(0);
  EXPECT_EQ(outer.Get("name")->string_value(), "outer");
  EXPECT_EQ(outer.Get("items")->int_value(), 3);
  ASSERT_EQ(outer.Get("children")->size(), 1u);
  EXPECT_EQ(outer.Get("children")->at(0).Get("name")->string_value(),
            "inner");
  // Serialized form parses back with util/json.h.
  EXPECT_TRUE(JsonValue::Parse(json.Serialize()).ok());
}

TEST(StageTraceTest, ToStringIndentsStages) {
  PipelineTrace trace;
  {
    StageTrace outer(&trace, "outer");
    { StageTrace inner(&trace, "inner"); }
  }
  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("outer"), std::string::npos);
  EXPECT_NE(rendered.find("\n  inner"), std::string::npos);
}

TEST(ScopedTimerTest, ObservesOnDestruction) {
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.GetHistogram("test.timer", {1e9});
  { ScopedTimer timer(hist); }
  EXPECT_EQ(hist->total_count(), 1u);
  ScopedTimer timer(nullptr);  // null histogram is a no-op, not a crash
  EXPECT_GE(timer.ElapsedMicros(), 0);
}

}  // namespace
}  // namespace cats::obs
