#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace cats {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValueVarianceZero) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStatsTest, NumericallyStableLargeOffset) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesType7) {
  std::vector<double> v{1, 2, 3, 4};
  // numpy.percentile([1,2,3,4], 50) == 2.5
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.75);
}

TEST(QuantileTest, EmptyAndSingle) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_EQ(Quantile({7.0}, 0.9), 7.0);
}

TEST(MeanTest, Basic) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
}

TEST(FractionBelowTest, StrictThreshold) {
  std::vector<double> v{100, 500, 1000, 1999, 2000, 5000};
  EXPECT_DOUBLE_EQ(FractionBelow(v, 2000), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(FractionBelow(v, 100), 0.0);
  EXPECT_DOUBLE_EQ(FractionBelow({}, 10), 0.0);
}

TEST(PearsonTest, PerfectCorrelations) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateIsZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(KsTest, IdenticalSamplesZero) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovStatistic(a, a), 0.0);
}

TEST(KsTest, DisjointSamplesOne) {
  EXPECT_DOUBLE_EQ(
      KolmogorovSmirnovStatistic({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(KsTest, KnownShiftedUniform) {
  // Large same-distribution samples: KS should be small; shifted: large.
  Rng rng(5);
  std::vector<double> a, b, c;
  for (int i = 0; i < 20000; ++i) {
    a.push_back(rng.UniformDouble());
    b.push_back(rng.UniformDouble());
    c.push_back(rng.UniformDouble() + 0.5);
  }
  EXPECT_LT(KolmogorovSmirnovStatistic(a, b), 0.03);
  EXPECT_NEAR(KolmogorovSmirnovStatistic(a, c), 0.5, 0.03);
}

TEST(KsTest, EmptyInputsZero) {
  EXPECT_EQ(KolmogorovSmirnovStatistic({}, {1, 2}), 0.0);
}

}  // namespace
}  // namespace cats
