#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace cats {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "Ok");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, CorruptionFactory) {
  Status st = Status::Corruption("crc mismatch in gbdt.model");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(st.ToString(), "Corruption: crc mismatch in gbdt.model");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kIoError,      StatusCode::kParseError,
      StatusCode::kInternal,     StatusCode::kUnavailable,
      StatusCode::kCorruption,
  };
  for (size_t i = 0; i < std::size(codes); ++i) {
    for (size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(StatusCodeToString(codes[i]), StatusCodeToString(codes[j]));
    }
  }
}

Status FailWhenNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int v) {
  CATS_RETURN_NOT_OK(FailWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(5).ok());
  Status st = Chain(-1);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  CATS_ASSIGN_OR_RETURN(int h, Half(v));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> inner_fail = Quarter(6);  // 6/2=3 is odd
  EXPECT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

}  // namespace
}  // namespace cats
