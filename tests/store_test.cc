#include "collect/store.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace cats::collect {
namespace {

ShopRecord Shop(uint64_t id) {
  ShopRecord r;
  r.shop_id = id;
  r.shop_url = "u" + std::to_string(id);
  r.shop_name = "s" + std::to_string(id);
  return r;
}

ItemRecord Item(uint64_t id) {
  ItemRecord r;
  r.item_id = id;
  r.item_name = "item" + std::to_string(id);
  r.price = 1.0 + static_cast<double>(id);
  r.sales_volume = static_cast<int64_t>(id * 10);
  r.category = "food & grocery";
  return r;
}

CommentRecord Comment(uint64_t id, uint64_t item_id) {
  CommentRecord r;
  r.item_id = item_id;
  r.comment_id = id;
  r.content = "内容" + std::to_string(id);
  r.nickname = "0***莉";
  r.user_exp_value = 100 + static_cast<int64_t>(id);
  r.client = "Web";
  r.date = "2017-12-25 08:00:00";
  return r;
}

TEST(DataStoreTest, AddAndFind) {
  DataStore store;
  EXPECT_TRUE(store.AddShop(Shop(1)));
  EXPECT_TRUE(store.AddItem(Item(10)));
  EXPECT_TRUE(store.AddComment(Comment(100, 10)));
  EXPECT_EQ(store.shops().size(), 1u);
  EXPECT_EQ(store.items().size(), 1u);
  EXPECT_EQ(store.num_comments(), 1u);
  const CollectedItem* item = store.FindItem(10);
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->comments.size(), 1u);
  EXPECT_EQ(store.FindItem(999), nullptr);
}

TEST(DataStoreTest, DuplicatesDropped) {
  DataStore store;
  EXPECT_TRUE(store.AddShop(Shop(1)));
  EXPECT_FALSE(store.AddShop(Shop(1)));
  EXPECT_TRUE(store.AddItem(Item(10)));
  EXPECT_FALSE(store.AddItem(Item(10)));
  EXPECT_TRUE(store.AddComment(Comment(100, 10)));
  EXPECT_FALSE(store.AddComment(Comment(100, 10)));
  EXPECT_EQ(store.duplicates_dropped(), 3u);
  EXPECT_EQ(store.items().size(), 1u);
  EXPECT_EQ(store.num_comments(), 1u);
}

TEST(DataStoreTest, OrphanCommentDropped) {
  DataStore store;
  EXPECT_FALSE(store.AddComment(Comment(5, 999)));
  EXPECT_EQ(store.num_comments(), 0u);
  // The comment id must not be burned: adding the item then the comment
  // succeeds.
  EXPECT_TRUE(store.AddItem(Item(999)));
  EXPECT_TRUE(store.AddComment(Comment(5, 999)));
}

TEST(DataStoreTest, JsonlRoundTrip) {
  auto dir = std::filesystem::temp_directory_path() /
             ("cats_store_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  DataStore store;
  store.AddShop(Shop(1));
  store.AddShop(Shop(2));
  store.AddItem(Item(10));
  store.AddItem(Item(11));
  store.AddComment(Comment(100, 10));
  store.AddComment(Comment(101, 10));
  store.AddComment(Comment(102, 11));
  ASSERT_TRUE(store.SaveJsonl(dir.string()).ok());

  auto loaded = DataStore::LoadJsonl(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->shops().size(), 2u);
  EXPECT_EQ(loaded->items().size(), 2u);
  EXPECT_EQ(loaded->num_comments(), 3u);
  const CollectedItem* item = loaded->FindItem(10);
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->comments.size(), 2u);
  EXPECT_EQ(item->comments[0].content, "内容100");
  EXPECT_EQ(item->item.category, "food & grocery");
  std::filesystem::remove_all(dir);
}

TEST(DataStoreTest, LoadMissingDirFails) {
  EXPECT_FALSE(DataStore::LoadJsonl("/nonexistent_dir_zzz").ok());
}

TEST(DataStoreTest, SaveToMissingDirFails) {
  DataStore store;
  EXPECT_EQ(store.SaveJsonl("/nonexistent_dir_zzz").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace cats::collect
