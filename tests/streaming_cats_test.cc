// The streaming plane's core contract: for the same collected items, the
// concurrent pipeline (pipeline::StreamingCats) produces a report that is
// result-identical — order-normalized — to the sequential Detector::Detect,
// no matter how the items were micro-batched across workers. Plus the
// operational behaviors batch mode cannot offer: graceful mid-crawl stop
// with a resumable checkpoint, and resume runs whose union equals the full
// sequential run.

#include "pipeline/streaming_cats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "collect/crawler.h"
#include "core/detector.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "platform_test_util.h"

namespace cats::pipeline {
namespace {

using collect::CollectedItem;
using core::DetectionReport;
using core::Detector;

const Detector& TrainedDetector() {
  static const Detector* detector = [] {
    auto* d = new Detector(&cats::TestSemanticModel());
    const auto& store = cats::TestStore();
    CATS_CHECK(d->Train(store.items(),
                        cats::StoreLabels(cats::TestMarketplace(), store))
                   .ok());
    return d;
  }();
  return *detector;
}

/// The sequential ground truth, order-normalized the same way the
/// streaming plane normalizes (sorted by item_id).
DetectionReport SequentialReport(const std::vector<CollectedItem>& items) {
  auto report = TrainedDetector().Detect(items);
  CATS_CHECK(report.ok());
  auto by_id = [](const core::Detection& a, const core::Detection& b) {
    return a.item_id < b.item_id;
  };
  std::sort(report->detections.begin(), report->detections.end(), by_id);
  std::sort(report->degraded_detections.begin(),
            report->degraded_detections.end(), by_id);
  std::sort(report->quarantine.entries.begin(),
            report->quarantine.entries.end(),
            [](const core::QuarantineEntry& a, const core::QuarantineEntry& b) {
              return a.item_id < b.item_id;
            });
  return std::move(report).value();
}

/// Field-for-field equality, including scores: both paths extract the same
/// features and score through the same PredictProbaBatch, so the numbers
/// are bit-identical, not merely close.
void ExpectReportsIdentical(const DetectionReport& streaming,
                            const DetectionReport& sequential) {
  EXPECT_EQ(streaming.items_scanned, sequential.items_scanned);
  EXPECT_EQ(streaming.items_quarantined, sequential.items_quarantined);
  EXPECT_EQ(streaming.items_degraded, sequential.items_degraded);
  EXPECT_EQ(streaming.items_filtered_low_sales,
            sequential.items_filtered_low_sales);
  EXPECT_EQ(streaming.items_filtered_no_signal,
            sequential.items_filtered_no_signal);
  EXPECT_EQ(streaming.items_filtered_no_comments,
            sequential.items_filtered_no_comments);
  EXPECT_EQ(streaming.items_classified, sequential.items_classified);

  ASSERT_EQ(streaming.detections.size(), sequential.detections.size());
  for (size_t i = 0; i < sequential.detections.size(); ++i) {
    EXPECT_EQ(streaming.detections[i].item_id,
              sequential.detections[i].item_id);
    EXPECT_EQ(streaming.detections[i].score, sequential.detections[i].score);
    EXPECT_EQ(streaming.detections[i].confidence,
              sequential.detections[i].confidence);
  }
  ASSERT_EQ(streaming.degraded_detections.size(),
            sequential.degraded_detections.size());
  for (size_t i = 0; i < sequential.degraded_detections.size(); ++i) {
    EXPECT_EQ(streaming.degraded_detections[i].item_id,
              sequential.degraded_detections[i].item_id);
    EXPECT_EQ(streaming.degraded_detections[i].score,
              sequential.degraded_detections[i].score);
  }
  ASSERT_EQ(streaming.quarantine.size(), sequential.quarantine.size());
  for (size_t i = 0; i < sequential.quarantine.entries.size(); ++i) {
    EXPECT_EQ(streaming.quarantine.entries[i].item_id,
              sequential.quarantine.entries[i].item_id);
    EXPECT_EQ(streaming.quarantine.entries[i].issues,
              sequential.quarantine.entries[i].issues);
  }
}

TEST(StreamingCatsTest, UntrainedDetectorIsRejected) {
  Detector untrained(&cats::TestSemanticModel());
  StreamingCats streaming(&untrained);
  EXPECT_FALSE(streaming.RunOnItems(cats::TestStore().items()).ok());
}

TEST(StreamingCatsTest, EmptyInputYieldsEmptyReport) {
  StreamingCats streaming(&TrainedDetector());
  auto result = streaming.RunOnItems({});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items_streamed, 0u);
  EXPECT_EQ(result->report.items_scanned, 0u);
  EXPECT_TRUE(result->report.detections.empty());
  EXPECT_FALSE(result->stopped);
}

TEST(StreamingCatsTest, ReplayIsResultIdenticalToSequentialDetect) {
  const auto& items = cats::TestStore().items();
  DetectionReport sequential = SequentialReport(items);

  StreamingCats streaming(&TrainedDetector());
  auto result = streaming.RunOnItems(items);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items_streamed, items.size());
  EXPECT_TRUE(result->crawl_status.ok());
  ExpectReportsIdentical(result->report, sequential);
  // The streaming run still found the fraud (sanity against both paths
  // agreeing on an empty answer).
  EXPECT_GT(result->report.detections.size(), 10u);
}

TEST(StreamingCatsTest, ResultIdenticalAcrossPipelineShapes) {
  // Queue capacities, batch ceilings and worker counts change scheduling
  // and batching radically; none of it may change the report.
  const auto& items = cats::TestStore().items();
  DetectionReport sequential = SequentialReport(items);

  const StreamingOptions shapes[] = {
      // Tight everything: constant backpressure, single-item batches.
      {.ingest_capacity = 1,
       .staged_capacity = 1,
       .max_batch_items = 1,
       .num_stage_workers = 1},
      // Many workers fighting over a small queue.
      {.ingest_capacity = 4,
       .staged_capacity = 2,
       .max_batch_items = 3,
       .num_stage_workers = 4},
      // Wide-open queues: batches grow toward the ceiling.
      {.ingest_capacity = 1024,
       .staged_capacity = 64,
       .max_batch_items = 128,
       .num_stage_workers = 2},
  };
  for (const StreamingOptions& options : shapes) {
    SCOPED_TRACE(testing::Message()
                 << "ingest=" << options.ingest_capacity
                 << " staged=" << options.staged_capacity
                 << " batch=" << options.max_batch_items
                 << " workers=" << options.num_stage_workers);
    StreamingCats streaming(&TrainedDetector(), options);
    auto result = streaming.RunOnItems(items);
    ASSERT_TRUE(result.ok());
    ExpectReportsIdentical(result->report, sequential);
  }
}

TEST(StreamingCatsTest, LiveCrawlIsResultIdenticalToSequentialDetect) {
  // End-to-end: crawl the shared marketplace while detecting items as
  // their comment walks complete. The merged streaming report must equal
  // the sequential report over the final store.
  const platform::Marketplace& market = cats::TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  platform::MarketplaceApi api(&market, api_options);
  collect::FakeClock clock;
  collect::Crawler crawler(&api, collect::CrawlerOptions{}, &clock);
  collect::DataStore store;
  collect::CrawlCheckpoint checkpoint;

  StreamingCats streaming(&TrainedDetector());
  auto result = streaming.Run(&crawler, &store, &checkpoint);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->crawl_status.ok());
  EXPECT_TRUE(checkpoint.complete);
  EXPECT_FALSE(result->stopped);
  EXPECT_EQ(result->items_streamed, store.items().size());
  EXPECT_EQ(result->crawl_stats.items, store.items().size());

  ExpectReportsIdentical(result->report, SequentialReport(store.items()));
}

TEST(StreamingCatsTest, RequestStopThenResumeCoversEveryItemExactlyOnce) {
  // Stop the service mid-crawl (deployment restart), then resume from the
  // checkpoint: the two runs' reports must partition the full item set —
  // counts add up and the combined detections equal the sequential run's.
  const platform::Marketplace& market = cats::TestMarketplace();
  platform::ApiOptions api_options;
  api_options.faults = fault::FaultProfile::None();
  platform::MarketplaceApi api(&market, api_options);
  collect::FakeClock clock;
  collect::Crawler crawler(&api, collect::CrawlerOptions{}, &clock);
  collect::DataStore store;
  collect::CrawlCheckpoint checkpoint;

  StreamingCats streaming(&TrainedDetector());
  // Deterministic trigger: watch the pipeline's own streamed-items counter
  // and pull the plug after a handful of items. The sink checks the stop
  // flag on every item, so the crawl cancels at an item boundary.
  obs::Counter* streamed = obs::MetricsRegistry::Global().GetCounter(
      obs::kPipelineIngestPushedTotal);
  const uint64_t baseline = streamed->value();
  std::atomic<bool> watcher_done{false};
  std::thread watcher([&] {
    while (streamed->value() < baseline + 5 && !watcher_done.load()) {
      std::this_thread::yield();
    }
    streaming.RequestStop();
  });
  auto first = streaming.Run(&crawler, &store, &checkpoint);
  watcher_done.store(true);
  watcher.join();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->crawl_status.ok());
  EXPECT_GE(first->items_streamed, 5u);

  DetectionReport full;
  if (first->stopped) {
    // The usual outcome: stopped mid-crawl, checkpoint resumable.
    EXPECT_FALSE(checkpoint.complete);
    EXPECT_LT(first->items_streamed, market.items().size());
    auto second = streaming.Run(&crawler, &store, &checkpoint);
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(second->crawl_status.ok());
    EXPECT_TRUE(checkpoint.complete);
    EXPECT_FALSE(second->stopped);
    EXPECT_EQ(first->items_streamed + second->items_streamed,
              store.items().size())
        << "resume must re-score nothing and skip nothing";

    // Merge the two partial reports.
    full = first->report;
    const DetectionReport& rest = second->report;
    full.items_scanned += rest.items_scanned;
    full.items_quarantined += rest.items_quarantined;
    full.items_degraded += rest.items_degraded;
    full.items_filtered_low_sales += rest.items_filtered_low_sales;
    full.items_filtered_no_signal += rest.items_filtered_no_signal;
    full.items_filtered_no_comments += rest.items_filtered_no_comments;
    full.items_classified += rest.items_classified;
    full.detections.insert(full.detections.end(), rest.detections.begin(),
                           rest.detections.end());
    full.degraded_detections.insert(full.degraded_detections.end(),
                                    rest.degraded_detections.begin(),
                                    rest.degraded_detections.end());
    full.quarantine.entries.insert(full.quarantine.entries.end(),
                                   rest.quarantine.entries.begin(),
                                   rest.quarantine.entries.end());
    auto by_id = [](const core::Detection& a, const core::Detection& b) {
      return a.item_id < b.item_id;
    };
    std::sort(full.detections.begin(), full.detections.end(), by_id);
    std::sort(full.degraded_detections.begin(), full.degraded_detections.end(),
              by_id);
  } else {
    // Rare scheduling where the crawl outran the watcher: the single run
    // must then already cover everything.
    EXPECT_TRUE(checkpoint.complete);
    full = first->report;
  }
  ExpectReportsIdentical(full, SequentialReport(store.items()));
}

TEST(StreamingCatsTest, ExportsPipelineMetrics) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* runs = registry.GetCounter(obs::kPipelineRunsTotal);
  obs::Counter* streamed =
      registry.GetCounter(obs::kPipelineItemsStreamedTotal);
  obs::Counter* batches = registry.GetCounter(obs::kPipelineBatchesStagedTotal);
  const uint64_t runs_before = runs->value();
  const uint64_t streamed_before = streamed->value();
  const uint64_t batches_before = batches->value();

  const auto& items = cats::TestStore().items();
  StreamingCats streaming(&TrainedDetector());
  ASSERT_TRUE(streaming.RunOnItems(items).ok());

  EXPECT_EQ(runs->value(), runs_before + 1);
  EXPECT_EQ(streamed->value(), streamed_before + items.size());
  EXPECT_GT(batches->value(), batches_before);
  EXPECT_GT(registry.GetGauge(obs::kPipelineLastItemsPerSecond)->value(), 0.0);
  // Queues ended drained.
  EXPECT_EQ(registry.GetGauge(obs::kPipelineIngestDepth)->value(), 0.0);
  EXPECT_EQ(registry.GetGauge(obs::kPipelineStagedDepth)->value(), 0.0);
}

}  // namespace
}  // namespace cats::pipeline
