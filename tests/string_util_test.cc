#include "util/string_util.h"

#include <gtest/gtest.h>

namespace cats {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitAndTrimTest, DropsEmptyTrimsWhitespace) {
  EXPECT_EQ(SplitAndTrim(" a , b ,, c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitAndTrim("  ,  , ", ',').empty());
}

TEST(JoinTest, RoundTripWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(TrimTest, AllWhitespaceKinds) {
  EXPECT_EQ(TrimWhitespace("  \t\r\n abc \n"), "abc");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("inner space kept"), "inner space kept");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("/shops/12/items", "/shops/"));
  EXPECT_FALSE(StartsWith("/shop", "/shops"));
  EXPECT_TRUE(EndsWith("comments.jsonl", ".jsonl"));
  EXPECT_FALSE(EndsWith("x", "xy"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "ab", 1.5), "7-ab-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
  // Long output beyond any small static buffer.
  std::string long_out = StrFormat("%0512d", 1);
  EXPECT_EQ(long_out.size(), 512u);
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1461452), "1,461,452");
  EXPECT_EQ(FormatWithCommas(72340999), "72,340,999");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
  EXPECT_EQ(FormatWithCommas(27158720), "27,158,720");
}

TEST(AsciiToLowerTest, AsciiOnly) {
  EXPECT_EQ(AsciiToLower("AbC123"), "abc123");
  // UTF-8 multibyte content untouched.
  EXPECT_EQ(AsciiToLower("好评ABC"), "好评abc");
}

}  // namespace
}  // namespace cats
