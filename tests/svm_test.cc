#include "ml/svm.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "ml_test_util.h"

namespace cats::ml {
namespace {

TEST(SvmTest, FitEmptyFails) {
  LinearSvm svm;
  Dataset empty({"x"});
  EXPECT_FALSE(svm.Fit(empty).ok());
}

TEST(SvmTest, SeparableDataHighAccuracy) {
  Dataset data = MakeGaussianDataset(300, 3, 5.0, 101);
  LinearSvm svm;
  ASSERT_TRUE(svm.Fit(data).ok());
  EXPECT_GT(TrainAccuracy(svm, data), 0.97);
}

TEST(SvmTest, CannotSolveXor) {
  // Sanity: a linear model must fail on XOR (near-random accuracy).
  Dataset data = MakeXorDataset(800, 103);
  LinearSvm svm;
  ASSERT_TRUE(svm.Fit(data).ok());
  double acc = TrainAccuracy(svm, data);
  EXPECT_LT(acc, 0.65);
}

TEST(SvmTest, MarginSignMatchesPrediction) {
  Dataset data = MakeGaussianDataset(100, 2, 4.0, 107);
  LinearSvm svm;
  ASSERT_TRUE(svm.Fit(data).ok());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    double margin = svm.Margin(data.Row(i));
    EXPECT_EQ(svm.Predict(data.Row(i)), margin >= 0.0 ? 1 : 0);
  }
}

TEST(SvmTest, DecisionMarginTradesRecallForPrecision) {
  // Overlapping classes: a conservative margin should raise precision and
  // lower recall — the paper's SVM row (0.99 / 0.62) in miniature.
  Dataset data = MakeGaussianDataset(800, 3, 1.2, 109);
  SvmOptions neutral;
  SvmOptions conservative;
  conservative.decision_margin = 1.0;
  LinearSvm a(neutral), b(conservative);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());

  ClassificationMetrics ma = ComputeMetrics(data.labels(), a.PredictAll(data));
  ClassificationMetrics mb = ComputeMetrics(data.labels(), b.PredictAll(data));
  EXPECT_GT(mb.precision, ma.precision);
  EXPECT_LT(mb.recall, ma.recall);
}

TEST(SvmTest, ProbaMonotoneInMargin) {
  Dataset data = MakeGaussianDataset(100, 2, 3.0, 113);
  LinearSvm svm;
  ASSERT_TRUE(svm.Fit(data).ok());
  double prev_p = -1.0;
  // Walk a line through feature space: margins increase monotonically.
  for (double t = -3.0; t <= 6.0; t += 0.5) {
    float row[2] = {static_cast<float>(t), static_cast<float>(t)};
    double p = svm.PredictProba(row);
    EXPECT_GE(p, prev_p);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev_p = p;
  }
}

TEST(SvmTest, CloneUntrained) {
  LinearSvm svm;
  auto clone = svm.CloneUntrained();
  EXPECT_EQ(clone->name(), "SVM");
  Dataset data = MakeGaussianDataset(100, 2, 4.0, 127);
  ASSERT_TRUE(clone->Fit(data).ok());
  EXPECT_GT(TrainAccuracy(*clone, data), 0.9);
}

TEST(SvmTest, WeightsNonTrivialAfterFit) {
  Dataset data = MakeGaussianDataset(200, 4, 3.0, 131);
  LinearSvm svm;
  ASSERT_TRUE(svm.Fit(data).ok());
  double norm = 0.0;
  for (double w : svm.weights()) norm += w * w;
  EXPECT_GT(norm, 0.0);
}

}  // namespace
}  // namespace cats::ml
