#include "util/table_printer.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace cats {
namespace {

std::vector<std::string> Lines(const std::string& s) {
  std::vector<std::string> out;
  for (const std::string& line : Split(s, '\n')) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  std::string out = table.ToString();
  auto lines = Lines(out);
  // separator, header, separator, 2 rows, separator.
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| 333 "), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAlignedToWidestCell) {
  TablePrinter table({"x"});
  table.AddRow({"wide-cell-content"});
  table.AddRow({"s"});
  auto lines = Lines(table.ToString());
  // All lines have equal display length for pure-ASCII content.
  for (const std::string& line : lines) {
    EXPECT_EQ(line.size(), lines[0].size()) << line;
  }
}

TEST(TablePrinterTest, CjkCellsAlignByDisplayWidth) {
  TablePrinter table({"word", "tag"});
  table.AddRow({"好评", "+"});      // 2 CJK chars = display width 4
  table.AddRow({"abcd", "-"});      // 4 ASCII chars = display width 4
  auto lines = Lines(table.ToString());
  // The two data rows must have identical *byte-length-independent*
  // structure: their trailing '|' aligns when CJK counts as width 2.
  // Equivalently: ASCII row length == CJK row length + 2*(bytes-width diff).
  // Simplest check: both rows end with '|' and the separator lines match.
  EXPECT_EQ(lines.front(), lines[2]);  // separators identical
  EXPECT_EQ(lines.back(), lines[2]);
}

TEST(TablePrinterTest, RaggedRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  table.AddRow({"1", "2", "3"});
  std::string out = table.ToString();
  auto lines = Lines(out);
  EXPECT_EQ(lines.size(), 6u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.size(), lines[0].size());
  }
}

TEST(TablePrinterTest, EmptyTableJustSeparators) {
  TablePrinter table({});
  std::string out = table.ToString();
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace cats
