#include "text/text_stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cats::text {
namespace {

TEST(TokenEntropyTest, EmptyAndSingle) {
  EXPECT_EQ(TokenEntropy({}), 0.0);
  EXPECT_EQ(TokenEntropy({"x"}), 0.0);
  EXPECT_EQ(TokenEntropy({"x", "x", "x"}), 0.0);
}

TEST(TokenEntropyTest, UniformDistributionIsLogN) {
  EXPECT_NEAR(TokenEntropy({"a", "b"}), 1.0, 1e-12);
  EXPECT_NEAR(TokenEntropy({"a", "b", "c", "d"}), 2.0, 1e-12);
}

TEST(TokenEntropyTest, SkewedLessThanUniform) {
  double skewed = TokenEntropy({"a", "a", "a", "b"});
  EXPECT_LT(skewed, 1.0);
  EXPECT_GT(skewed, 0.0);
  // H(1/4) = 0.25*2 + 0.75*log2(4/3)
  double expected = 0.25 * 2.0 + 0.75 * std::log2(4.0 / 3.0);
  EXPECT_NEAR(skewed, expected, 1e-12);
}

TEST(TokenEntropyTest, BoundedByLogOfDistinctCount) {
  std::vector<std::string> tokens{"a", "b", "c", "a", "b", "a"};
  EXPECT_LE(TokenEntropy(tokens), std::log2(3.0) + 1e-12);
}

TEST(UniqueTokenRatioTest, Basics) {
  EXPECT_EQ(UniqueTokenRatio({}), 0.0);
  EXPECT_EQ(UniqueTokenRatio({"a"}), 1.0);
  EXPECT_EQ(UniqueTokenRatio({"a", "b", "c"}), 1.0);
  EXPECT_DOUBLE_EQ(UniqueTokenRatio({"a", "a", "b", "b"}), 0.5);
  EXPECT_DOUBLE_EQ(UniqueTokenRatio({"a", "a", "a", "a"}), 0.25);
}

TEST(AnalyzeStructureTest, CountsCodepointsAndPunctuation) {
  CommentStructure s = AnalyzeStructure("很好！质量不错，推荐。");
  EXPECT_EQ(s.codepoint_length, 11u);
  EXPECT_EQ(s.punctuation_count, 3u);
  EXPECT_NEAR(s.punctuation_ratio, 3.0 / 11.0, 1e-12);
}

TEST(AnalyzeStructureTest, EmptyString) {
  CommentStructure s = AnalyzeStructure("");
  EXPECT_EQ(s.codepoint_length, 0u);
  EXPECT_EQ(s.punctuation_count, 0u);
  EXPECT_EQ(s.punctuation_ratio, 0.0);
}

TEST(AnalyzeStructureTest, AsciiText) {
  CommentStructure s = AnalyzeStructure("hello, world!");
  EXPECT_EQ(s.codepoint_length, 13u);
  EXPECT_EQ(s.punctuation_count, 2u);
}

TEST(AnalyzeStructureTest, AllPunctuation) {
  CommentStructure s = AnalyzeStructure("！！！");
  EXPECT_EQ(s.punctuation_ratio, 1.0);
}

}  // namespace
}  // namespace cats::text
