#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace cats {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // One worker executes FIFO.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForResultSlots) {
  // The documented output-slot pattern: no locks on the data plane.
  ThreadPool pool(4);
  std::vector<double> results(257);
  pool.ParallelFor(results.size(), [&results](size_t i) {
    results[i] = static_cast<double>(i) * 2.0;
  });
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * 2.0);
  }
}

}  // namespace
}  // namespace cats
