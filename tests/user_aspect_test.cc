#include "analysis/user_aspect.h"

#include <gtest/gtest.h>

#include "analysis/distributions.h"
#include "platform_test_util.h"
#include "util/stats.h"

namespace cats::analysis {
namespace {

collect::CollectedItem ItemWithBuyers(
    uint64_t id, std::initializer_list<std::pair<const char*, int64_t>>
                     buyers_and_exp) {
  collect::CollectedItem item;
  item.item.item_id = id;
  for (const auto& [nick, exp] : buyers_and_exp) {
    collect::CommentRecord c;
    c.item_id = id;
    c.nickname = nick;
    c.user_exp_value = exp;
    item.comments.push_back(std::move(c));
  }
  return item;
}

TEST(UserAspectTest, UniqueBuyerIdentification) {
  // Same (nickname, exp) = same user; same nickname different exp = two
  // users — the paper's approximate identification.
  std::vector<collect::CollectedItem> items{
      ItemWithBuyers(1, {{"a***x", 100}, {"a***x", 100}, {"a***x", 500}}),
  };
  UserAspectReport report = AnalyzeUserAspect(items, 1000.0);
  EXPECT_EQ(report.buyer_exp_values.size(), 2u);
}

TEST(UserAspectTest, ExpValueFractions) {
  std::vector<collect::CollectedItem> items{
      ItemWithBuyers(1, {{"u1", 100}, {"u2", 800}, {"u3", 1500}, {"u4", 9000}}),
  };
  UserAspectReport report = AnalyzeUserAspect(items, 1000.0);
  EXPECT_DOUBLE_EQ(report.frac_at_min, 0.25);
  EXPECT_DOUBLE_EQ(report.frac_below_1000, 0.5);
  EXPECT_DOUBLE_EQ(report.frac_below_2000, 0.75);
}

TEST(UserAspectTest, AvgExpPerItemVsExpectation) {
  std::vector<collect::CollectedItem> items{
      ItemWithBuyers(1, {{"u1", 100}, {"u2", 300}}),    // avg 200 < 1000
      ItemWithBuyers(2, {{"u3", 5000}, {"u4", 3000}}),  // avg 4000 > 1000
  };
  UserAspectReport report = AnalyzeUserAspect(items, 1000.0);
  ASSERT_EQ(report.avg_exp_per_item.size(), 2u);
  EXPECT_DOUBLE_EQ(report.avg_exp_per_item[0], 200.0);
  EXPECT_DOUBLE_EQ(report.frac_items_below_expectation, 0.5);
}

TEST(UserAspectTest, RepeatPurchaseDetection) {
  std::vector<collect::CollectedItem> items{
      ItemWithBuyers(1, {{"u1", 100}, {"u1", 100}, {"u2", 200}}),
  };
  UserAspectReport report = AnalyzeUserAspect(items, 1000.0);
  EXPECT_DOUBLE_EQ(report.frac_buyers_with_repeat, 0.5);  // u1 of {u1,u2}
  EXPECT_EQ(report.max_purchases_by_one_user, 2u);
}

TEST(UserAspectTest, CopurchasePairsNeedTwoSharedItems) {
  std::vector<collect::CollectedItem> items{
      ItemWithBuyers(1, {{"u1", 100}, {"u2", 200}, {"u3", 300}}),
      ItemWithBuyers(2, {{"u1", 100}, {"u2", 200}}),
      ItemWithBuyers(3, {{"u3", 300}, {"u4", 400}}),
  };
  UserAspectReport report = AnalyzeUserAspect(items, 1000.0);
  // Only (u1,u2) share >= 2 items.
  EXPECT_EQ(report.copurchase_pairs, 1u);
  EXPECT_EQ(report.copurchase_users, 2u);
}

TEST(UserAspectTest, EmptyInputSafe) {
  UserAspectReport report = AnalyzeUserAspect({}, 1000.0);
  EXPECT_EQ(report.buyer_exp_values.size(), 0u);
  EXPECT_EQ(report.copurchase_pairs, 0u);
  EXPECT_EQ(report.frac_at_min, 0.0);
}

TEST(UserAspectTest, PopulationExpectationIsUniqueUserMean) {
  std::vector<collect::CollectedItem> items{
      ItemWithBuyers(1, {{"u1", 100}, {"u1", 100}, {"u2", 300}}),
  };
  EXPECT_DOUBLE_EQ(PopulationExpectation(items), 200.0);
  EXPECT_EQ(PopulationExpectation({}), 0.0);
}

TEST(UserAspectTest, SimulatedFraudBuyersLessReliable) {
  // The paper's Fig 11 contrast on the simulated platform.
  const auto& store = cats::TestStore();
  LabeledSplit split = SplitByLabel(
      store.items(), cats::StoreLabels(cats::TestMarketplace(), store));
  double expectation = PopulationExpectation(store.items());
  UserAspectReport fraud = AnalyzeUserAspect(split.fraud, expectation);
  UserAspectReport normal = AnalyzeUserAspect(split.normal, expectation);

  EXPECT_GT(fraud.frac_below_2000, normal.frac_below_2000);
  EXPECT_GT(fraud.frac_at_min, normal.frac_at_min);
  // Most fraud items' buyer average sits below the platform expectation
  // (paper: 70%).
  EXPECT_GT(fraud.frac_items_below_expectation, 0.5);
  // Risky co-purchase structure concentrates in fraud items.
  EXPECT_GT(fraud.copurchase_pairs, normal.copurchase_pairs);
  // Repeat purchasing is a campaign signature.
  EXPECT_GT(fraud.frac_buyers_with_repeat, normal.frac_buyers_with_repeat);
}

}  // namespace
}  // namespace cats::analysis
