#include "text/utf8.h"

#include <gtest/gtest.h>

namespace cats::text {
namespace {

TEST(Utf8Test, EncodeDecodeAsciiTwoThreeFourByte) {
  for (uint32_t cp : {0x41u, 0x7Fu, 0x80u, 0x7FFu, 0x800u, 0x4E2Du, 0xFFFDu,
                      0x10000u, 0x1F600u}) {
    std::string s = EncodeCodepoint(cp);
    size_t pos = 0;
    EXPECT_EQ(DecodeOne(s, &pos), cp);
    EXPECT_EQ(pos, s.size());
    EXPECT_EQ(s.size(), EncodedLength(cp));
  }
}

TEST(Utf8Test, DecodeStringMixed) {
  std::string s = "a中b文!";
  std::vector<uint32_t> cps = DecodeString(s);
  ASSERT_EQ(cps.size(), 5u);
  EXPECT_EQ(cps[0], 'a');
  EXPECT_EQ(cps[1], 0x4E2Du);
  EXPECT_EQ(cps[2], 'b');
  EXPECT_EQ(cps[3], 0x6587u);
  EXPECT_EQ(cps[4], '!');
}

TEST(Utf8Test, RoundTripEncodeString) {
  std::vector<uint32_t> cps{0x4E00, 'x', 0x9FFF, 0x3002, 0x1F914};
  EXPECT_EQ(DecodeString(EncodeString(cps)), cps);
}

TEST(Utf8Test, CodepointCount) {
  EXPECT_EQ(CodepointCount(""), 0u);
  EXPECT_EQ(CodepointCount("abc"), 3u);
  EXPECT_EQ(CodepointCount("好评"), 2u);
  EXPECT_EQ(CodepointCount("a好b"), 3u);
}

TEST(Utf8Test, MalformedBytesYieldReplacementAndTerminate) {
  // Lone continuation byte.
  std::string bad1("\x80", 1);
  std::vector<uint32_t> cps = DecodeString(bad1);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0], kReplacementChar);

  // Truncated 3-byte sequence.
  std::string bad2("\xE4\xB8", 2);
  cps = DecodeString(bad2);
  EXPECT_FALSE(cps.empty());
  EXPECT_EQ(cps[0], kReplacementChar);

  // Overlong encoding of '/' (0xC0 0xAF) must not decode to '/'.
  std::string overlong("\xC0\xAF", 2);
  cps = DecodeString(overlong);
  for (uint32_t cp : cps) EXPECT_NE(cp, static_cast<uint32_t>('/'));
}

TEST(Utf8Test, DecodeOnePastEndIsTotalAndAdvances) {
  // Regression: DecodeOne with *pos at or past the end used to read
  // s[i] out of bounds. It must return U+FFFD and still advance so a
  // caller's loop can never spin.
  std::string s = "ab";
  size_t pos = 2;
  EXPECT_EQ(DecodeOne(s, &pos), kReplacementChar);
  EXPECT_EQ(pos, 3u);
  pos = 100;
  EXPECT_EQ(DecodeOne(s, &pos), kReplacementChar);
  EXPECT_EQ(pos, 101u);
  pos = 0;
  EXPECT_EQ(DecodeOne("", &pos), kReplacementChar);
  EXPECT_EQ(pos, 1u);
}

TEST(Utf8Test, TruncatedSequencesConsumeByteByByte) {
  // Every proper prefix of every multi-byte class, cut off by the buffer
  // end: the decoder must emit U+FFFD per remaining byte, never read past
  // the end, and IsValidUtf8 must reject the prefix.
  for (uint32_t cp : {0x80u, 0x7FFu, 0x800u, 0x4E2Du, 0xFFFFu, 0x10000u,
                      0x10FFFFu}) {
    std::string full = EncodeCodepoint(cp);
    for (size_t cut = 1; cut < full.size(); ++cut) {
      std::string truncated = full.substr(0, cut);
      SCOPED_TRACE("cp=" + std::to_string(cp) + " cut=" +
                   std::to_string(cut));
      size_t pos = 0;
      EXPECT_EQ(DecodeOne(truncated, &pos), kReplacementChar);
      EXPECT_EQ(pos, 1u);  // the lead byte is consumed alone
      std::vector<uint32_t> cps = DecodeString(truncated);
      EXPECT_EQ(cps.size(), truncated.size());
      for (uint32_t c : cps) EXPECT_EQ(c, kReplacementChar);
      EXPECT_FALSE(IsValidUtf8(truncated));
      // Truncation mid-string (followed by ASCII, not the buffer end)
      // must resynchronize on the ASCII byte.
      std::string resync = truncated + "a";
      std::vector<uint32_t> r = DecodeString(resync);
      ASSERT_FALSE(r.empty());
      EXPECT_EQ(r.back(), static_cast<uint32_t>('a'));
      EXPECT_EQ(r.size(), truncated.size() + 1);
    }
  }
}

TEST(Utf8Test, RawSurrogatesRejectedButConsumeFullSequence) {
  // Regression: the 3-byte branch used to decode raw UTF-16 surrogates
  // (ED A0 80 .. ED BF BF) to themselves, disagreeing with IsValidUtf8.
  for (uint32_t cp = 0xD800; cp <= 0xDFFF; cp += 0xFF) {
    std::string raw = EncodeCodepoint(cp);  // 3-byte pattern of cp
    ASSERT_EQ(raw.size(), 3u);
    size_t pos = 0;
    EXPECT_EQ(DecodeOne(raw, &pos), kReplacementChar) << cp;
    EXPECT_EQ(pos, 3u);  // full sequence consumed, not re-sliced
    EXPECT_FALSE(IsValidUtf8(raw));
  }
  // The neighbors on both sides of the surrogate gap stay valid.
  for (uint32_t cp : {0xD7FFu, 0xE000u}) {
    std::string ok = EncodeCodepoint(cp);
    size_t pos = 0;
    EXPECT_EQ(DecodeOne(ok, &pos), cp);
    EXPECT_TRUE(IsValidUtf8(ok));
  }
}

TEST(Utf8Test, OverlongEncodingsRejectedAtEveryLength) {
  struct Overlong {
    const char* bytes;
    size_t len;
  };
  const Overlong cases[] = {
      {"\xC0\x80", 2},          // 2-byte overlong NUL
      {"\xC0\xAF", 2},          // 2-byte overlong '/'
      {"\xC1\xBF", 2},          // 2-byte overlong 0x7F
      {"\xE0\x9F\xBF", 3},      // 3-byte overlong 0x7FF
      {"\xE0\x80\x80", 3},      // 3-byte overlong NUL
      {"\xF0\x8F\xBF\xBF", 4},  // 4-byte overlong 0xFFFF
      {"\xF0\x80\x80\x80", 4},  // 4-byte overlong NUL
  };
  for (const Overlong& c : cases) {
    std::string s(c.bytes, c.len);
    SCOPED_TRACE(s);
    size_t pos = 0;
    EXPECT_EQ(DecodeOne(s, &pos), kReplacementChar);
    EXPECT_EQ(pos, c.len);  // whole sequence consumed
    EXPECT_FALSE(IsValidUtf8(s));
  }
}

TEST(Utf8Test, CodepointsPastMaxRejected) {
  for (const char* bytes : {"\xF4\x90\x80\x80",    // 0x110000
                            "\xF7\xBF\xBF\xBF"}) {  // 0x1FFFFF
    std::string s(bytes, 4);
    size_t pos = 0;
    EXPECT_EQ(DecodeOne(s, &pos), kReplacementChar);
    EXPECT_EQ(pos, 4u);
    EXPECT_FALSE(IsValidUtf8(s));
  }
  std::string max = EncodeCodepoint(0x10FFFF);
  size_t pos = 0;
  EXPECT_EQ(DecodeOne(max, &pos), 0x10FFFFu);
  EXPECT_TRUE(IsValidUtf8(max));
}

TEST(Utf8Test, StrayContinuationAndInvalidLeadBytes) {
  for (unsigned char b : {0x80u, 0xBFu, 0xF8u, 0xFEu, 0xFFu}) {
    std::string s(1, static_cast<char>(b));
    size_t pos = 0;
    EXPECT_EQ(DecodeOne(s, &pos), kReplacementChar) << int(b);
    EXPECT_EQ(pos, 1u);
    EXPECT_FALSE(IsValidUtf8(s));
  }
}

TEST(Utf8Test, IsCjk) {
  EXPECT_TRUE(IsCjk(0x4E00));
  EXPECT_TRUE(IsCjk(0x9FFF));
  EXPECT_FALSE(IsCjk(0x4DFF));
  EXPECT_FALSE(IsCjk('a'));
  EXPECT_FALSE(IsCjk(0x3002));  // 。 is punctuation, not ideograph
}

}  // namespace
}  // namespace cats::text
