#include "text/utf8.h"

#include <gtest/gtest.h>

namespace cats::text {
namespace {

TEST(Utf8Test, EncodeDecodeAsciiTwoThreeFourByte) {
  for (uint32_t cp : {0x41u, 0x7Fu, 0x80u, 0x7FFu, 0x800u, 0x4E2Du, 0xFFFDu,
                      0x10000u, 0x1F600u}) {
    std::string s = EncodeCodepoint(cp);
    size_t pos = 0;
    EXPECT_EQ(DecodeOne(s, &pos), cp);
    EXPECT_EQ(pos, s.size());
    EXPECT_EQ(s.size(), EncodedLength(cp));
  }
}

TEST(Utf8Test, DecodeStringMixed) {
  std::string s = "a中b文!";
  std::vector<uint32_t> cps = DecodeString(s);
  ASSERT_EQ(cps.size(), 5u);
  EXPECT_EQ(cps[0], 'a');
  EXPECT_EQ(cps[1], 0x4E2Du);
  EXPECT_EQ(cps[2], 'b');
  EXPECT_EQ(cps[3], 0x6587u);
  EXPECT_EQ(cps[4], '!');
}

TEST(Utf8Test, RoundTripEncodeString) {
  std::vector<uint32_t> cps{0x4E00, 'x', 0x9FFF, 0x3002, 0x1F914};
  EXPECT_EQ(DecodeString(EncodeString(cps)), cps);
}

TEST(Utf8Test, CodepointCount) {
  EXPECT_EQ(CodepointCount(""), 0u);
  EXPECT_EQ(CodepointCount("abc"), 3u);
  EXPECT_EQ(CodepointCount("好评"), 2u);
  EXPECT_EQ(CodepointCount("a好b"), 3u);
}

TEST(Utf8Test, MalformedBytesYieldReplacementAndTerminate) {
  // Lone continuation byte.
  std::string bad1("\x80", 1);
  std::vector<uint32_t> cps = DecodeString(bad1);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0], kReplacementChar);

  // Truncated 3-byte sequence.
  std::string bad2("\xE4\xB8", 2);
  cps = DecodeString(bad2);
  EXPECT_FALSE(cps.empty());
  EXPECT_EQ(cps[0], kReplacementChar);

  // Overlong encoding of '/' (0xC0 0xAF) must not decode to '/'.
  std::string overlong("\xC0\xAF", 2);
  cps = DecodeString(overlong);
  for (uint32_t cp : cps) EXPECT_NE(cp, static_cast<uint32_t>('/'));
}

TEST(Utf8Test, IsCjk) {
  EXPECT_TRUE(IsCjk(0x4E00));
  EXPECT_TRUE(IsCjk(0x9FFF));
  EXPECT_FALSE(IsCjk(0x4DFF));
  EXPECT_FALSE(IsCjk('a'));
  EXPECT_FALSE(IsCjk(0x3002));  // 。 is punctuation, not ideograph
}

}  // namespace
}  // namespace cats::text
