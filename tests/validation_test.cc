#include "analysis/validation.h"

#include <gtest/gtest.h>

namespace cats::analysis {
namespace {

core::DetectionReport MakeReport(std::initializer_list<uint64_t> ids) {
  core::DetectionReport report;
  for (uint64_t id : ids) {
    report.detections.push_back(core::Detection{id, 0.9});
  }
  return report;
}

TEST(ValidateBySamplingTest, EmptyReportZero) {
  Rng rng(1);
  auto v = ValidateBySampling(MakeReport({}), {}, 100, &rng);
  EXPECT_EQ(v.sample_size, 0u);
  EXPECT_EQ(v.precision, 0.0);
}

TEST(ValidateBySamplingTest, FullSampleExactPrecision) {
  std::unordered_map<uint64_t, int> truth{{1, 1}, {2, 1}, {3, 0}, {4, 1}};
  Rng rng(2);
  auto v = ValidateBySampling(MakeReport({1, 2, 3, 4}), truth, 100, &rng);
  EXPECT_EQ(v.sample_size, 4u);
  EXPECT_EQ(v.confirmed, 3u);
  EXPECT_DOUBLE_EQ(v.precision, 0.75);
}

TEST(ValidateBySamplingTest, UnknownItemsCountAsUnconfirmed) {
  std::unordered_map<uint64_t, int> truth{{1, 1}};
  Rng rng(3);
  auto v = ValidateBySampling(MakeReport({1, 99}), truth, 10, &rng);
  EXPECT_EQ(v.confirmed, 1u);
}

TEST(ValidateBySamplingTest, SubsampleApproximatesTruePrecision) {
  core::DetectionReport report;
  std::unordered_map<uint64_t, int> truth;
  for (uint64_t id = 0; id < 10000; ++id) {
    report.detections.push_back(core::Detection{id, 0.9});
    truth[id] = id % 10 < 9 ? 1 : 0;  // 90% true
  }
  Rng rng(4);
  auto v = ValidateBySampling(report, truth, 1000, &rng);
  EXPECT_EQ(v.sample_size, 1000u);
  EXPECT_NEAR(v.precision, 0.9, 0.04);
}

TEST(ValidateBySamplingTest, SampleWithoutReplacement) {
  // Sampling exactly n from n must touch each detection once.
  core::DetectionReport report = MakeReport({10, 20, 30});
  std::unordered_map<uint64_t, int> truth{{10, 1}, {20, 1}, {30, 1}};
  Rng rng(5);
  auto v = ValidateBySampling(report, truth, 3, &rng);
  EXPECT_EQ(v.confirmed, 3u);
  EXPECT_DOUBLE_EQ(v.precision, 1.0);
}

TEST(EvaluateReportTest, ComputesFullMetrics) {
  core::DetectionReport report = MakeReport({1, 3});
  std::vector<uint64_t> ids{1, 2, 3, 4};
  std::vector<int> labels{1, 1, 0, 0};
  auto m = EvaluateReport(report, ids, labels);
  // Flagged: 1 (tp), 3 (fp). Missed: 2 (fn). Correct negative: 4.
  EXPECT_EQ(m.confusion.true_positive, 1u);
  EXPECT_EQ(m.confusion.false_positive, 1u);
  EXPECT_EQ(m.confusion.false_negative, 1u);
  EXPECT_EQ(m.confusion.true_negative, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(EvaluateReportTest, EmptyReportZeroRecall) {
  auto m = EvaluateReport(MakeReport({}), {1, 2}, {1, 1});
  EXPECT_EQ(m.recall, 0.0);
}

}  // namespace
}  // namespace cats::analysis
