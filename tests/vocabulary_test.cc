#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace cats::text {
namespace {

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary vocab;
  int32_t a = vocab.AddOccurrence("好评");
  int32_t b = vocab.AddOccurrence("差评");
  int32_t a2 = vocab.AddOccurrence("好评");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.total_tokens(), 3u);
  EXPECT_EQ(vocab.Lookup("好评"), a);
  EXPECT_EQ(vocab.Lookup("unknown"), kUnknownWordId);
  EXPECT_EQ(vocab.CountOf(a), 2u);
  EXPECT_EQ(vocab.CountOfWord("差评"), 1u);
  EXPECT_EQ(vocab.CountOfWord("unknown"), 0u);
}

TEST(VocabularyTest, AddSentence) {
  Vocabulary vocab;
  vocab.AddSentence({"a", "b", "a"});
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.CountOfWord("a"), 2u);
}

TEST(VocabularyTest, PruneRemovesRareAndSortsByFrequency) {
  Vocabulary vocab;
  for (int i = 0; i < 5; ++i) vocab.AddOccurrence("five");
  for (int i = 0; i < 3; ++i) vocab.AddOccurrence("three");
  for (int i = 0; i < 8; ++i) vocab.AddOccurrence("eight");
  vocab.AddOccurrence("once");

  size_t removed = vocab.PruneAndSortByFrequency(2);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(vocab.size(), 3u);
  // Descending frequency order with dense ids.
  EXPECT_EQ(vocab.WordOf(0), "eight");
  EXPECT_EQ(vocab.WordOf(1), "five");
  EXPECT_EQ(vocab.WordOf(2), "three");
  EXPECT_EQ(vocab.Lookup("eight"), 0);
  EXPECT_EQ(vocab.Lookup("once"), kUnknownWordId);
  EXPECT_EQ(vocab.total_tokens(), 16u);
}

TEST(VocabularyTest, PruneWithMinCountOneKeepsAll) {
  Vocabulary vocab;
  vocab.AddSentence({"x", "y"});
  EXPECT_EQ(vocab.PruneAndSortByFrequency(1), 0u);
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, EncodeSkipsUnknown) {
  Vocabulary vocab;
  vocab.AddSentence({"a", "b", "c"});
  vocab.AddSentence({"a", "b"});
  vocab.PruneAndSortByFrequency(2);  // drops "c"
  std::vector<int32_t> ids = vocab.Encode({"a", "c", "b", "zz"});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(vocab.WordOf(ids[0]), "a");
  EXPECT_EQ(vocab.WordOf(ids[1]), "b");
}

TEST(VocabularyTest, StableTieOrderOnPrune) {
  Vocabulary vocab;
  vocab.AddOccurrence("first");
  vocab.AddOccurrence("second");
  vocab.PruneAndSortByFrequency(1);
  // Equal counts: first-seen order preserved (stable sort).
  EXPECT_EQ(vocab.WordOf(0), "first");
  EXPECT_EQ(vocab.WordOf(1), "second");
}

}  // namespace
}  // namespace cats::text
