#include "nlp/word2vec.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cats::nlp {
namespace {

/// Two-topic corpus: words within a topic co-occur, across topics never.
std::vector<std::vector<std::string>> TwoTopicCorpus(size_t sentences) {
  std::vector<std::string> topic_a{"apple", "banana", "cherry", "grape"};
  std::vector<std::string> topic_b{"bolt", "nut", "screw", "washer"};
  Rng rng(101);
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(sentences);
  for (size_t s = 0; s < sentences; ++s) {
    const auto& topic = (s % 2 == 0) ? topic_a : topic_b;
    std::vector<std::string> sentence;
    for (size_t w = 0; w < 8; ++w) {
      sentence.push_back(
          topic[rng.UniformU32(static_cast<uint32_t>(topic.size()))]);
    }
    corpus.push_back(std::move(sentence));
  }
  return corpus;
}

Word2VecOptions SmallOptions() {
  Word2VecOptions options;
  options.dim = 16;
  options.epochs = 10;
  options.min_count = 1;
  options.window = 3;
  options.num_threads = 2;
  options.subsample_t = 0;  // tiny corpus: keep everything
  return options;
}

TEST(Word2VecTest, EmptyCorpusFails) {
  Word2Vec w2v(SmallOptions());
  auto r = w2v.Train({});
  EXPECT_FALSE(r.ok());
}

TEST(Word2VecTest, AllWordsBelowMinCountFails) {
  Word2VecOptions options = SmallOptions();
  options.min_count = 100;
  Word2Vec w2v(options);
  auto r = w2v.Train({{"a", "b"}, {"c", "d"}});
  EXPECT_FALSE(r.ok());
}

TEST(Word2VecTest, ProducesVectorForEveryKeptWord) {
  Word2Vec w2v(SmallOptions());
  auto store = w2v.Train(TwoTopicCorpus(200));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 8u);
  EXPECT_EQ(store->dim(), 16u);
  for (const char* w :
       {"apple", "banana", "cherry", "grape", "bolt", "nut"}) {
    EXPECT_TRUE(store->Contains(w)) << w;
  }
  EXPECT_GT(w2v.trained_pairs(), 0u);
}

TEST(Word2VecTest, TopicStructureEmergesInNeighbors) {
  Word2Vec w2v(SmallOptions());
  auto store = w2v.Train(TwoTopicCorpus(400));
  ASSERT_TRUE(store.ok());

  // Same-topic similarity must exceed cross-topic similarity.
  float same = *store->Cosine("apple", "banana");
  float cross = *store->Cosine("apple", "bolt");
  EXPECT_GT(same, cross);

  // All 3 nearest neighbors of a fruit are fruits.
  auto nn = store->NearestNeighbors("apple", 3);
  ASSERT_TRUE(nn.ok());
  for (const Neighbor& n : *nn) {
    EXPECT_TRUE(n.word == "banana" || n.word == "cherry" ||
                n.word == "grape")
        << n.word;
  }
}

TEST(Word2VecTest, MinCountPrunesRareWords) {
  Word2VecOptions options = SmallOptions();
  options.min_count = 3;
  Word2Vec w2v(options);
  std::vector<std::vector<std::string>> corpus = TwoTopicCorpus(100);
  corpus.push_back({"rare_word", "apple", "banana"});
  auto store = w2v.Train(corpus);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->Contains("rare_word"));
}

TEST(Word2VecTest, SingleThreadDeterministicForSeed) {
  Word2VecOptions options = SmallOptions();
  options.num_threads = 1;
  auto corpus = TwoTopicCorpus(100);
  Word2Vec a(options), b(options);
  auto sa = a.Train(corpus);
  auto sb = b.Train(corpus);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_FLOAT_EQ(*sa->Cosine("apple", "banana"),
                  *sb->Cosine("apple", "banana"));
}

TEST(Word2VecTest, VocabularySortedByFrequency) {
  Word2Vec w2v(SmallOptions());
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 10; ++i) corpus.push_back({"common", "common", "mid"});
  corpus.push_back({"mid", "rare"});
  auto store = w2v.Train(corpus);
  ASSERT_TRUE(store.ok());
  const auto& vocab = w2v.vocabulary();
  EXPECT_EQ(vocab.WordOf(0), "common");
  EXPECT_EQ(vocab.WordOf(1), "mid");
}

}  // namespace
}  // namespace cats::nlp
