#include "analysis/word_cloud.h"

#include <gtest/gtest.h>

#include "analysis/distributions.h"
#include "platform_test_util.h"

namespace cats::analysis {
namespace {

LabeledSplit Split() {
  const auto& store = cats::TestStore();
  return SplitByLabel(
      store.items(),
      cats::StoreLabels(cats::TestMarketplace(), store));
}

TEST(WordCloudTest, TopWordsSortedByCount) {
  WordCloud cloud(&cats::TestSemanticModel());
  auto top = cloud.TopWords(Split().fraud, 50);
  ASSERT_GE(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
}

TEST(WordCloudTest, RequestedSizeRespected) {
  WordCloud cloud(&cats::TestSemanticModel());
  auto top = cloud.TopWords(Split().fraud, 7);
  EXPECT_EQ(top.size(), 7u);
}

TEST(WordCloudTest, EmptyItemsEmptyCloud) {
  WordCloud cloud(&cats::TestSemanticModel());
  EXPECT_TRUE(cloud.TopWords({}, 50).empty());
}

TEST(WordCloudTest, FraudCloudMorePositiveThanNormal) {
  // The paper's Figs 8/9 contrast: fraud items' top words are dominated by
  // positive words; normal items' top words include negatives. Judged
  // against the language's ground-truth polarity — the fixture-scale
  // expanded lexicon is too noisy for a stable flag-based comparison
  // (the bench-scale run checks the lexicon-flag version).
  WordCloud cloud(&cats::TestSemanticModel());
  LabeledSplit split = Split();
  auto fraud_top = cloud.TopWords(split.fraud, 50);
  auto normal_top = cloud.TopWords(split.normal, 50);
  auto true_positive_fraction = [](const std::vector<WordFrequency>& top) {
    size_t positive = 0;
    for (const WordFrequency& wf : top) {
      if (cats::TestLanguage().PolarityOf(wf.word) ==
          platform::Polarity::kPositive) {
        ++positive;
      }
    }
    return static_cast<double>(positive) / top.size();
  };
  double fraud_positive = true_positive_fraction(fraud_top);
  double normal_positive = true_positive_fraction(normal_top);
  EXPECT_GT(fraud_positive, normal_positive);
  EXPECT_GT(fraud_positive, 0.3);

  bool normal_has_negative = false;
  for (const WordFrequency& wf : normal_top) {
    if (cats::TestLanguage().PolarityOf(wf.word) ==
        platform::Polarity::kNegative) {
      normal_has_negative = true;
    }
  }
  EXPECT_TRUE(normal_has_negative);
}

TEST(WordCloudTest, FractionsConsistent) {
  WordCloud cloud(&cats::TestSemanticModel());
  auto top = cloud.TopWords(Split().fraud, 30);
  double mass = WordCloud::TotalMassOfTop(top);
  EXPECT_GT(mass, 0.0);
  EXPECT_LE(mass, 1.0);
  for (const WordFrequency& wf : top) {
    EXPECT_GT(wf.count, 0u);
    EXPECT_GT(wf.fraction, 0.0);
    EXPECT_FALSE(wf.word.empty());
  }
}

TEST(WordCloudTest, DeterministicTieBreaks) {
  WordCloud cloud(&cats::TestSemanticModel());
  auto a = cloud.TopWords(Split().fraud, 40);
  auto b = cloud.TopWords(Split().fraud, 40);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].word, b[i].word);
}

}  // namespace
}  // namespace cats::analysis
